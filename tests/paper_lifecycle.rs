//! The paper's §7 life-cycle, end to end across two simulated machines:
//! birth at a fileserver, transmission through the name service and the
//! network servers, invocation, copying, and death — plus §6's compatible
//! subcontracts along the way.

use std::sync::Arc;

use spring::core::{ship_object, DomainCtx};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::net::{NetConfig, Network};
use spring::services::{fs, FileServer};
use spring::subcontracts::register_standard;

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

#[test]
fn file_lifecycle_across_machines() {
    let net = Network::new(NetConfig::default());
    let node_a = net.add_node("server-machine");
    let node_b = net.add_node("client-machine");

    let fs_ctx = ctx_on(node_a.kernel(), "fileserver");
    let ns_ctx = ctx_on(node_a.kernel(), "name-server");
    let client_ctx = ctx_on(node_b.kernel(), "client");

    // Birth: the fileserver FS starts with internal state describing a file
    // and creates a Spring object from it.
    let fileserver = FileServer::new(&fs_ctx, "m");
    fileserver.put("report", b"quarterly numbers");
    let ns = NameServer::new(&ns_ctx);
    let fs_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &fs_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    fs_names
        .bind_consume("fs", fileserver.export_fs().unwrap().into_obj())
        .unwrap();

    // Transmission: the name service root crosses the network; resolving
    // "fs" marshals the file_system object across too. Proxy doors appear
    // on the client machine without anyone asking.
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let fsys = fs::FileSystem::from_obj(client_names.resolve("fs", &fs::FILE_SYSTEM_TYPE).unwrap())
        .unwrap();
    assert!(net.stats().proxies_created >= 1);

    // Invocation: stub -> subcontract -> proxy door -> network -> server
    // subcontract -> skeleton -> servant, and all the way back.
    let f = fsys.open("report").unwrap();
    assert_eq!(f.read(0, 9).unwrap(), b"quarterly");
    f.write(10, b"NUMBERS").unwrap();
    assert_eq!(f.read(0, 17).unwrap(), b"quarterly NUMBERS");

    // Reproduction: a shallow copy shares the underlying state.
    let copy = f.copy().unwrap();
    assert_eq!(copy.stat().unwrap().version, f.stat().unwrap().version);

    // Death: consuming the client objects; the server's doors survive
    // (the fileserver itself still holds the state).
    copy.into_obj().consume().unwrap();
    f.into_obj().consume().unwrap();
}

#[test]
fn compatible_subcontracts_across_machines() {
    // A replicated object received where a singleton-defaulted type is
    // expected, across the network: §6.1 + §3.3 working together.
    let net = Network::new(NetConfig::default());
    let node_a = net.add_node("replica-machine");
    let node_b = net.add_node("client-machine");

    let replica_ctxs: Vec<Arc<DomainCtx>> = (0..2)
        .map(|i| ctx_on(node_a.kernel(), &format!("replica-{i}")))
        .collect();
    let client_ctx = ctx_on(node_b.kernel(), "client");

    let group = spring::services::ReplicatedFileGroup::build_with_transport(
        &replica_ctxs,
        b"shared",
        net.clone(),
    )
    .unwrap();

    // The group object's doors cross the network; the client unmarshals a
    // replicon object while statically expecting a plain file.
    let obj = group.object_for(&client_ctx).unwrap();
    let as_file_obj = obj.into_obj();
    assert_eq!(as_file_obj.subcontract().name(), "replicon");
    let f = fs::File::from_obj(as_file_obj).unwrap();
    assert_eq!(f.read(0, 6).unwrap(), b"shared");
}

#[test]
fn unreferenced_notification_reaches_the_server() {
    let kernel = Kernel::new("machine");
    let fs_ctx = ctx_on(&kernel, "fileserver");
    let client_ctx = ctx_on(&kernel, "client");

    let fileserver = FileServer::new(&fs_ctx, "m");
    fileserver.put("tmp", b"x");
    let obj = fileserver.export_file("tmp").unwrap();
    let before = kernel.stats();
    let shipped = ship_object(
        &spring::core::KernelTransport,
        obj,
        &client_ctx,
        &fs::FILE_TYPE,
    )
    .unwrap();
    shipped.consume().unwrap();
    let delta = kernel.stats().since(&before);
    // The last identifier died; the kernel notified the door's target (§7).
    assert_eq!(delta.unref_notifications, 1);
}
