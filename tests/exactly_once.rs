//! Fault-injection proof of at-most-once invocation.
//!
//! A deliberately non-idempotent append log is served across a lossy
//! simulated network, and a retrying client hammers it. Before the call
//! identity + reply cache existed, a reply lost on the wire made the
//! subcontract re-send an already-executed call, so the server applied it
//! twice. These tests sweep RNG seeds at `drop_prob = 0.3` and assert the
//! server-side application counter exactly matches the client's view of
//! successful calls — for both the reconnectable and the replicon
//! subcontract, with and without partitions forming mid-run.
//!
//! Each sweep appends its seeds to `target/exactly-once-seeds.txt` so a CI
//! failure can report exactly which seeds were exercised.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spring::core::{
    ship_object_copy, DomainCtx, Resolver, Result as SpringResult, SpringError, SpringObj, TypeInfo,
};
use spring::kernel::Kernel;
use spring::net::{NetConfig, Network};
use spring::services::{AppendLogClient, AppendLogServant, AppendLogState, APPEND_LOG_TYPE};
use spring::subcontracts::{
    register_standard, Reconnectable, ReplicaGroup, Replicon, RepliconServer, RetryPolicy,
};

/// The seeds every sweep runs; kept in one place so the recorded list in
/// `target/exactly-once-seeds.txt` matches what actually ran.
const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

/// Loss rate the issue demands the proof at.
const DROP_PROB: f64 = 0.3;

fn lossy() -> NetConfig {
    NetConfig {
        drop_prob: DROP_PROB,
        ..NetConfig::default()
    }
}

/// A retry policy tight enough to keep the sweep fast but with enough
/// budget that a call failing outright at `drop_prob = 0.3` is essentially
/// impossible (each attempt succeeds with probability ~0.49; thirty
/// failures in a row has probability ~2e-10).
fn fast_policy() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 30,
        interval: Duration::from_micros(200),
        max_interval: Duration::from_millis(2),
        deadline: Duration::from_secs(20),
        ..RetryPolicy::default()
    }
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&APPEND_LOG_TYPE);
    ctx
}

/// Records the seeds a sweep ran, for CI to upload on failure.
fn record_seeds(suite: &str, seeds: &[u64]) {
    let _ = std::fs::create_dir_all("target");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/exactly-once-seeds.txt")
    {
        let list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(f, "{suite}: drop_prob={DROP_PROB} seeds={}", list.join(","));
    }
}

/// A minimal name service for reconnection: bindings live in the server's
/// context and resolution ships a fresh copy over the network transport.
/// Object shipping rides the reliable stream (loss applies to invocation
/// traffic only), so re-resolve works even while calls are being dropped —
/// the same property a real name server on a TCP session would have.
struct NetNames {
    net: Arc<Network>,
    bound: Mutex<HashMap<String, SpringObj>>,
}

impl NetNames {
    fn new(net: Arc<Network>) -> Arc<NetNames> {
        Arc::new(NetNames {
            net,
            bound: Mutex::new(HashMap::new()),
        })
    }

    fn bind(&self, name: &str, obj: SpringObj) {
        self.bound.lock().insert(name.to_string(), obj);
    }

    fn resolver_for(self: &Arc<Self>, ctx: &Arc<DomainCtx>) -> Arc<dyn Resolver> {
        Arc::new(NetResolver {
            names: self.clone(),
            ctx: ctx.clone(),
        })
    }
}

struct NetResolver {
    names: Arc<NetNames>,
    ctx: Arc<DomainCtx>,
}

impl Resolver for NetResolver {
    fn resolve(&self, name: &str, expected: &'static TypeInfo) -> SpringResult<SpringObj> {
        let bound = self.names.bound.lock();
        let obj = bound
            .get(name)
            .ok_or(SpringError::Unsupported("name not bound"))?;
        ship_object_copy(&*self.names.net, obj, &self.ctx, expected)
    }
}

/// Checks the at-most-once invariant when some calls were *allowed* to
/// fail outright (tight budgets, partitions): every successful call
/// executed exactly once, and no call — successful or not — executed more
/// than once. A failed call may have executed once (an orphan: the server
/// ran it but every reply was lost); it must never have executed twice.
fn assert_at_most_once(seed: u64, state: &AppendLogState, succeeded: &[u64]) {
    let entries = state.entries();
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for &v in &entries {
        *counts.entry(v).or_insert(0) += 1;
    }
    for (&v, &c) in &counts {
        assert_eq!(
            c, 1,
            "seed {seed}: append {v} executed {c} times — retries double-executed",
        );
    }
    for &v in succeeded {
        assert!(
            counts.contains_key(&v),
            "seed {seed}: successful append {v} never reached the log",
        );
    }
    assert_eq!(state.applied(), entries.len() as u64);
}

/// Checks the exactly-once invariant: the server executed precisely the
/// calls the client saw succeed — no lost appends, no double-applies.
fn assert_exactly_once(seed: u64, state: &AppendLogState, succeeded: &[u64]) {
    assert_eq!(
        state.applied(),
        succeeded.len() as u64,
        "seed {seed}: server applied {} appends but the client saw {} succeed",
        state.applied(),
        succeeded.len(),
    );
    let mut entries = state.entries();
    entries.sort_unstable();
    let mut expected = succeeded.to_vec();
    expected.sort_unstable();
    assert_eq!(
        entries, expected,
        "seed {seed}: the log's contents must be exactly the successful appends, once each",
    );
}

/// The tentpole proof for the reconnectable subcontract: every attempt of
/// one logical call shares a nonce, so a retry whose predecessor executed
/// (reply lost on the wire) replays the cached reply instead of appending
/// again.
#[test]
fn reconnectable_appends_exactly_once_under_loss() {
    record_seeds("reconnectable_loss", &SEEDS);
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let server_node = net.add_node("server");
        let client_node = net.add_node("client");
        let server_ctx = ctx_on(server_node.kernel(), "append-server");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        client_ctx.register_subcontract(Reconnectable::with_policy(fast_policy()));

        let state = AppendLogState::new();
        let obj = Reconnectable::export(&server_ctx, AppendLogServant::new(state.clone()), "log")
            .unwrap();
        let names = NetNames::new(net.clone());
        client_ctx.set_resolver(names.resolver_for(&client_ctx));
        let client_obj = ship_object_copy(&*net, &obj, &client_ctx, &APPEND_LOG_TYPE).unwrap();
        names.bind("log", obj);
        let log = AppendLogClient(client_obj);

        net.reseed(seed);
        net.set_config(lossy());
        let mut succeeded = Vec::new();
        for value in 0..40u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }
        net.set_config(NetConfig::default());
        assert_exactly_once(seed, &state, &succeeded);
    }
}

/// The same proof for the replicon subcontract: three replicas on three
/// machines serve one shared log (standing in for the server-side state
/// synchronization the paper leaves to the service), and the group-shared
/// reply cache deduplicates a retry even when it fails over to a sibling
/// replica of the one that executed the first attempt.
#[test]
fn replicon_appends_exactly_once_under_loss() {
    record_seeds("replicon_loss", &SEEDS);
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let nodes: Vec<_> = (0..3).map(|i| net.add_node(format!("r{i}"))).collect();
        let client_node = net.add_node("client");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        client_ctx.register_subcontract(Replicon::with_policy(fast_policy()));

        let state = AppendLogState::new();
        let group = ReplicaGroup::with_transport(net.clone());
        for (i, node) in nodes.iter().enumerate() {
            let ctx = ctx_on(node.kernel(), &format!("replica-{i}"));
            group
                .add(RepliconServer::new(&ctx, AppendLogServant::new(state.clone())).unwrap())
                .unwrap();
        }
        let log = AppendLogClient(group.object_for(&client_ctx).unwrap());

        net.reseed(seed);
        net.set_config(lossy());
        let mut succeeded = Vec::new();
        for value in 0..40u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }
        net.set_config(NetConfig::default());
        assert_exactly_once(seed, &state, &succeeded);
    }
}

/// Property sweep: a partition forming mid-run and healing later never
/// breaks exactly-once, calls attempted into the partition fail within the
/// policy's budget (bounded attempts, deadline respected), and calls after
/// the heal succeed again.
#[test]
fn partitions_preserve_exactly_once_and_respect_budget() {
    record_seeds("reconnectable_partition", &SEEDS);
    // Tight budget so exhaustion against a partition is fast and its
    // wall-clock bound is easy to reason about.
    let policy = RetryPolicy {
        max_attempts: 6,
        interval: Duration::from_millis(1),
        max_interval: Duration::from_millis(4),
        deadline: Duration::from_secs(5),
        ..RetryPolicy::default()
    };
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let server_node = net.add_node("server");
        let client_node = net.add_node("client");
        let server_ctx = ctx_on(server_node.kernel(), "append-server");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        client_ctx.register_subcontract(Reconnectable::with_policy(policy));

        let state = AppendLogState::new();
        let obj = Reconnectable::export(&server_ctx, AppendLogServant::new(state.clone()), "log")
            .unwrap();
        let names = NetNames::new(net.clone());
        client_ctx.set_resolver(names.resolver_for(&client_ctx));
        let client_obj = ship_object_copy(&*net, &obj, &client_ctx, &APPEND_LOG_TYPE).unwrap();
        names.bind("log", obj);
        let log = AppendLogClient(client_obj);

        net.reseed(seed);
        net.set_config(lossy());
        let mut succeeded = Vec::new();
        for value in 0..10u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }

        // Cut the only route. Every attempt now fails, so the invocation
        // must exhaust its budget — within the policy deadline, not hang.
        net.partition(client_node.id(), server_node.id());
        let started = Instant::now();
        let err = log.append(1_000).expect_err("no route to the server");
        assert!(
            matches!(err, SpringError::Exhausted(_)),
            "seed {seed}: expected budget exhaustion, got {err:?}",
        );
        assert!(
            started.elapsed() < policy.deadline,
            "seed {seed}: a partitioned call must fail within the policy deadline, took {:?}",
            started.elapsed(),
        );

        // Heal and keep going: later calls succeed and the invariant holds
        // across the whole run.
        net.heal_all();
        for value in 10..20u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }
        net.set_config(NetConfig::default());
        assert_at_most_once(seed, &state, &succeeded);
    }
}

/// The replicon variant of the partition property: cutting the client off
/// from one replica fails over (no error, still exactly-once); cutting it
/// off from all replicas exhausts the budget in bounded time; healing
/// restores service.
#[test]
fn replicon_partitions_fail_over_then_exhaust_in_bounded_time() {
    record_seeds("replicon_partition", &SEEDS);
    let policy = RetryPolicy {
        max_attempts: 6,
        interval: Duration::from_millis(1),
        max_interval: Duration::from_millis(4),
        deadline: Duration::from_secs(5),
        ..RetryPolicy::default()
    };
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let nodes: Vec<_> = (0..3).map(|i| net.add_node(format!("r{i}"))).collect();
        let client_node = net.add_node("client");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        client_ctx.register_subcontract(Replicon::with_policy(policy));

        let state = AppendLogState::new();
        let group = ReplicaGroup::with_transport(net.clone());
        for (i, node) in nodes.iter().enumerate() {
            let ctx = ctx_on(node.kernel(), &format!("replica-{i}"));
            group
                .add(RepliconServer::new(&ctx, AppendLogServant::new(state.clone())).unwrap())
                .unwrap();
        }
        let log = AppendLogClient(group.object_for(&client_ctx).unwrap());

        net.reseed(seed);
        net.set_config(lossy());
        let mut succeeded = Vec::new();
        for value in 0..10u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }

        // One replica unreachable: failover absorbs it.
        net.partition(client_node.id(), nodes[0].id());
        for value in 10..15u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }

        // All replicas unreachable: bounded-time exhaustion.
        for node in &nodes {
            net.partition(client_node.id(), node.id());
        }
        let started = Instant::now();
        let err = log.append(1_000).expect_err("no route to any replica");
        assert!(
            matches!(err, SpringError::Exhausted(_)),
            "seed {seed}: expected budget exhaustion, got {err:?}",
        );
        assert!(
            started.elapsed() < policy.deadline,
            "seed {seed}: partitioned invocation must fail within the deadline, took {:?}",
            started.elapsed(),
        );

        net.heal_all();
        for value in 15..25u64 {
            if log.append(value).is_ok() {
                succeeded.push(value);
            }
        }
        net.set_config(NetConfig::default());
        assert_at_most_once(seed, &state, &succeeded);
    }
}

/// Calls that carry no identity must not hit the dedup machinery at all:
/// two identical plain calls both execute (the pre-existing at-least-once
/// contract for ordinary subcontracts is unchanged).
#[test]
fn identity_free_calls_are_untouched_by_dedup() {
    let kernel = Kernel::new("solo");
    let ctx = ctx_on(&kernel, "server");
    let state = AppendLogState::new();
    let obj = Reconnectable::export(&ctx, AppendLogServant::new(state.clone()), "log").unwrap();
    let log = AppendLogClient(obj);
    // Same-domain calls still run through the reconnectable invoke path and
    // therefore carry a call identity per logical call; two *separate*
    // logical calls with equal payloads must both execute.
    assert_eq!(log.append(7).unwrap(), 1);
    assert_eq!(log.append(7).unwrap(), 2);
    assert_eq!(state.applied(), 2);
    assert_eq!(state.entries(), vec![7, 7]);
}

/// The pipelined variant of the exactly-once proof: bursts of overlapping
/// asynchronous appends, issued through the pipeline subcontract over the
/// same lossy network. Batching may put several in-flight attempts in one
/// wire frame (one loss roll kills all of them at once), and each call's
/// retry loop runs on a worker thread — yet every attempt of one logical
/// call still shares its nonce, so the server-side reply cache must keep
/// the log exactly equal to the set of successful appends.
#[test]
fn pipelined_bursts_append_exactly_once_under_loss() {
    use spring::core::{decode_reply_status, op_hash, ReplyStatus};
    use spring::subcontracts::Pipeline;

    const BURSTS: u64 = 5;
    const BURST: u64 = 8;

    record_seeds("pipeline_loss", &SEEDS);
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let server_node = net.add_node("server");
        let client_node = net.add_node("client");
        let server_ctx = ctx_on(server_node.kernel(), "append-server");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        client_ctx.register_subcontract(Pipeline::with_policy(fast_policy()));

        let state = AppendLogState::new();
        let obj = Pipeline::export(&server_ctx, AppendLogServant::new(state.clone())).unwrap();
        let client_obj = ship_object_copy(&*net, &obj, &client_ctx, &APPEND_LOG_TYPE).unwrap();

        net.reseed(seed);
        net.set_config(lossy());
        let mut succeeded = Vec::new();
        for burst in 0..BURSTS {
            let promises: Vec<_> = (0..BURST)
                .map(|i| {
                    let value = burst * BURST + i;
                    let mut call = client_obj.start_call(op_hash("append")).unwrap();
                    call.put_u64(value);
                    (value, Pipeline::invoke_async(&client_obj, call).unwrap())
                })
                .collect();
            for (value, promise) in promises {
                let ok = promise.wait().is_ok_and(|mut reply| {
                    matches!(decode_reply_status(&mut reply), Ok(ReplyStatus::Ok))
                });
                if ok {
                    succeeded.push(value);
                }
            }
        }
        net.set_config(NetConfig::default());
        assert_exactly_once(seed, &state, &succeeded);
    }
}
