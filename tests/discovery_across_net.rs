//! §6.2 with every piece at full distance: the naming context lives on one
//! machine, the replicated service on a second, and the old program on a
//! third — the subcontract identifier is resolved over the network, the
//! library is linked, and the freshly learned subcontract talks through
//! proxy doors.

use std::sync::Arc;

use spring::core::{op_hash, ship_object, DomainCtx, LibraryStore, ScId, SpringError, TypeInfo};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NamingLibraryNames, NAMING_CONTEXT_TYPE};
use spring::net::{NetConfig, Network};
use spring::subcontracts::{
    register_standard, standard_library, ReplicaGroup, Replicon, RepliconServer, Simplex, Singleton,
};

static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&spring::core::OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

struct Fixed(i64);

impl spring::core::Dispatch for Fixed {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &spring::core::ServerCtx,
        op: u32,
        _args: &mut spring::buf::CommBuffer,
        reply: &mut spring::buf::CommBuffer,
    ) -> spring::core::Result<()> {
        if op == op_hash("get") {
            spring::core::encode_ok(reply);
            reply.put_i64(self.0);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

#[test]
fn dynamic_discovery_spans_three_machines() {
    let net = Network::new(NetConfig::default());
    let naming_node = net.add_node("naming-machine");
    let service_node = net.add_node("service-machine");
    let client_node = net.add_node("client-machine");

    // The name service.
    let ns_ctx = ctx_on(naming_node.kernel(), "name-server");
    let ns = NameServer::new(&ns_ctx);

    // The administrator (on the naming machine) installs the library on the
    // client machine's store and publishes the ID -> library mapping.
    let store = LibraryStore::new();
    store.install("replicon.so", "/usr/lib/subcontracts", standard_library());
    let admin_ctx = ctx_on(naming_node.kernel(), "admin");
    let admin_names = NamingLibraryNames::new(
        NameClient::from_obj(
            ship_object(
                &*net,
                ns.root_object().unwrap(),
                &admin_ctx,
                &NAMING_CONTEXT_TYPE,
            )
            .unwrap(),
        )
        .unwrap(),
        "subcontracts",
    );
    admin_names
        .publish(&admin_ctx, Replicon::ID, "replicon.so")
        .unwrap();

    // A replicated counter on the service machine.
    let service_ctx = ctx_on(service_node.kernel(), "service");
    let group = ReplicaGroup::with_transport(net.clone());
    group
        .add(RepliconServer::new(&service_ctx, Arc::new(Fixed(2026))).unwrap())
        .unwrap();

    // The old program on a third machine: standard client-server
    // subcontracts only, no replicon, naming reached over the network.
    let old = DomainCtx::new(client_node.kernel().create_domain("old-program"));
    old.register_subcontract(Singleton::new());
    old.register_subcontract(Simplex::new());
    old.types().register(&COUNTER_TYPE);
    old.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    old.set_library_names(NamingLibraryNames::new(
        NameClient::from_obj(
            ship_object(&*net, ns.root_object().unwrap(), &old, &NAMING_CONTEXT_TYPE).unwrap(),
        )
        .unwrap(),
        "subcontracts",
    ));

    // Moment of truth: a replicon object crosses two network hops into a
    // program that has never heard of replication.
    let before = net.stats();
    let obj = group.object_for(&service_ctx).unwrap();
    let arrived = ship_object(&*net, obj, &old, &COUNTER_TYPE).unwrap();
    assert_eq!(arrived.subcontract().name(), "replicon");
    // Discovery really went over the wire (naming calls were forwarded).
    assert!(net.stats().since(&before).calls_forwarded >= 1);

    let call = arrived.start_call(op_hash("get")).unwrap();
    let mut reply = arrived.invoke(call).unwrap();
    spring::core::decode_reply_status(&mut reply).unwrap();
    assert_eq!(reply.get_i64().unwrap(), 2026);
    let _ = ScId::from_name("replicon");
}
