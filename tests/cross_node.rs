//! Cross-machine behaviour under fault injection: caching wins, replicon
//! failover over partitions, and reconnection through the real name service.

use std::sync::Arc;
use std::time::Duration;

use spring::core::{ship_object, DomainCtx};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::net::{NetConfig, Network};
use spring::services::{file_cache_manager, fs, FileServer, ReplicatedFileGroup};
use spring::subcontracts::{register_standard, Reconnectable, RetryPolicy};

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    spring::services::register_fs_types(&ctx);
    ctx
}

#[test]
fn caching_avoids_network_traffic() {
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");

    let server_ctx = ctx_on(server_node.kernel(), "fileserver");
    let client_ctx = ctx_on(client_node.kernel(), "client");
    let mgr_ctx = ctx_on(client_node.kernel(), "manager");
    let ns_ctx = ctx_on(client_node.kernel(), "naming");

    let ns = NameServer::new(&ns_ctx);
    let manager = file_cache_manager(&mgr_ctx);
    let mgr_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &mgr_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    mgr_names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    client_ctx.set_resolver(Arc::new(client_names));

    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", b"highly cacheable");
    let cached = fs::CacheableFile::from_obj(
        ship_object(
            &*net,
            fileserver.export_cacheable("data").unwrap(),
            &client_ctx,
            &fs::CACHEABLE_FILE_TYPE,
        )
        .unwrap(),
    )
    .unwrap();

    // First read crosses the wire; the rest are answered on-machine.
    let before = net.stats();
    for _ in 0..20 {
        assert_eq!(cached.read(0, 6).unwrap(), b"highly");
    }
    let delta = net.stats().since(&before);
    assert_eq!(
        delta.calls_forwarded, 1,
        "only the cache miss crossed the network"
    );
    assert_eq!(manager.stats().hits(), 19);

    // Versus an uncached file: every read crosses.
    fileserver.put("raw", b"not cached");
    let raw = fs::File::from_obj(
        ship_object(
            &*net,
            fileserver.export_file("raw").unwrap(),
            &client_ctx,
            &fs::FILE_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let before = net.stats();
    for _ in 0..20 {
        assert_eq!(raw.read(0, 3).unwrap(), b"not");
    }
    assert_eq!(net.stats().since(&before).calls_forwarded, 20);
}

#[test]
fn replicon_survives_partition_then_crash() {
    let net = Network::new(NetConfig::default());
    let nodes: Vec<_> = (0..3).map(|i| net.add_node(format!("r{i}"))).collect();
    let client_node = net.add_node("client");

    let replica_ctxs: Vec<Arc<DomainCtx>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ctx_on(n.kernel(), &format!("replica-{i}")))
        .collect();
    let client_ctx = ctx_on(client_node.kernel(), "client");

    let group =
        ReplicatedFileGroup::build_with_transport(&replica_ctxs, b"alpha", net.clone()).unwrap();
    let f = group.object_for(&client_ctx).unwrap();
    assert_eq!(f.read(0, 5).unwrap(), b"alpha");

    // Partition the client from the first replica's machine: invoke fails
    // over to a reachable one without dropping the call.
    net.partition(client_node.id(), nodes[0].id());
    assert_eq!(f.read(0, 5).unwrap(), b"alpha");
    net.heal_all();

    // Now crash a machine outright; group management removes it and the
    // reply piggyback refreshes the client's door set.
    group.crash_replica(1).unwrap();
    f.write(0, b"bravo").unwrap();
    assert_eq!(group.replica_content(0), b"bravo");
    assert_eq!(group.replica_content(2), b"bravo");
}

#[test]
fn reconnect_through_real_naming_across_machines() {
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");
    let ns_node = net.add_node("naming");

    let policy = RetryPolicy {
        max_attempts: 20,
        interval: Duration::from_millis(2),
        ..RetryPolicy::default()
    };
    let make_ctx = |kernel: &Kernel, name: &str| {
        let ctx = ctx_on(kernel, name);
        ctx.register_subcontract(Reconnectable::with_policy(policy));
        ctx
    };

    let ns_ctx = make_ctx(ns_node.kernel(), "name-server");
    let ns = NameServer::new(&ns_ctx);

    // Generation 1 of a file service, reconnectable under "svc".
    let gen1 = make_ctx(server_node.kernel(), "server-gen1");
    let fileserver1 = FileServer::new(&gen1, "m");
    fileserver1.put("state", b"persistent");
    let disp = {
        // Reconnectable needs the skeleton; build one over the servant the
        // file server would use.
        struct Stateless(Arc<FileServer>);
        impl fs::FileServant for Stateless {
            fn size(&self) -> Result<i64, fs::FileError> {
                self.file().size()
            }
            fn read(&self, o: i64, c: i64) -> Result<Vec<u8>, fs::FileError> {
                self.file().read(o, c)
            }
            fn write(&self, o: i64, d: Vec<u8>) -> Result<(), fs::FileError> {
                self.file().write(o, &d)
            }
            fn truncate(&self, s: i64) -> Result<(), fs::FileError> {
                self.file().truncate(s)
            }
            fn stat(&self) -> Result<fs::FileStat, fs::FileError> {
                self.file().stat()
            }
            fn version(&self) -> Result<i64, fs::FileError> {
                self.file().version()
            }
        }
        impl Stateless {
            fn file(&self) -> fs::File {
                fs::File::from_obj(self.0.export_file("state").unwrap()).unwrap()
            }
        }
        fs::FileSkeleton::new(Arc::new(Stateless(fileserver1.clone())))
    };
    let obj = Reconnectable::export(&gen1, disp, "svc").unwrap();
    let gen1_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &gen1,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    gen1_names.bind("svc", &obj).unwrap();

    // Client on another machine.
    let client_ctx = make_ctx(client_node.kernel(), "client");
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    let f = fs::File::from_obj(client_names.resolve("svc", &fs::FILE_TYPE).unwrap()).unwrap();
    client_ctx.set_resolver(Arc::new(client_names));
    assert_eq!(f.read(0, 10).unwrap(), b"persistent");

    // Crash generation 1; restart generation 2 on the same machine and
    // re-bind the name.
    gen1.domain().crash();
    let gen2 = make_ctx(server_node.kernel(), "server-gen2");
    let servant2 = {
        struct Fixed;
        impl fs::FileServant for Fixed {
            fn size(&self) -> Result<i64, fs::FileError> {
                Ok(10)
            }
            fn read(&self, _o: i64, _c: i64) -> Result<Vec<u8>, fs::FileError> {
                Ok(b"persistent".to_vec())
            }
            fn write(&self, _o: i64, _d: Vec<u8>) -> Result<(), fs::FileError> {
                Ok(())
            }
            fn truncate(&self, _s: i64) -> Result<(), fs::FileError> {
                Ok(())
            }
            fn stat(&self) -> Result<fs::FileStat, fs::FileError> {
                Ok(fs::FileStat {
                    size: 10,
                    version: 1,
                    writable: true,
                })
            }
            fn version(&self) -> Result<i64, fs::FileError> {
                Ok(1)
            }
        }
        fs::FileSkeleton::new(Arc::new(Fixed))
    };
    let obj2 = Reconnectable::export(&gen2, servant2, "svc").unwrap();
    let gen2_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &gen2,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    gen2_names.unbind("svc").unwrap();
    gen2_names.bind_consume("svc", obj2).unwrap();

    // The client's next call reconnects across the network.
    assert_eq!(f.read(0, 10).unwrap(), b"persistent");
}
