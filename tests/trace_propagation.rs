//! Distributed-trace propagation across machines and through fault
//! injection.
//!
//! The trace context travels in the message envelope — the same side
//! channel subcontracts use for their own dialogue (§5, §7) — so one trace
//! id must span the client's stub, the proxy door, both network hops, and
//! the server's door, with no change to any stub. With a drop injected on
//! the first attempt, the reconnectable retry must appear as a failed
//! sibling span next to the attempt that succeeded.

use std::sync::Arc;
use std::time::Duration;

use spring::buf::CommBuffer;
use spring::core::{
    decode_reply_status, encode_ok, op_hash, ship_object, ship_object_copy, Dispatch, DomainCtx,
    Resolver, Result, ServerCtx, SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};
use spring::kernel::Kernel;
use spring::net::{NetConfig, Network};
use spring::subcontracts::{register_standard, Reconnectable, RetryPolicy};
use spring::trace::SpanNode;

/// Tracing state is process-global; run the tests in this binary one at a
/// time.
static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

static PINGER_TYPE: TypeInfo = TypeInfo {
    name: "trace-test-pinger",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring::subcontracts::Singleton::ID,
};

struct Pinger;

impl Dispatch for Pinger {
    fn type_info(&self) -> &'static TypeInfo {
        &PINGER_TYPE
    }
    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op == op_hash("ping") {
            encode_ok(reply);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

fn ping(obj: &SpringObj) -> Result<()> {
    let call = obj.start_call(op_hash("ping"))?;
    let mut reply = obj.invoke(call)?;
    decode_reply_status(&mut reply).map(|_| ())
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.register_subcontract(Reconnectable::with_policy(RetryPolicy {
        max_attempts: 4,
        interval: Duration::from_millis(1),
        ..RetryPolicy::default()
    }));
    ctx
}

/// Between reconnect attempts the subcontract re-resolves the object name;
/// this resolver also heals the network, so the drop injected for the
/// first attempt deterministically ends before the retry.
struct HealingResolver {
    net: Arc<Network>,
    source: SpringObj,
    ctx: Arc<DomainCtx>,
}

impl Resolver for HealingResolver {
    fn resolve(&self, _name: &str, expected: &'static TypeInfo) -> Result<SpringObj> {
        self.net.set_config(NetConfig::default());
        ship_object_copy(&*self.net, &self.source, &self.ctx, expected)
    }
}

/// Every node in the subtree whose key matches.
fn find<'a>(nodes: &'a [SpanNode], key: &str, out: &mut Vec<&'a SpanNode>) {
    for n in nodes {
        if n.event.key == key {
            out.push(n);
        }
        find(&n.children, key, out);
    }
}

fn find_all<'a>(roots: &'a [SpanNode], key: &str) -> Vec<&'a SpanNode> {
    let mut out = Vec::new();
    find(roots, key, &mut out);
    out
}

#[test]
fn one_trace_spans_all_hops_and_retry_is_a_failed_sibling() {
    let _gate = GATE.lock().unwrap();
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server-machine");
    let client_node = net.add_node("client-machine");
    let server_ctx = ctx_on(server_node.kernel(), "server");
    let client_ctx = ctx_on(client_node.kernel(), "client");

    let obj = Reconnectable::export(&server_ctx, Arc::new(Pinger), "svc").unwrap();
    let source = obj.copy().unwrap();
    let client_obj = ship_object(&*net, obj, &client_ctx, &PINGER_TYPE).unwrap();
    client_ctx.set_resolver(Arc::new(HealingResolver {
        net: net.clone(),
        source,
        ctx: client_ctx.clone(),
    }));

    // Drop every invocation message until the resolver heals the network.
    net.set_config(NetConfig {
        drop_prob: 1.0,
        ..NetConfig::default()
    });
    spring::trace::reset();
    spring::trace::set_enabled(true);
    let outcome = ping(&client_obj);
    spring::trace::set_enabled(false);
    outcome.unwrap();

    let forest = spring::trace::span_forest();
    assert_eq!(
        forest.len(),
        1,
        "everything the call touched shares one trace: {}",
        spring::trace::render_text()
    );
    let (_, roots) = &forest[0];
    assert_eq!(roots.len(), 1, "a single root span");
    let root = &roots[0];
    assert_eq!(
        root.event.key, "invoke",
        "the client stub's span is the root"
    );
    assert!(
        root.size() >= 4,
        "a cross-machine call is at least stub -> door -> forward -> hop:\n{}",
        spring::trace::render_text()
    );

    // The injected drop shows up as a failed attempt next to the retry
    // that succeeded — siblings under the same parent.
    let attempts = find_all(roots, "reconnectable.attempt");
    assert_eq!(attempts.len(), 2, "one failed attempt, one retry");
    assert!(attempts[0].event.failed && !attempts[1].event.failed);
    assert_eq!(attempts[0].event.parent, root.event.span);
    assert_eq!(attempts[1].event.parent, root.event.span);
    assert!(
        !find_all(std::slice::from_ref(attempts[0]), "net.hop")
            .iter()
            .any(|h| !h.event.failed),
        "no hop under the dropped attempt succeeded"
    );
    assert!(
        find_all(std::slice::from_ref(attempts[0]), "net.hop")[0]
            .event
            .failed,
        "the drop is recorded as a failed hop"
    );

    // The successful attempt crosses the network: its subtree holds door
    // calls on both machines, the server's parented (via the piggybacked
    // envelope header) under the forwarding span.
    let winner = std::slice::from_ref(attempts[1]);
    let doors = find_all(winner, "door_call");
    let client_node_id = client_node.id().raw();
    let server_node_id = server_node.id().raw();
    assert!(
        doors.iter().any(|d| d.event.scope >> 32 == client_node_id),
        "proxy door call on the client machine"
    );
    let server_door = doors
        .iter()
        .find(|d| d.event.scope >> 32 == server_node_id)
        .expect("door call on the server machine");
    let forward = &find_all(winner, "net.forward")[0];
    assert_eq!(
        server_door.event.parent, forward.event.span,
        "the server-side door call reattaches under the network forward"
    );
    assert!(
        find_all(winner, "net.hop").len() >= 2,
        "request and reply hops both recorded"
    );
    let serve = &find_all(winner, "caching.serve")[0];
    assert_eq!(
        serve.event.parent, server_door.event.span,
        "the server-side subcontract span nests in the server door call"
    );
    assert_eq!(serve.event.scope >> 32, server_node_id);
}

/// A reply served out of the cache's memo must stay inside the caller's
/// trace: the memoised bytes were recorded under the *original* miss's
/// envelope, so replaying them used to hand the caller a reply stamped with
/// a foreign (already-finished) trace context, disconnecting the hit from
/// the invocation that asked for it.
#[test]
fn cache_hits_stay_in_the_callers_trace() {
    let _gate = GATE.lock().unwrap();
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("file-machine");
    let client_node = net.add_node("cache-machine");
    let server_ctx = ctx_on(server_node.kernel(), "fileserver");
    let client_ctx = ctx_on(client_node.kernel(), "client");
    let mgr_ctx = ctx_on(client_node.kernel(), "manager");
    spring::services::register_fs_types(&client_ctx);

    let fileserver = spring::services::FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", b"memoised contents");
    let obj = fileserver.export_cacheable("data").unwrap();

    let manager = spring::services::file_cache_manager(&mgr_ctx);
    client_ctx.set_resolver(Arc::new(HealingResolver {
        net: net.clone(),
        source: manager.export().unwrap(),
        ctx: client_ctx.clone(),
    }));
    let shipped = ship_object(
        &*net,
        obj,
        &client_ctx,
        &spring::services::fs::CACHEABLE_FILE_TYPE,
    )
    .unwrap();
    let file = spring::services::fs::CacheableFile::from_obj(shipped).unwrap();

    // First read misses and populates the memo; untraced warm-up.
    assert_eq!(file.read(0, 8).unwrap(), b"memoised");

    spring::trace::reset();
    spring::trace::set_enabled(true);
    let outcome = file.read(0, 8);
    spring::trace::set_enabled(false);
    assert_eq!(outcome.unwrap(), b"memoised");

    let forest = spring::trace::span_forest();
    assert_eq!(
        forest.len(),
        1,
        "the memo replay must not introduce a second trace: {}",
        spring::trace::render_text()
    );
    let (_, roots) = &forest[0];
    assert_eq!(roots.len(), 1, "a single root span");
    let root = &roots[0];
    assert_eq!(
        root.event.key, "invoke",
        "the client stub's span is the root"
    );

    // The hit is recorded on the caching machine, inside this trace —
    // nested under the local door call into the cache servant.
    let hits = find_all(roots, "caching.hit");
    assert_eq!(
        hits.len(),
        1,
        "the second read is served from the memo:\n{}",
        spring::trace::render_text()
    );
    let client_node_id = client_node.id().raw();
    assert_eq!(hits[0].event.scope >> 32, client_node_id);
    let doors = find_all(roots, "door_call");
    assert!(
        doors
            .iter()
            .any(|d| d.event.span == hits[0].event.parent && d.event.scope >> 32 == client_node_id),
        "the hit nests in the door call on the caching machine:\n{}",
        spring::trace::render_text()
    );

    // Nothing reached the file server: no server-side dispatch span, and no
    // span at all recorded on the server machine.
    assert!(find_all(roots, "caching.serve").is_empty());
    let server_node_id = server_node.id().raw();
    fn all<'a>(nodes: &'a [SpanNode], out: &mut Vec<&'a SpanNode>) {
        for n in nodes {
            out.push(n);
            all(&n.children, out);
        }
    }
    let mut every = Vec::new();
    all(roots, &mut every);
    assert!(
        every.iter().all(|n| n.event.scope >> 32 != server_node_id),
        "a memo hit must not touch the server machine:\n{}",
        spring::trace::render_text()
    );
}

#[test]
fn disabled_tracing_records_nothing() {
    let _gate = GATE.lock().unwrap();
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("sa");
    let client_node = net.add_node("sb");
    let server_ctx = ctx_on(server_node.kernel(), "server");
    let client_ctx = ctx_on(client_node.kernel(), "client");

    let obj = Reconnectable::export(&server_ctx, Arc::new(Pinger), "svc2").unwrap();
    let client_obj = ship_object(&*net, obj, &client_ctx, &PINGER_TYPE).unwrap();

    spring::trace::reset();
    assert!(!spring::trace::enabled());
    for _ in 0..10 {
        ping(&client_obj).unwrap();
    }
    assert!(
        spring::trace::span_forest().is_empty(),
        "no spans recorded while tracing is off"
    );
}

/// A pipelined burst stays inside the caller's trace even though every
/// call runs on a worker thread and several calls share wire frames: each
/// async invocation records a `pipeline.attempt` span parented under the
/// span that was current when it was issued, each server-side door call
/// reattaches under its own call's `net.forward` (per-call identity
/// survives the shared frame), and the `net.batch` spans' scids — the
/// per-frame call counts — sum to exactly the number of calls issued.
#[test]
fn pipelined_burst_spans_parent_under_the_issuing_span() {
    let _gate = GATE.lock().unwrap();
    use spring::subcontracts::Pipeline;
    const CALLS: usize = 4;

    let net = Network::new(NetConfig {
        // Generous linger so the burst coalesces; flushing still happens on
        // the announced-count trigger, not by waiting this out.
        batch_linger: Duration::from_millis(20),
        ..NetConfig::default()
    });
    let server_node = net.add_node("pipe-server");
    let client_node = net.add_node("pipe-client");
    let server_ctx = ctx_on(server_node.kernel(), "server");
    let client_ctx = ctx_on(client_node.kernel(), "client");

    let obj = Pipeline::export(&server_ctx, Arc::new(Pinger)).unwrap();
    let client_obj = ship_object(&*net, obj, &client_ctx, &PINGER_TYPE).unwrap();

    // Untraced warm-up spawns the worker pool.
    let warm: Vec<_> = (0..CALLS)
        .map(|_| {
            let call = client_obj.start_call(op_hash("ping")).unwrap();
            Pipeline::invoke_async(&client_obj, call).unwrap()
        })
        .collect();
    for p in warm {
        p.wait().unwrap();
    }

    spring::trace::reset();
    spring::trace::set_enabled(true);
    {
        // The burst is issued under an explicit root, standing in for the
        // application span a real caller would hold.
        let _root = spring::trace::span_start("burst.root", 0, 0);
        let promises: Vec<_> = (0..CALLS)
            .map(|_| {
                let call = client_obj.start_call(op_hash("ping")).unwrap();
                Pipeline::invoke_async(&client_obj, call).unwrap()
            })
            .collect();
        for p in promises {
            p.wait().unwrap();
        }
    }
    spring::trace::set_enabled(false);

    let forest = spring::trace::span_forest();
    assert_eq!(
        forest.len(),
        1,
        "worker threads and shared frames must not split the trace: {}",
        spring::trace::render_text()
    );
    let (_, roots) = &forest[0];
    assert_eq!(roots.len(), 1, "a single root span");
    let root = &roots[0];
    assert_eq!(root.event.key, "burst.root");

    let attempts = find_all(roots, "pipeline.attempt");
    assert_eq!(
        attempts.len(),
        CALLS,
        "one attempt span per pipelined call:\n{}",
        spring::trace::render_text()
    );
    for attempt in &attempts {
        assert!(!attempt.event.failed, "no faults were injected");
        assert_eq!(
            attempt.event.parent, root.event.span,
            "attempts parent under the span current at issue time"
        );
        // Per-call identity survives the shared frame: this call's
        // server-side door call reattaches under this call's forward span.
        let subtree = std::slice::from_ref(*attempt);
        let forward = &find_all(subtree, "net.forward")[0];
        let server_node_id = server_node.id().raw();
        let server_door = find_all(roots, "door_call")
            .into_iter()
            .any(|d| d.event.scope >> 32 == server_node_id && d.event.parent == forward.event.span);
        assert!(
            server_door,
            "each attempt's server door call parents under its own forward:\n{}",
            spring::trace::render_text()
        );
    }

    // The frame spans carry their call counts; however the burst split,
    // every call rode exactly one frame.
    let batches = find_all(roots, "net.batch");
    assert!(
        !batches.is_empty() && batches.len() <= CALLS,
        "between one and {CALLS} frames:\n{}",
        spring::trace::render_text()
    );
    let total: u64 = batches.iter().map(|b| b.event.scid).sum();
    assert_eq!(
        total,
        CALLS as u64,
        "frame call counts must sum to the burst size:\n{}",
        spring::trace::render_text()
    );
}
