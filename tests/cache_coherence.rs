//! Fault-injection proof of cross-machine cache coherence.
//!
//! A coherent `cacheable_file` is attached from several machines' cache
//! managers over a lossy simulated network. Writes go through one machine's
//! cache — or directly through the exporting server's own D2 path — and
//! every other machine must stop serving the old contents within one lease
//! interval, even though invalidation callbacks can be dropped on the wire.
//! These tests sweep RNG seeds at `drop_prob = 0.3`, include a partition
//! forming mid-run and healing, and pin the callback registration protocol
//! with door-count regression checks (no identifier may leak from
//! attach/detach churn or from failed unmarshals).
//!
//! Each sweep appends its seeds to `target/cache-coherence-seeds.txt` so a
//! CI failure can report exactly which seeds were exercised.

use std::collections::HashMap;
use std::io::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spring::core::{
    ship_object_copy, DomainCtx, Resolver, Result as SpringResult, SpringError, SpringObj, TypeInfo,
};
use spring::net::{NetConfig, Network, Node};
use spring::services::{file_cache_manager, fs, register_fs_types, FileServer};
use spring::subcontracts::register_standard;

/// The seeds every sweep runs; kept in one place so the recorded list in
/// `target/cache-coherence-seeds.txt` matches what actually ran.
const SEEDS: [u64; 10] = [1, 2, 3, 5, 8, 13, 21, 34, 55, 89];

/// Loss rate the issue demands the proof at.
const DROP_PROB: f64 = 0.3;

/// Lease granted by the coherent server under test.
const LEASE: Duration = Duration::from_millis(40);

/// Measurement slack on top of the lease: a stale read observed at
/// `LEASE + SLACK` after the write was necessarily *served* within the
/// lease (the slack only covers scheduling between the cache answering and
/// this thread checking the clock). Anything later is a coherence bug.
const SLACK: Duration = Duration::from_millis(40);

fn lossy() -> NetConfig {
    NetConfig {
        drop_prob: DROP_PROB,
        ..NetConfig::default()
    }
}

fn ctx_on(node: &Node, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(node.kernel().create_domain(name));
    register_standard(&ctx);
    register_fs_types(&ctx);
    ctx
}

/// Records the seeds a sweep ran, for CI to upload on failure.
fn record_seeds(suite: &str, seeds: &[u64]) {
    let _ = std::fs::create_dir_all("target");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/cache-coherence-seeds.txt")
    {
        let list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(f, "{suite}: drop_prob={DROP_PROB} seeds={}", list.join(","));
    }
}

/// Machine-local names: each machine binds its own cache manager here, and
/// resolution ships a fresh copy over the (reliable) object stream to the
/// resolving context — the same topology the paper's machine-local naming
/// context gives the caching subcontract (§8.2).
struct LocalNames {
    net: Arc<Network>,
    bound: Mutex<HashMap<String, SpringObj>>,
}

impl LocalNames {
    fn new(net: Arc<Network>) -> Arc<LocalNames> {
        Arc::new(LocalNames {
            net,
            bound: Mutex::new(HashMap::new()),
        })
    }

    fn bind(&self, name: &str, obj: SpringObj) {
        self.bound.lock().insert(name.to_string(), obj);
    }

    fn resolver_for(self: &Arc<Self>, ctx: &Arc<DomainCtx>) -> Arc<dyn Resolver> {
        Arc::new(LocalResolver {
            names: self.clone(),
            ctx: ctx.clone(),
        })
    }
}

struct LocalResolver {
    names: Arc<LocalNames>,
    ctx: Arc<DomainCtx>,
}

impl Resolver for LocalResolver {
    fn resolve(&self, name: &str, expected: &'static TypeInfo) -> SpringResult<SpringObj> {
        let bound = self.names.bound.lock();
        let obj = bound
            .get(name)
            .ok_or(SpringError::Unsupported("name not bound"))?;
        ship_object_copy(&*self.names.net, obj, &self.ctx, expected)
    }
}

/// One client machine: a domain holding the shipped file handle, plus the
/// machine-local cache manager it attached through.
struct CacheMachine {
    node: Node,
    file: fs::CacheableFile,
}

/// Builds a coherent-file topology: one server machine exporting `data`
/// coherently with [`LEASE`], plus `n` client machines, each with its own
/// cache manager and an attached handle. Shipping happens under the
/// *reliable* default config; callers flip the network lossy afterwards.
fn coherent_setup(
    net: &Arc<Network>,
    n: usize,
) -> (Node, Arc<FileServer>, fs::CacheableFile, Vec<CacheMachine>) {
    let server_node = net.add_node("server");
    let server_ctx = ctx_on(&server_node, "fileserver");
    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", &0u64.to_le_bytes());
    let (obj, _stats) = fileserver.export_coherent("data", LEASE).unwrap();

    let mut machines = Vec::new();
    for i in 0..n {
        let node = net.add_node(format!("m{i}"));
        let client_ctx = ctx_on(&node, &format!("client-{i}"));
        let mgr_ctx = ctx_on(&node, &format!("manager-{i}"));
        let manager = file_cache_manager(&mgr_ctx);
        let names = LocalNames::new(net.clone());
        names.bind("cache_manager", manager.export().unwrap());
        client_ctx.set_resolver(names.resolver_for(&client_ctx));
        let shipped =
            ship_object_copy(&**net, &obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE).unwrap();
        machines.push(CacheMachine {
            node,
            file: fs::CacheableFile::from_obj(shipped).unwrap(),
        });
    }

    // The server's own handle drives the D2 path: server-local writes must
    // invalidate remote caches too.
    let server_file = fs::CacheableFile::from_obj(obj).unwrap();
    (server_node, fileserver, server_file, machines)
}

fn read_value(file: &fs::CacheableFile) -> Result<u64, fs::FileError> {
    let bytes = file.read(0, 8)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    Ok(u64::from_le_bytes(raw))
}

/// Writes `value` through `file`, retrying until the reply makes it back
/// (the raw caching subcontract does not retry; re-executing an identical
/// content write is idempotent for this proof).
fn write_until_acked(seed: u64, file: &fs::CacheableFile, value: u64) {
    let started = Instant::now();
    loop {
        if file.write(0, &value.to_le_bytes()).is_ok() {
            return;
        }
        assert!(
            started.elapsed() < Duration::from_secs(20),
            "seed {seed}: write {value} never succeeded at drop_prob={DROP_PROB}",
        );
    }
}

/// Polls `file` until it returns `value`. Reads may fail (dropped on the
/// wire) and may return the previous contents while the writer's lease
/// interval has not passed — but a *successful* read observed more than
/// `LEASE + SLACK` after the write must be fresh. Returns the convergence
/// latency.
fn assert_converges(seed: u64, who: &str, file: &fs::CacheableFile, value: u64) -> Duration {
    let wrote = Instant::now();
    loop {
        match read_value(file) {
            Ok(v) if v == value => return wrote.elapsed(),
            Ok(stale) => {
                assert!(
                    wrote.elapsed() <= LEASE + SLACK,
                    "seed {seed}: {who} read stale {stale} (want {value}) {:?} after \
                     the write — past the lease interval",
                    wrote.elapsed(),
                );
            }
            Err(_) => {} // dropped on the wire; try again
        }
        assert!(
            wrote.elapsed() < Duration::from_secs(10),
            "seed {seed}: {who} never converged to {value}",
        );
        std::thread::sleep(Duration::from_micros(500));
    }
}

/// The tentpole proof: a write through any machine's cache — or directly at
/// the server — is observed by every other machine within one lease
/// interval, across seeds, at 30% message loss.
#[test]
fn writes_invalidate_every_machine_within_a_lease() {
    record_seeds("coherent_loss", &SEEDS);
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let (_server_node, _fileserver, server_file, machines) = coherent_setup(&net, 2);

        net.reseed(seed);
        net.set_config(lossy());
        let mut value = 0u64;
        for round in 0..6u64 {
            value = 100 * (seed + 1) + round;
            // Rotate the writer: machine 0, machine 1, then the server's
            // own D2 path (the bug fixed here: server-local writes used to
            // invalidate nobody).
            match round % 3 {
                0 => write_until_acked(seed, &machines[0].file, value),
                1 => write_until_acked(seed, &machines[1].file, value),
                _ => server_file
                    .write(0, &value.to_le_bytes())
                    .expect("server-local writes do not cross the network"),
            }
            for (i, m) in machines.iter().enumerate() {
                assert_converges(seed, &format!("machine {i}"), &m.file, value);
            }
        }
        net.set_config(NetConfig::default());
        // Steady state: everyone serves the final value.
        for m in &machines {
            assert_eq!(read_value(&m.file).unwrap(), value);
        }
        assert_eq!(read_value(&server_file).unwrap(), value);
    }
}

/// Partition property: a machine cut off from the server may serve its
/// cache only until its lease runs out; past that its reads *fail* rather
/// than return stale data, and after the heal it converges and resumes
/// coherent service (re-registering if the server pruned its callback).
#[test]
fn partitions_bound_staleness_to_one_lease() {
    record_seeds("coherent_partition", &SEEDS);
    for seed in SEEDS {
        let net = Network::new(NetConfig::default());
        let (server_node, _fileserver, _server_file, machines) = coherent_setup(&net, 2);

        net.reseed(seed);
        net.set_config(lossy());
        let warm = 100 * (seed + 1);
        write_until_acked(seed, &machines[0].file, warm);
        assert_converges(seed, "machine 1", &machines[1].file, warm);

        // Cut machine 1 off and write through machine 0. Machine 1 must
        // never *successfully* serve the old value past its lease; once the
        // lease is gone it cannot revalidate, so reads error instead.
        net.partition(machines[1].node.id(), server_node.id());
        let fresh = warm + 1;
        write_until_acked(seed, &machines[0].file, fresh);
        let wrote = Instant::now();
        let mut errored = false;
        while wrote.elapsed() < LEASE + SLACK + Duration::from_millis(40) {
            match read_value(&machines[1].file) {
                Ok(v) => {
                    assert!(
                        v == fresh || wrote.elapsed() <= LEASE + SLACK,
                        "seed {seed}: partitioned machine served stale {v} {:?} after \
                         the write — past the lease interval",
                        wrote.elapsed(),
                    );
                }
                Err(_) => errored = true,
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            errored,
            "seed {seed}: a partitioned cache with an expired lease must fail reads",
        );

        // Heal: machine 1 revalidates (re-registering if it was pruned) and
        // converges; a subsequent write propagates to it again.
        net.heal_all();
        assert_converges(seed, "healed machine 1", &machines[1].file, fresh);
        let after_heal = fresh + 1;
        write_until_acked(seed, &machines[0].file, after_heal);
        assert_converges(seed, "healed machine 1", &machines[1].file, after_heal);
        net.set_config(NetConfig::default());
    }
}

fn live_ids(kernel: &spring::kernel::Kernel) -> u64 {
    let s = kernel.stats();
    s.ids_issued - s.ids_deleted
}

/// Callback churn must not leak door identifiers on either machine: after
/// the first attach/detach cycle pins the network layer's steady-state
/// tables (one export + one proxy per door, by design), every further
/// cycle — registration, invalidations, detach — returns both kernels to
/// the same live-identifier count.
#[test]
fn callback_churn_leaks_no_identifiers() {
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");
    let server_ctx = ctx_on(&server_node, "fileserver");
    let client_ctx = ctx_on(&client_node, "client");
    let mgr_ctx = ctx_on(&client_node, "manager");

    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", &7u64.to_le_bytes());
    let (obj, stats) = fileserver.export_coherent("data", LEASE).unwrap();

    let manager = file_cache_manager(&mgr_ctx);
    let names = LocalNames::new(net.clone());
    names.bind("cache_manager", manager.export().unwrap());
    client_ctx.set_resolver(names.resolver_for(&client_ctx));

    let cycle = || {
        let shipped = ship_object_copy(&*net, &obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE).unwrap();
        let file = fs::CacheableFile::from_obj(shipped).unwrap();
        assert_eq!(read_value(&file).unwrap(), 7);
        // Dropping the handle detaches: the servant unregisters from the
        // server and releases its doors.
    };

    // First cycle pins the steady-state export/proxy tables.
    cycle();
    let client_baseline = live_ids(client_node.kernel());
    let server_baseline = live_ids(server_node.kernel());

    for i in 0..8 {
        cycle();
        assert_eq!(
            live_ids(client_node.kernel()),
            client_baseline,
            "cycle {i}: attach/detach churn grew the client's live identifiers",
        );
        assert_eq!(
            live_ids(server_node.kernel()),
            server_baseline,
            "cycle {i}: attach/detach churn grew the server's live identifiers",
        );
    }
    // Every cycle really registered a callback with the server.
    assert!(stats.registrations() >= 9);
}

/// The unmarshal door-leak regression: when manager resolution fails on the
/// receiving machine, the already-landed D1 (and the copy made for the
/// manager) must be released — a failed attach used to leak both for the
/// life of the domain.
#[test]
fn failed_unmarshal_releases_landed_identifiers() {
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");
    let server_ctx = ctx_on(&server_node, "fileserver");
    let client_ctx = ctx_on(&client_node, "client");

    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", b"x");
    let (obj, _stats) = fileserver.export_coherent("data", LEASE).unwrap();

    // A resolver with nothing bound: attach fails after D1 has landed.
    let names = LocalNames::new(net.clone());
    client_ctx.set_resolver(names.resolver_for(&client_ctx));

    // The first failure pins the network layer's per-door tables (export on
    // the server, retained proxy on the client) exactly once, by design.
    ship_object_copy(&*net, &obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE)
        .expect_err("no manager bound");
    let client_baseline = live_ids(client_node.kernel());
    let server_baseline = live_ids(server_node.kernel());

    for i in 0..5 {
        ship_object_copy(&*net, &obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE)
            .expect_err("no manager bound");
        assert_eq!(
            live_ids(client_node.kernel()),
            client_baseline,
            "failed unmarshal {i} leaked identifiers on the receiving machine",
        );
        assert_eq!(
            live_ids(server_node.kernel()),
            server_baseline,
            "failed unmarshal {i} leaked identifiers on the server machine",
        );
    }
}
