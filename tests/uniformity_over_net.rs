//! The §8.5 uniform application model, across machines: the same typed
//! client code drives singleton, simplex, cluster, replicon, and caching
//! objects whose servers live on another node — and the one subcontract
//! that *cannot* work across machines (shared memory) fails cleanly.

use std::sync::Arc;

use parking_lot::Mutex;
use spring::buf::CommBuffer;
use spring::core::{
    encode_ok, op_hash, ship_object, Dispatch, DomainCtx, Result, ServerCtx, ServerSubcontract,
    SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};
use spring::kernel::Kernel;
use spring::naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring::net::{NetConfig, Network};
use spring::subcontracts::{
    register_standard, CacheManager, Caching, ClusterServer, ReplicaGroup, RepliconServer, Shmem,
    Simplex, Singleton,
};

static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

const OP_GET: u32 = op_hash("get");
const OP_ADD: u32 = op_hash("add");

#[derive(Default)]
struct Counter {
    value: Mutex<i64>,
}

impl Dispatch for Counter {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_GET => {
                encode_ok(reply);
                reply.put_i64(*self.value.lock());
                Ok(())
            }
            x if x == OP_ADD => {
                let d = args.get_i64()?;
                let mut v = self.value.lock();
                *v += d;
                encode_ok(reply);
                reply.put_i64(*v);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

fn get(obj: &SpringObj) -> Result<i64> {
    let call = obj.start_call(OP_GET)?;
    let mut reply = obj.invoke(call)?;
    spring::core::decode_reply_status(&mut reply)?;
    Ok(reply.get_i64()?)
}

fn add(obj: &SpringObj, d: i64) -> Result<i64> {
    let mut call = obj.start_call(OP_ADD)?;
    call.put_i64(d);
    let mut reply = obj.invoke(call)?;
    spring::core::decode_reply_status(&mut reply)?;
    Ok(reply.get_i64()?)
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

#[test]
fn door_based_subcontracts_are_uniform_across_machines() {
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server-machine");
    let client_node = net.add_node("client-machine");
    let server = ctx_on(server_node.kernel(), "server");
    let client = ctx_on(client_node.kernel(), "client");

    // The caching arm needs a client-machine cache manager behind naming.
    let ns_ctx = ctx_on(client_node.kernel(), "naming");
    let mgr_ctx = ctx_on(client_node.kernel(), "manager");
    let ns = NameServer::new(&ns_ctx);
    let manager = CacheManager::new(&mgr_ctx, [OP_GET]);
    let mgr_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &mgr_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    mgr_names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    client.set_resolver(Arc::new(client_names));

    let cluster = ClusterServer::new(&server).unwrap();
    let group = ReplicaGroup::with_transport(net.clone());
    group
        .add(RepliconServer::new(&server, Arc::new(Counter::default())).unwrap())
        .unwrap();

    let subjects: Vec<(&str, SpringObj)> = vec![
        (
            "singleton",
            Singleton
                .export(&server, Arc::new(Counter::default()))
                .unwrap(),
        ),
        (
            "simplex",
            Simplex
                .export(&server, Arc::new(Counter::default()))
                .unwrap(),
        ),
        (
            "cluster",
            cluster.export(Arc::new(Counter::default())).unwrap(),
        ),
        ("replicon", group.object_for(&server).unwrap()),
        (
            "caching",
            Caching::export(&server, Arc::new(Counter::default()), "cache_manager").unwrap(),
        ),
    ];

    for (name, obj) in subjects {
        let moved = ship_object(&*net, obj, &client, &COUNTER_TYPE)
            .unwrap_or_else(|e| panic!("{name}: ship failed: {e}"));
        assert_eq!(add(&moved, 4).unwrap(), 4, "{name}");
        assert_eq!(get(&moved).unwrap(), 4, "{name}");
        // The calls genuinely crossed the network.
        assert!(net.stats().calls_forwarded > 0, "{name}");
    }
}

#[test]
fn shmem_across_machines_fails_cleanly() {
    // Shared memory is a single-machine transport; a shmem object shipped
    // to another machine must produce a clean error, not corruption. (In
    // Spring too, shared-memory subcontracts served same-machine pairs.)
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server-machine");
    let client_node = net.add_node("client-machine");
    let server = ctx_on(server_node.kernel(), "server");
    let client = ctx_on(client_node.kernel(), "client");

    let obj = Shmem::export(&server, Arc::new(Counter::default()), 1024).unwrap();
    let moved = ship_object(&*net, obj, &client, &COUNTER_TYPE).unwrap();
    match get(&moved) {
        Err(SpringError::Door(_)) => {}
        other => panic!("expected a clean door error, got {other:?}"),
    }
}
