//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this shim provides the
//! subset of criterion's API the bench suite uses: `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical machinery it
//! runs a short calibrated measurement and prints median ns/iter (plus
//! throughput when configured) — enough to compare variants and spot
//! regressions, not a substitute for rigorous benchmarking.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation for a benchmark.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Drives one benchmark's timing loop.
pub struct Bencher {
    /// Median nanoseconds per iteration, filled in by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `f`, storing the median time per call across several samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that takes
        // roughly 5 ms per sample.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || n >= 1 << 20 {
                break;
            }
            n = (n * 4).min(1 << 20);
        }
        const SAMPLES: usize = 11;
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let start = Instant::now();
            for _ in 0..n {
                black_box(f());
            }
            *s = start.elapsed().as_secs_f64() * 1e9 / n as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }

    /// Measures `f`, dropping its output outside the timed region.
    pub fn iter_with_large_drop<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.iter_with_setup(|| (), |()| f());
    }

    /// Measures `routine` on inputs produced by `setup`, excluding the setup
    /// time from the measurement.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Calibrate the per-sample iteration count on the routine alone.
        let mut n: u64 = 1;
        loop {
            let mut timed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                timed += start.elapsed();
                drop(out);
            }
            if timed >= Duration::from_millis(5) || n >= 1 << 16 {
                break;
            }
            n = (n * 4).min(1 << 16);
        }
        const SAMPLES: usize = 11;
        let mut samples = [0f64; SAMPLES];
        for s in samples.iter_mut() {
            let mut timed = Duration::ZERO;
            for _ in 0..n {
                let input = setup();
                let start = Instant::now();
                let out = black_box(routine(input));
                timed += start.elapsed();
                drop(out);
            }
            *s = timed.as_secs_f64() * 1e9 / n as f64;
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = samples[SAMPLES / 2];
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count (accepted for API compatibility;
    /// the shim's sampling is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher);
        self.report(&id.id, bencher.ns_per_iter);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher { ns_per_iter: 0.0 };
        f(&mut bencher, input);
        self.report(&id.id, bencher.ns_per_iter);
        self
    }

    fn report(&self, id: &str, ns: f64) {
        let mut line = format!("{}/{:<40} {:>12.1} ns/iter", self.name, id, ns);
        match self.throughput {
            Some(Throughput::Bytes(b)) if ns > 0.0 => {
                let mbps = b as f64 / ns * 1e9 / (1024.0 * 1024.0);
                line.push_str(&format!("  ({mbps:>8.1} MiB/s)"));
            }
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                let eps = e as f64 / ns * 1e9;
                line.push_str(&format!("  ({eps:>10.0} elem/s)"));
            }
            _ => {}
        }
        println!("{line}");
    }

    /// Ends the group (no-op; prints happen per benchmark).
    pub fn finish(self) {}
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function over benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` over group-runner functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_produces_positive_timing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        let mut ran = false;
        group.bench_function("spin", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("echo", 128);
        assert_eq!(id.id, "echo/128");
        assert_eq!(BenchmarkId::from_parameter(5).id, "5");
    }
}
