//! The [`Strategy`] trait and the combinators the test suites use.

use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for sampling test inputs, mirroring `proptest::strategy::Strategy`.
///
/// The shim has no shrinking, so a strategy is simply a sampler.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejects sampled values failing `pred`, resampling (bounded retries).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Blanket impl so `&strategy` also works as a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy mapping combinator (`prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy filtering combinator (`prop_filter`).
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Uniform choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let idx = rng.usize_in(0, self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Values with a canonical "arbitrary" sampling, backing [`any`].
pub trait Arbitrary {
    /// Draws an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($ty:ty),*) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full bit patterns: exercises infinities, NaNs, subnormals.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('\u{fffd}')
    }
}

/// Strategy for [`Arbitrary`] values, mirroring `proptest::prelude::any`.
pub struct Any<T>(PhantomData<T>);

/// Builds the canonical strategy for `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        })*
    };
}

range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        })*
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// What one repetition unit of a simplified pattern generates.
enum CharClass {
    /// `.` — printable ASCII plus a sprinkling of multibyte characters.
    AnyPrintable,
    /// `[a-z]`-style inclusive range.
    Span(char, char),
}

/// A simplified regex-pattern strategy supporting the shapes used in the
/// test suites: `.` or a single `[x-y]` class, with an optional `{m,n}`
/// (or `{m}`) repetition. Anything else samples as the literal pattern.
pub struct PatternStrategy {
    class: Option<CharClass>,
    min: usize,
    max: usize,
    literal: &'static str,
}

fn parse_pattern(pat: &'static str) -> PatternStrategy {
    let fallback = PatternStrategy {
        class: None,
        min: 0,
        max: 0,
        literal: pat,
    };
    let bytes = pat.as_bytes();
    if bytes.is_empty() {
        return fallback;
    }
    let (class, rest) = if bytes[0] == b'.' {
        (CharClass::AnyPrintable, &pat[1..])
    } else if bytes[0] == b'[' {
        let Some(close) = pat.find(']') else {
            return fallback;
        };
        let inner = &pat[1..close];
        let chars: Vec<char> = inner.chars().collect();
        // Only `[x-y]` single ranges are recognized.
        if chars.len() == 3 && chars[1] == '-' && chars[0] <= chars[2] {
            (CharClass::Span(chars[0], chars[2]), &pat[close + 1..])
        } else {
            return fallback;
        }
    } else {
        return fallback;
    };
    let (min, max) = if rest.is_empty() {
        (1, 1)
    } else if rest.starts_with('{') && rest.ends_with('}') {
        let body = &rest[1..rest.len() - 1];
        match body.split_once(',') {
            Some((lo, hi)) => match (lo.trim().parse(), hi.trim().parse()) {
                (Ok(lo), Ok(hi)) if lo <= hi => (lo, hi),
                _ => return fallback,
            },
            None => match body.trim().parse() {
                Ok(n) => (n, n),
                Err(_) => return fallback,
            },
        }
    } else {
        return fallback;
    };
    PatternStrategy {
        class: Some(class),
        min,
        max,
        literal: pat,
    }
}

/// Occasional multibyte characters so `.`-patterns exercise UTF-8 handling.
const EXOTIC: &[char] = &['é', 'λ', 'ß', '中', '🦀', '\u{2028}'];

impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let parsed = parse_pattern(self);
        let Some(class) = parsed.class else {
            return parsed.literal.to_owned();
        };
        let len = rng.usize_in(parsed.min, parsed.max + 1);
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            let c = match class {
                CharClass::AnyPrintable => {
                    if rng.below(8) == 0 {
                        EXOTIC[rng.usize_in(0, EXOTIC.len())]
                    } else {
                        (0x20u8 + rng.below(0x5f) as u8) as char
                    }
                }
                CharClass::Span(lo, hi) => {
                    char::from_u32(lo as u32 + rng.below((hi as u32 - lo as u32 + 1) as u64) as u32)
                        .unwrap_or(lo)
                }
            };
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..500 {
            let v = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn pattern_lengths_respected() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let s = "[a-z]{1,6}".sample(&mut rng);
            let n = s.chars().count();
            assert!((1..=6).contains(&n), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..200 {
            let s = ".{0,40}".sample(&mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn union_samples_all_options() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1).boxed(), Just(2).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.sample(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn filter_retries() {
        let mut rng = TestRng::from_seed(4);
        let s = (0usize..10).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::from_seed(5);
        let s = (1usize..2).prop_map(|v| v * 10);
        assert_eq!(s.sample(&mut rng), 10);
    }
}
