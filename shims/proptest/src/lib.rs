//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this shim implements the
//! subset of proptest's API the test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_filter` / `boxed`, `any::<T>()` for primitives,
//! integer-range and simple regex-pattern strategies, tuple and
//! `collection::vec` composition, `Just`, `prop_oneof!`, and the
//! `proptest!` test macro with `prop_assert!` / `prop_assert_eq!`.
//!
//! Unlike real proptest there is no shrinking: a failing case reports its
//! case number and seed, and cases are fully deterministic (seeded from the
//! test name and case index), so failures reproduce exactly.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude::*`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Runs one `proptest!`-style test body over `cases` sampled inputs.
///
/// This is the runtime behind the [`proptest!`] macro; it exists as a
/// function so the macro expansion stays small.
pub fn run_cases<F>(test_name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut TestRng, u32) -> Result<(), TestCaseError>,
{
    for case in 0..cases {
        let seed = test_runner::seed_for(test_name, case);
        let mut rng = TestRng::from_seed(seed);
        if let Err(e) = body(&mut rng, case) {
            panic!("proptest case {case}/{cases} of `{test_name}` failed (seed {seed:#x}): {e}");
        }
    }
}

/// Expands to a set of `#[test]` functions that sample their arguments from
/// strategies, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below.
    (@tests ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    config.cases,
                    |rng, _case| {
                        $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                        let mut run = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        };
                        run()
                    },
                );
            }
        )*
    };
    // With an inner config attribute.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    // Without a config attribute.
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type, mirroring
/// `proptest::prop_oneof!`. Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not the
/// process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if !(l != r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}
