//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for collection strategies, mirroring proptest's
/// `SizeRange`: a bare `usize` means exactly that many elements.
pub struct SizeRange {
    start: usize,
    end_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            start: r.start,
            end_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end_excl: *r.end() + 1,
        }
    }
}

/// Strategy producing vectors whose length is drawn from `range`.
pub struct VecStrategy<S> {
    elem: S,
    range: SizeRange,
}

/// Builds a strategy for `Vec`s of `elem` with length in `range`.
pub fn vec<S: Strategy>(elem: S, range: impl Into<SizeRange>) -> VecStrategy<S> {
    let range = range.into();
    assert!(range.start < range.end_excl, "empty length range");
    VecStrategy { elem, range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.range.start, self.range.end_excl);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_in_range() {
        let mut rng = TestRng::from_seed(9);
        let s = vec(any::<u8>(), 2..5);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn exact_length() {
        let mut rng = TestRng::from_seed(3);
        let s = vec(any::<u8>(), 8usize);
        for _ in 0..50 {
            assert_eq!(s.sample(&mut rng).len(), 8);
        }
    }
}
