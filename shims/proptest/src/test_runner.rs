//! Deterministic RNG, configuration, and failure type for the shim.

use std::fmt;

/// Mirror of `proptest::test_runner::ProptestConfig` (cases only).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Builds a config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps suite time reasonable
        // while still exploring a useful portion of the space.
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure: carries the message out of the case body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Alias of [`TestCaseError::fail`] kept for API compatibility.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Derives the per-case seed from the fully qualified test name.
pub fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// SplitMix64: tiny, fast, and plenty random for test-input sampling.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-input purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi);
        lo + self.below((hi - lo) as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = TestRng::from_seed(7);
        let mut b = TestRng::from_seed(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(17) < 17);
        }
    }

    #[test]
    fn seeds_differ_per_case() {
        assert_ne!(seed_for("a::b", 0), seed_for("a::b", 1));
        assert_ne!(seed_for("a::b", 0), seed_for("a::c", 0));
    }
}
