//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal shim exposing the subset of the `parking_lot` API the
//! project uses: `Mutex` and `RwLock` whose guards are returned directly
//! (no `Result`), plus `try_lock` and `into_inner`. Poisoning is deliberately
//! ignored — a panicked critical section still leaves data structurally
//! valid for our use cases, matching `parking_lot` semantics where locks do
//! not poison.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poison) => MutexGuard {
                inner: poison.into_inner(),
            },
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// RAII guard for [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poison) => RwLockReadGuard {
                inner: poison.into_inner(),
            },
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poison) => RwLockWriteGuard {
                inner: poison.into_inner(),
            },
        }
    }

    /// Attempts shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(poison)) => Some(RwLockReadGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(poison)) => Some(RwLockWriteGuard {
                inner: poison.into_inner(),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }
}
