//! §6.2 end to end, with a *real* network naming context: the subcontract
//! identifier is mapped to a library name by resolving a property object in
//! the name service, then the library is dynamically linked.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_naming::{export_property, read_property, NameClient, NameServer, NamingLibraryNames};
use spring_subcontracts::{
    register_standard, standard_library, ReplicaGroup, Replicon, RepliconServer, Simplex, Singleton,
};
use subcontract::{
    encode_ok, op_hash, unmarshal_object, Dispatch, DomainCtx, LibraryStore, Result, ScId,
    ServerCtx, SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};

static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

struct Fixed(i64);

impl Dispatch for Fixed {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op == op_hash("get") {
            encode_ok(reply);
            reply.put_i64(self.0);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

fn ship(obj: SpringObj, to: &Arc<DomainCtx>) -> subcontract::Result<SpringObj> {
    let from_ctx = obj.ctx().clone();
    let tinfo = obj.type_info();
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf)?;
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(from_ctx.domain().transfer_door(d, to.domain())?);
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    unmarshal_object(to, tinfo, &mut buf)
}

fn root_for(ns: &Arc<NameServer>, ctx: &Arc<DomainCtx>) -> NameClient {
    NameClient::from_obj(ship(ns.root_object().unwrap(), ctx).unwrap()).unwrap()
}

#[test]
fn property_objects_roundtrip() {
    let kernel = Kernel::new("t");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");
    let prop = export_property(&a, "hello").unwrap();
    let prop = ship(prop, &b).unwrap();
    assert_eq!(read_property(&prop).unwrap(), "hello");
}

#[test]
fn discovery_through_the_real_name_service() {
    let kernel = Kernel::new("t");
    let ns_ctx = ctx_on(&kernel, "name-server");
    let ns = NameServer::new(&ns_ctx);
    let admin = ctx_on(&kernel, "admin");
    let server = ctx_on(&kernel, "server");

    // The administrator installs the library and publishes the mapping in
    // the name service.
    let store = LibraryStore::new();
    store.install("replicon.so", "/usr/lib/subcontracts", standard_library());
    let admin_names = NamingLibraryNames::new(root_for(&ns, &admin), "subcontracts");
    admin_names
        .publish(&admin, Replicon::ID, "replicon.so")
        .unwrap();

    // An old program linked only with the basic client-server subcontracts
    // (it needs simplex to talk to naming at all), knowing nothing of
    // replicated objects — the paper's §6.2 scenario verbatim.
    let old = DomainCtx::new(kernel.create_domain("old-program"));
    old.register_subcontract(Singleton::new());
    old.register_subcontract(Simplex::new());
    old.types().register(&COUNTER_TYPE);
    old.configure_loader(store, vec!["/usr/lib/subcontracts".into()]);
    old.set_library_names(NamingLibraryNames::new(root_for(&ns, &old), "subcontracts"));

    // Receiving a replicon object triggers: registry miss → naming resolve
    // ("subcontracts/<id>") → property read → dynamic link → unmarshal.
    let group = ReplicaGroup::new();
    group
        .add(RepliconServer::new(&server, Arc::new(Fixed(77))).unwrap())
        .unwrap();
    let obj = group.object_for(&server).unwrap();
    let arrived = ship(obj, &old).unwrap();
    assert_eq!(arrived.subcontract().name(), "replicon");
    let call = arrived.start_call(op_hash("get")).unwrap();
    let mut reply = arrived.invoke(call).unwrap();
    subcontract::decode_reply_status(&mut reply).unwrap();
    assert_eq!(reply.get_i64().unwrap(), 77);
}

#[test]
fn unpublished_ids_stay_unknown() {
    let kernel = Kernel::new("t");
    let ns_ctx = ctx_on(&kernel, "name-server");
    let ns = NameServer::new(&ns_ctx);
    let server = ctx_on(&kernel, "server");

    let old = DomainCtx::new(kernel.create_domain("old-program"));
    old.register_subcontract(Singleton::new());
    old.register_subcontract(Simplex::new());
    old.types().register(&COUNTER_TYPE);
    old.configure_loader(LibraryStore::new(), vec!["/lib".into()]);
    old.set_library_names(NamingLibraryNames::new(root_for(&ns, &old), "subcontracts"));

    let group = ReplicaGroup::new();
    group
        .add(RepliconServer::new(&server, Arc::new(Fixed(1))).unwrap())
        .unwrap();
    let obj = group.object_for(&server).unwrap();
    match ship(obj, &old) {
        Err(SpringError::UnknownLibrary(id)) => assert_eq!(id, Replicon::ID),
        other => panic!("expected unknown library, got {other:?}"),
    }
}

#[test]
fn publish_overwrites_previous_mapping() {
    let kernel = Kernel::new("t");
    let ns_ctx = ctx_on(&kernel, "name-server");
    let ns = NameServer::new(&ns_ctx);
    let admin = ctx_on(&kernel, "admin");

    let names = NamingLibraryNames::new(root_for(&ns, &admin), "subcontracts");
    let id = ScId::from_name("thing");
    names.publish(&admin, id, "v1.so").unwrap();
    names.publish(&admin, id, "v2.so").unwrap();
    assert_eq!(
        subcontract::LibraryNameContext::library_for(&*names, id),
        Some("v2.so".to_owned())
    );
}
