//! Name service tests: bind/resolve/unbind/list over real door calls,
//! nesting, copy-mode binding, and use as the resolver behind the
//! reconnectable and caching subcontracts.

use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use spring_naming::{resolver_from, NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring_subcontracts::{register_standard, Reconnectable, RetryPolicy, Singleton};
use subcontract::{
    encode_ok, op_hash, Dispatch, DomainCtx, Result, ServerCtx, ServerSubcontract, SpringError,
    SpringObj, TypeInfo, OBJECT_TYPE,
};

static COUNTER_TYPE: TypeInfo = TypeInfo {
    name: "counter",
    parents: &[&OBJECT_TYPE],
    default_subcontract: Singleton::ID,
};

const OP_GET: u32 = op_hash("get");
const OP_ADD: u32 = op_hash("add");

struct Counter {
    value: Mutex<i64>,
}

impl Counter {
    fn new(v: i64) -> Arc<Self> {
        Arc::new(Counter {
            value: Mutex::new(v),
        })
    }
}

impl Dispatch for Counter {
    fn type_info(&self) -> &'static TypeInfo {
        &COUNTER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_GET => {
                encode_ok(reply);
                reply.put_i64(*self.value.lock());
                Ok(())
            }
            x if x == OP_ADD => {
                let d = args.get_i64()?;
                let mut v = self.value.lock();
                *v += d;
                encode_ok(reply);
                reply.put_i64(*v);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

fn get(obj: &SpringObj) -> i64 {
    let call = obj.start_call(OP_GET).unwrap();
    let mut reply = obj.invoke(call).unwrap();
    match subcontract::decode_reply_status(&mut reply).unwrap() {
        subcontract::ReplyStatus::Ok => reply.get_i64().unwrap(),
        other => panic!("unexpected status {other:?}"),
    }
}

fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&COUNTER_TYPE);
    ctx
}

/// Sets up a name server plus a client context holding a root context stub.
fn setup(kernel: &Kernel) -> (Arc<NameServer>, Arc<DomainCtx>, NameClient) {
    let server_ctx = ctx_on(kernel, "name-server");
    let ns = NameServer::new(&server_ctx);
    let client_ctx = ctx_on(kernel, "client");
    let root = ns.root_object().unwrap();
    // Hand the root context object to the client domain the way a real
    // system would (here: direct kernel transfer of the marshalled form).
    let mut buf = CommBuffer::new();
    root.marshal(&mut buf).unwrap();
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(
            server_ctx
                .domain()
                .transfer_door(d, client_ctx.domain())
                .unwrap(),
        );
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    let obj = subcontract::unmarshal_object(&client_ctx, &NAMING_CONTEXT_TYPE, &mut buf).unwrap();
    let client = NameClient::from_obj(obj).unwrap();
    (ns, client_ctx, client)
}

#[test]
fn bind_resolve_roundtrip_through_doors() {
    let kernel = Kernel::new("t");
    let (ns, _client_ctx, names) = setup(&kernel);

    // A server in yet another domain exports a counter and binds it.
    let svc_ctx = ctx_on(&kernel, "service");
    let counter = Singleton.export(&svc_ctx, Counter::new(11)).unwrap();

    // Bind from the service domain through its own stub.
    let svc_names = NameClient::from_obj(ship_root(&ns, &svc_ctx)).unwrap();
    svc_names.bind("svc/a", &counter).unwrap_err(); // No context "svc" yet.
    svc_names.create_context("svc").unwrap();
    svc_names.bind("svc/a", &counter).unwrap();

    // The client resolves and invokes.
    let resolved = names.resolve("svc/a", &COUNTER_TYPE).unwrap();
    assert_eq!(get(&resolved), 11);
}

/// Ships a fresh root-context object into `ctx`'s domain.
fn ship_root(ns: &Arc<NameServer>, ctx: &Arc<DomainCtx>) -> SpringObj {
    let root = ns.root_object().unwrap();
    let mut buf = CommBuffer::new();
    root.marshal(&mut buf).unwrap();
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(ns.ctx().domain().transfer_door(d, ctx.domain()).unwrap());
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    subcontract::unmarshal_object(ctx, &NAMING_CONTEXT_TYPE, &mut buf).unwrap()
}

#[test]
fn copy_mode_bind_keeps_callers_object() {
    let kernel = Kernel::new("t");
    let (_ns, _client_ctx, names) = setup(&kernel);
    let svc_ctx = names.obj().ctx().clone();

    let counter = Singleton.export(&svc_ctx, Counter::new(1)).unwrap();
    names.bind("c", &counter).unwrap();
    // Copy-mode: the caller still owns its object.
    assert_eq!(get(&counter), 1);

    let resolved = names.resolve("c", &COUNTER_TYPE).unwrap();
    assert_eq!(get(&resolved), 1);
}

#[test]
fn bind_consume_transmits_the_object() {
    let kernel = Kernel::new("t");
    let (_ns, client_ctx, names) = setup(&kernel);

    let counter = Singleton.export(&client_ctx, Counter::new(2)).unwrap();
    names.bind_consume("gone", counter).unwrap();
    // The binding works; the caller's object is gone by construction (moved).
    let resolved = names.resolve("gone", &COUNTER_TYPE).unwrap();
    assert_eq!(get(&resolved), 2);
}

#[test]
fn duplicate_bind_and_missing_names_error() {
    let kernel = Kernel::new("t");
    let (_ns, client_ctx, names) = setup(&kernel);

    let a = Singleton.export(&client_ctx, Counter::new(0)).unwrap();
    names.bind("x", &a).unwrap();
    match names.bind("x", &a) {
        Err(SpringError::ResolveFailed(msg)) => assert!(msg.contains("already bound")),
        other => panic!("expected naming error, got {other:?}"),
    }
    assert!(names.resolve("nope", &COUNTER_TYPE).is_err());
    assert!(names.unbind("nope").is_err());

    names.unbind("x").unwrap();
    assert!(names.resolve("x", &COUNTER_TYPE).is_err());
}

#[test]
fn list_and_nested_contexts() {
    let kernel = Kernel::new("t");
    let (_ns, client_ctx, names) = setup(&kernel);

    let sub = names.create_context("dir").unwrap();
    let a = Singleton.export(&client_ctx, Counter::new(1)).unwrap();
    let b = Singleton.export(&client_ctx, Counter::new(2)).unwrap();
    names.bind("top", &a).unwrap();
    sub.bind("inner", &b).unwrap();

    assert_eq!(
        names.list().unwrap(),
        vec!["dir".to_owned(), "top".to_owned()]
    );
    assert_eq!(sub.list().unwrap(), vec!["inner".to_owned()]);

    // Path resolution reaches into the nested context.
    let inner = names.resolve("dir/inner", &COUNTER_TYPE).unwrap();
    assert_eq!(get(&inner), 2);

    // Resolving the context itself yields a usable context object.
    let dir = names.resolve_context("dir").unwrap();
    assert_eq!(dir.list().unwrap(), vec!["inner".to_owned()]);
}

#[test]
fn name_client_is_the_reconnectable_resolver() {
    let kernel = Kernel::new("t");
    let (ns, client_ctx, names) = setup(&kernel);
    let policy = RetryPolicy {
        max_attempts: 10,
        interval: std::time::Duration::from_millis(1),
        ..RetryPolicy::default()
    };
    client_ctx.register_subcontract(Reconnectable::with_policy(policy));
    client_ctx.set_resolver(Arc::new(names));

    // Generation 1.
    let gen1 = ctx_on(&kernel, "svc-gen1");
    gen1.register_subcontract(Reconnectable::with_policy(policy));
    let obj = Reconnectable::export(&gen1, Counter::new(33), "svc").unwrap();
    let gen1_names = NameClient::from_obj(ship_root(&ns, &gen1)).unwrap();
    gen1_names.bind("svc", &obj).unwrap();

    // Hand the object itself to the client.
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf).unwrap();
    let mut msg = buf.into_message();
    let mut moved = Vec::new();
    for d in msg.doors {
        moved.push(gen1.domain().transfer_door(d, client_ctx.domain()).unwrap());
    }
    msg.doors = moved;
    let mut buf = CommBuffer::from_message(msg);
    let client_obj = subcontract::unmarshal_object(&client_ctx, &COUNTER_TYPE, &mut buf).unwrap();
    assert_eq!(get(&client_obj), 33);

    // Crash and restart under the same name.
    gen1.domain().crash();
    gen1_names.obj(); // (the old stub is dead with its domain)
    let gen2 = ctx_on(&kernel, "svc-gen2");
    gen2.register_subcontract(Reconnectable::with_policy(policy));
    let fresh = Reconnectable::export(&gen2, Counter::new(33), "svc").unwrap();
    let gen2_names = NameClient::from_obj(ship_root(&ns, &gen2)).unwrap();
    gen2_names.unbind("svc").unwrap();
    gen2_names.bind("svc", &fresh).unwrap();

    // The client's next call reconnects through the *real* name service.
    assert_eq!(get(&client_obj), 33);
}

#[test]
fn concurrent_binds_from_many_domains() {
    let kernel = Kernel::new("t");
    let (ns, _client_ctx, names) = setup(&kernel);

    let mut joins = Vec::new();
    for i in 0..8 {
        let ctx = ctx_on(&kernel, &format!("svc-{i}"));
        let stub = NameClient::from_obj(ship_root(&ns, &ctx)).unwrap();
        joins.push(std::thread::spawn(move || {
            let counter = Singleton.export(&ctx, Counter::new(i)).unwrap();
            stub.bind(&format!("obj-{i}"), &counter).unwrap();
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    assert_eq!(names.list().unwrap().len(), 8);
    for i in 0..8 {
        let obj = names.resolve(&format!("obj-{i}"), &COUNTER_TYPE).unwrap();
        assert_eq!(get(&obj), i);
    }
}

#[test]
fn resolver_from_helper() {
    let kernel = Kernel::new("t");
    let (_ns, client_ctx, names) = setup(&kernel);
    let counter = Singleton.export(&client_ctx, Counter::new(9)).unwrap();
    names.bind("k", &counter).unwrap();

    let resolver = resolver_from(ship_like(&names)).unwrap();
    let obj = resolver.resolve("k", &COUNTER_TYPE).unwrap();
    assert_eq!(get(&obj), 9);
}

/// Copies the client's context object (same domain) for the helper test.
fn ship_like(names: &NameClient) -> SpringObj {
    names.obj().copy().unwrap()
}

#[test]
fn exists_reports_bindings() {
    let kernel = Kernel::new("t");
    let (_ns, client_ctx, names) = setup(&kernel);
    assert!(!names.exists("thing"));
    let c = Singleton.export(&client_ctx, Counter::new(0)).unwrap();
    names.bind("thing", &c).unwrap();
    assert!(names.exists("thing"));
    names.unbind("thing").unwrap();
    assert!(!names.exists("thing"));
}
