//! Server side of the name service: hierarchical context servants.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use subcontract::{
    encode_ok, encode_user_exception, unmarshal_object, Dispatch, DomainCtx, Result, ServerCtx,
    ServerSubcontract, SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};

use crate::{ops, NAMING_CONTEXT_TYPE, NAMING_ERROR};

enum Entry {
    /// A bound object, held live in the server's domain.
    Object(SpringObj),
    /// A nested context.
    Context(Arc<ContextServant>),
}

/// One naming context: a table of entries, possibly nested.
pub(crate) struct ContextServant {
    entries: Mutex<HashMap<String, Entry>>,
}

impl ContextServant {
    fn new() -> Arc<ContextServant> {
        Arc::new(ContextServant {
            entries: Mutex::new(HashMap::new()),
        })
    }

    /// Walks a `a/b/c` path to the owning context and the leaf component.
    fn walk<'a>(
        self: &Arc<Self>,
        path: &'a str,
    ) -> std::result::Result<(Arc<ContextServant>, &'a str), String> {
        let mut current = self.clone();
        let mut rest = path;
        while let Some((head, tail)) = rest.split_once('/') {
            if head.is_empty() {
                return Err(format!("empty path component in {path:?}"));
            }
            let next = {
                let entries = current.entries.lock();
                match entries.get(head) {
                    Some(Entry::Context(c)) => c.clone(),
                    Some(Entry::Object(_)) => {
                        return Err(format!("{head:?} is an object, not a context"))
                    }
                    None => return Err(format!("no such context {head:?}")),
                }
            };
            current = next;
            rest = tail;
        }
        if rest.is_empty() {
            return Err(format!("path {path:?} has no leaf component"));
        }
        Ok((current, rest))
    }

    fn bind(self: &Arc<Self>, path: &str, obj: SpringObj) -> std::result::Result<(), String> {
        let (ctx, leaf) = self.walk(path)?;
        let mut entries = ctx.entries.lock();
        if entries.contains_key(leaf) {
            return Err(format!("{leaf:?} already bound"));
        }
        entries.insert(leaf.to_owned(), Entry::Object(obj));
        Ok(())
    }

    fn unbind(self: &Arc<Self>, path: &str) -> std::result::Result<(), String> {
        let (ctx, leaf) = self.walk(path)?;
        let removed = ctx.entries.lock().remove(leaf);
        match removed {
            Some(_) => Ok(()),
            None => Err(format!("no such name {leaf:?}")),
        }
    }

    fn list(self: &Arc<Self>) -> Vec<String> {
        let mut names: Vec<String> = self.entries.lock().keys().cloned().collect();
        names.sort();
        names
    }

    fn create_context(
        self: &Arc<Self>,
        path: &str,
    ) -> std::result::Result<Arc<ContextServant>, String> {
        let (ctx, leaf) = self.walk(path)?;
        let mut entries = ctx.entries.lock();
        if entries.contains_key(leaf) {
            return Err(format!("{leaf:?} already bound"));
        }
        let child = ContextServant::new();
        entries.insert(leaf.to_owned(), Entry::Context(child.clone()));
        Ok(child)
    }
}

/// Dispatcher exposing one [`ContextServant`] as a Spring object.
struct ContextDispatch {
    servant: Arc<ContextServant>,
}

fn naming_error(reply: &mut CommBuffer, why: String) {
    encode_user_exception(reply, NAMING_ERROR);
    reply.put_string(&why);
}

impl Dispatch for ContextDispatch {
    fn type_info(&self) -> &'static TypeInfo {
        &NAMING_CONTEXT_TYPE
    }

    fn dispatch(
        &self,
        sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == ops::BIND => {
                let name = args.get_string()?;
                // The object arrives in copy mode: we own what we unmarshal.
                let obj = unmarshal_object(&sctx.ctx, &OBJECT_TYPE, args)?;
                match self.servant.bind(&name, obj) {
                    Ok(()) => encode_ok(reply),
                    Err(why) => naming_error(reply, why),
                }
                Ok(())
            }
            x if x == ops::RESOLVE => {
                let name = args.get_string()?;
                let (owner, leaf) = match self.servant.walk(&name) {
                    Ok(x) => x,
                    Err(why) => {
                        naming_error(reply, why);
                        return Ok(());
                    }
                };
                let entries = owner.entries.lock();
                match entries.get(leaf) {
                    Some(Entry::Object(obj)) => {
                        encode_ok(reply);
                        // A marshal failure past this point becomes a
                        // transport-level Handler error (the status byte is
                        // already out), which is the honest outcome: the
                        // server failed to construct the reply.
                        obj.marshal_copy(reply)?;
                    }
                    Some(Entry::Context(child)) => {
                        // Resolving a context yields a fresh context object,
                        // enabling federation across machines.
                        let child = child.clone();
                        drop(entries);
                        let obj = export_context(&sctx.ctx, child)?;
                        encode_ok(reply);
                        obj.marshal(reply)?;
                    }
                    None => naming_error(reply, format!("no such name {leaf:?}")),
                }
                Ok(())
            }
            x if x == ops::UNBIND => {
                let name = args.get_string()?;
                match self.servant.unbind(&name) {
                    Ok(()) => encode_ok(reply),
                    Err(why) => naming_error(reply, why),
                }
                Ok(())
            }
            x if x == ops::LIST => {
                let names = self.servant.list();
                encode_ok(reply);
                reply.put_seq_len(names.len());
                for n in &names {
                    reply.put_string(n);
                }
                Ok(())
            }
            x if x == ops::CREATE_CONTEXT => {
                let name = args.get_string()?;
                match self.servant.create_context(&name) {
                    Ok(child) => {
                        let obj = export_context(&sctx.ctx, child)?;
                        encode_ok(reply);
                        obj.marshal(reply)?;
                        Ok(())
                    }
                    Err(why) => {
                        naming_error(reply, why);
                        Ok(())
                    }
                }
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

fn export_context(ctx: &Arc<DomainCtx>, servant: Arc<ContextServant>) -> Result<SpringObj> {
    spring_subcontracts::Simplex.export(ctx, Arc::new(ContextDispatch { servant }))
}

/// The name server: owns the root context of one naming hierarchy.
pub struct NameServer {
    ctx: Arc<DomainCtx>,
    root: Arc<ContextServant>,
}

impl NameServer {
    /// Creates a name server in `ctx`'s domain. The domain must have the
    /// standard subcontracts registered (bound objects of any subcontract
    /// are unmarshalled here).
    pub fn new(ctx: &Arc<DomainCtx>) -> Arc<NameServer> {
        ctx.types().register(&NAMING_CONTEXT_TYPE);
        Arc::new(NameServer {
            ctx: ctx.clone(),
            root: ContextServant::new(),
        })
    }

    /// Exports a fresh object for the root context, ready to hand to other
    /// domains (each call creates a new door-holding object).
    pub fn root_object(&self) -> Result<SpringObj> {
        export_context(&self.ctx, self.root.clone())
    }

    /// The serving domain's context.
    pub fn ctx(&self) -> &Arc<DomainCtx> {
        &self.ctx
    }
}
