//! The Spring name service, built *on* the subcontract machinery.
//!
//! Spring provides naming as a user-mode service outside the kernel (§3.4),
//! and several subcontracts lean on it: reconnectable re-resolves its object
//! name after a crash (§8.3), caching resolves its cache manager name in a
//! machine-local context (§8.2), and dynamic subcontract discovery maps
//! subcontract identifiers to library names through "a network naming
//! context" (§6.2).
//!
//! The service itself is an ordinary Spring object: a hierarchical
//! `naming_context` exported through the simplex subcontract, with
//! hand-written stubs ([`NameClient`]) playing the role the IDL compiler
//! plays for the higher-level services. Bound objects are stored as live
//! [`SpringObj`]s in the server's domain and marshal-copied out on resolve,
//! so *any* subcontract's objects can be bound — including replicated and
//! caching ones.
//!
//! [`SpringObj`]: subcontract::SpringObj

mod client;
mod property;
mod server;

pub use client::{resolver_from, NameClient};
pub use property::{export_property, read_property, NamingLibraryNames, OP_VALUE, PROPERTY_TYPE};
pub use server::NameServer;

use subcontract::{ScId, TypeInfo, OBJECT_TYPE};

/// Run-time type of naming context objects.
pub static NAMING_CONTEXT_TYPE: TypeInfo = TypeInfo {
    name: "naming_context",
    parents: &[&OBJECT_TYPE],
    default_subcontract: ScId::from_name("simplex"),
};

/// Operation numbers for the naming context interface.
pub mod ops {
    use subcontract::op_hash;

    /// `bind(name, copy obj)`.
    pub const BIND: u32 = op_hash("bind");
    /// `resolve(name) -> object`.
    pub const RESOLVE: u32 = op_hash("resolve");
    /// `unbind(name)`.
    pub const UNBIND: u32 = op_hash("unbind");
    /// `list() -> sequence<string>`.
    pub const LIST: u32 = op_hash("list");
    /// `create_context(name) -> naming_context`.
    pub const CREATE_CONTEXT: u32 = op_hash("create_context");
}

/// Name of the user exception raised by naming operations.
pub const NAMING_ERROR: &str = "naming_error";
