//! String properties as Spring objects, and the §6.2 library-name context.
//!
//! The paper's dynamic discovery uses "a network naming context to map the
//! subcontract identifier into a library name (e.g. replicon.so)". Our name
//! service binds *objects*, so a library name is published as a tiny
//! property object (one `value()` operation), bound under
//! `subcontracts/<id>`; [`NamingLibraryNames`] implements the core
//! [`LibraryNameContext`] trait by resolving and reading those properties —
//! making the discovery path a real network lookup end to end.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_subcontracts::Simplex;
use subcontract::{
    decode_reply_status, encode_ok, op_hash, Dispatch, DomainCtx, LibraryNameContext, ReplyStatus,
    Result, ScId, ServerCtx, ServerSubcontract, SpringError, SpringObj, TypeInfo, OBJECT_TYPE,
};

use crate::NameClient;

/// Run-time type of property objects.
pub static PROPERTY_TYPE: TypeInfo = TypeInfo {
    name: "property",
    parents: &[&OBJECT_TYPE],
    default_subcontract: ScId::from_name("simplex"),
};

/// The property interface's single operation.
pub const OP_VALUE: u32 = op_hash("value");

struct PropertyServant {
    value: String,
}

impl Dispatch for PropertyServant {
    fn type_info(&self) -> &'static TypeInfo {
        &PROPERTY_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op != OP_VALUE {
            return Err(SpringError::UnknownOp(op));
        }
        encode_ok(reply);
        reply.put_string(&self.value);
        Ok(())
    }
}

/// Exports an immutable string property as a Spring object.
pub fn export_property(ctx: &Arc<DomainCtx>, value: impl Into<String>) -> Result<SpringObj> {
    ctx.types().register(&PROPERTY_TYPE);
    Simplex.export(
        ctx,
        Arc::new(PropertyServant {
            value: value.into(),
        }),
    )
}

/// Reads a property object's value.
pub fn read_property(obj: &SpringObj) -> Result<String> {
    let call = obj.start_call(OP_VALUE)?;
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(reply.get_string()?),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The §6.2 library-name context over the real name service.
///
/// Publish with [`NamingLibraryNames::publish`] (typically done by the
/// administrator installing a library); domains consume it via
/// [`DomainCtx::set_library_names`](subcontract::DomainCtx::set_library_names).
pub struct NamingLibraryNames {
    names: NameClient,
    context: String,
}

impl NamingLibraryNames {
    /// Wraps a naming-context stub; identifiers are looked up under
    /// `<context>/<id>`.
    pub fn new(names: NameClient, context: impl Into<String>) -> Arc<NamingLibraryNames> {
        Arc::new(NamingLibraryNames {
            names,
            context: context.into(),
        })
    }

    /// Publishes the library name for a subcontract identifier (creating
    /// the context on first use).
    pub fn publish(&self, ctx: &Arc<DomainCtx>, id: ScId, library: &str) -> Result<()> {
        let _ = self.names.create_context(&self.context);
        let prop = export_property(ctx, library)?;
        let path = format!("{}/{}", self.context, id.raw());
        let _ = self.names.unbind(&path);
        self.names.bind_consume(&path, prop)
    }
}

impl LibraryNameContext for NamingLibraryNames {
    fn library_for(&self, id: ScId) -> Option<String> {
        let path = format!("{}/{}", self.context, id.raw());
        let obj = self.names.resolve(&path, &PROPERTY_TYPE).ok()?;
        read_property(&obj).ok()
    }
}
