//! Client stub for naming contexts (the "method table" for the interface).

use std::sync::Arc;

use spring_buf::CommBuffer;
use subcontract::{
    decode_reply_status, unmarshal_object, ReplyStatus, Resolver, Result, SpringError, SpringObj,
    TypeInfo,
};

use crate::{ops, NAMING_CONTEXT_TYPE, NAMING_ERROR};

/// Typed wrapper over a naming context object.
///
/// Like every stub it is subcontract-agnostic: the context object usually
/// arrives via simplex, but it could equally be replicated or reconnectable.
/// Implements [`Resolver`], so it can be installed as a domain's
/// machine-local resolver with
/// [`DomainCtx::set_resolver`](subcontract::DomainCtx::set_resolver).
pub struct NameClient {
    obj: SpringObj,
}

impl NameClient {
    /// Wraps a naming context object, verifying its run-time type.
    pub fn from_obj(obj: SpringObj) -> Result<NameClient> {
        obj.narrow(&NAMING_CONTEXT_TYPE)?;
        Ok(NameClient { obj })
    }

    /// The underlying object.
    pub fn obj(&self) -> &SpringObj {
        &self.obj
    }

    fn expect_ok(reply: &mut CommBuffer) -> Result<()> {
        match decode_reply_status(reply)? {
            ReplyStatus::Ok => Ok(()),
            ReplyStatus::UserException(name) if name == NAMING_ERROR => {
                Err(SpringError::ResolveFailed(reply.get_string()?))
            }
            ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
        }
    }

    /// Binds a copy of `obj` under `name` (the IDL `copy` parameter mode:
    /// the caller keeps the original).
    pub fn bind(&self, name: &str, obj: &SpringObj) -> Result<()> {
        let mut call = self.obj.start_call(ops::BIND)?;
        call.put_string(name);
        obj.marshal_copy(&mut call)?;
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)
    }

    /// Binds `obj` under `name`, transmitting the object itself (the caller
    /// ceases to have it, §3.2).
    pub fn bind_consume(&self, name: &str, obj: SpringObj) -> Result<()> {
        let mut call = self.obj.start_call(ops::BIND)?;
        call.put_string(name);
        obj.marshal(&mut call)?;
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)
    }

    /// Resolves `name` to an object of the expected type.
    pub fn resolve(&self, name: &str, expected: &'static TypeInfo) -> Result<SpringObj> {
        let mut call = self.obj.start_call(ops::RESOLVE)?;
        call.put_string(name);
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)?;
        unmarshal_object(self.obj.ctx(), expected, &mut reply)
    }

    /// Resolves a nested context and wraps it.
    pub fn resolve_context(&self, name: &str) -> Result<NameClient> {
        NameClient::from_obj(self.resolve(name, &NAMING_CONTEXT_TYPE)?)
    }

    /// Returns true when `name` resolves to a binding (object or context).
    pub fn exists(&self, name: &str) -> bool {
        self.resolve(name, &subcontract::OBJECT_TYPE).is_ok()
    }

    /// Removes the binding for `name`.
    pub fn unbind(&self, name: &str) -> Result<()> {
        let mut call = self.obj.start_call(ops::UNBIND)?;
        call.put_string(name);
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)
    }

    /// Lists the names bound in this context, sorted.
    pub fn list(&self) -> Result<Vec<String>> {
        let call = self.obj.start_call(ops::LIST)?;
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)?;
        let n = reply.get_seq_len(4)?;
        let mut names = Vec::with_capacity(n);
        for _ in 0..n {
            names.push(reply.get_string()?);
        }
        Ok(names)
    }

    /// Creates (and returns) a nested context under `name`.
    pub fn create_context(&self, name: &str) -> Result<NameClient> {
        let mut call = self.obj.start_call(ops::CREATE_CONTEXT)?;
        call.put_string(name);
        let mut reply = self.obj.invoke(call)?;
        Self::expect_ok(&mut reply)?;
        NameClient::from_obj(unmarshal_object(
            self.obj.ctx(),
            &NAMING_CONTEXT_TYPE,
            &mut reply,
        )?)
    }
}

impl Resolver for NameClient {
    fn resolve(&self, name: &str, expected: &'static TypeInfo) -> Result<SpringObj> {
        NameClient::resolve(self, name, expected)
    }
}

/// Convenience: wraps a context object in an `Arc<dyn Resolver>` for
/// [`DomainCtx::set_resolver`](subcontract::DomainCtx::set_resolver).
pub fn resolver_from(obj: SpringObj) -> Result<Arc<dyn Resolver>> {
    Ok(Arc::new(NameClient::from_obj(obj)?))
}
