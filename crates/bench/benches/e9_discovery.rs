//! E9 — §6.2: the one-time cost of dynamic subcontract discovery.

use criterion::{criterion_group, criterion_main, Criterion};
use spring_bench::fixtures::{ctx_on, PingServant, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{standard_library, Simplex, Singleton};
use std::sync::Arc;
use subcontract::{
    ship_object_copy, DomainCtx, KernelTransport, LibraryStore, MapLibraryNames, ServerSubcontract,
};

fn bench(c: &mut Criterion) {
    let kernel = Kernel::new("e9");
    let server = ctx_on(&kernel, "server");
    let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();

    let store = LibraryStore::new();
    store.install("standard.so", "/usr/lib/subcontracts", standard_library());

    let mut group = c.benchmark_group("e9_discovery");

    group.bench_function("cold_unmarshal_with_dynamic_link", |b| {
        b.iter_with_setup(
            || {
                let fresh = DomainCtx::new(kernel.create_domain("fresh"));
                fresh.register_subcontract(Singleton::new());
                fresh.types().register(&PINGER_TYPE);
                let names = MapLibraryNames::new();
                names.bind(Simplex::ID, "standard.so");
                fresh.configure_loader(store.clone(), vec!["/usr/lib/subcontracts".into()]);
                fresh.set_library_names(names);
                fresh
            },
            |fresh| {
                ship_object_copy(&KernelTransport, &obj, &fresh, &PINGER_TYPE)
                    .unwrap()
                    .consume()
                    .unwrap();
            },
        )
    });

    let warm = ctx_on(&kernel, "warm");
    group.bench_function("warm_unmarshal_registry_hit", |b| {
        b.iter(|| {
            ship_object_copy(&KernelTransport, &obj, &warm, &PINGER_TYPE)
                .unwrap()
                .consume()
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
