//! E1 + E10 — §9.3: subcontract overhead on a minimal cross-domain call,
//! and the §9.1 specialized-stub alternative.

use criterion::{criterion_group, criterion_main, Criterion};
use spring_bench::fixtures::{ctx_on, ping, FusedPing, PingServant, RawDoor, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{Simplex, Singleton};
use std::sync::Arc;
use subcontract::{ship_object, KernelTransport, ServerSubcontract};

fn bench(c: &mut Criterion) {
    let kernel = Kernel::new("bench-e1");
    let mut group = c.benchmark_group("e1_null_call");

    let raw = RawDoor::new(&kernel);
    group.bench_function("raw_door", |b| b.iter(|| raw.call().unwrap()));

    let fused = FusedPing::new(&kernel);
    group.bench_function("fused_specialized_stubs", |b| {
        b.iter(|| fused.call().unwrap())
    });

    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Singleton.export(&server, Arc::new(PingServant)).unwrap();
    let singleton = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    group.bench_function("general_stubs_singleton", |b| {
        b.iter(|| ping(&singleton).unwrap())
    });

    let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();
    let simplex = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    group.bench_function("general_stubs_simplex", |b| {
        b.iter(|| ping(&simplex).unwrap())
    });

    group.finish();

    // Multithreaded throughput rides along after the latency arms: 1, 4,
    // and 16 caller threads on distinct doors of one kernel, plus the
    // contention counters and buffer-pool hit rate.
    spring_bench::report::e1_threaded(50_000);
}

criterion_group!(benches, bench);
criterion_main!(benches);
