//! E5 — §5: replicon invocation cost by replica count, and the price of a
//! failover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spring_bench::fixtures::{ctx_on, ping, PingServant};
use spring_kernel::Kernel;
use spring_subcontracts::{ReplicaGroup, RepliconServer};
use std::sync::Arc;

fn bench_normal(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_replicon_invoke");
    for r in [1usize, 3, 5] {
        let kernel = Kernel::new("e5");
        let rgroup = ReplicaGroup::new();
        for i in 0..r {
            let ctx = ctx_on(&kernel, &format!("replica-{i}"));
            rgroup
                .add(RepliconServer::new(&ctx, Arc::new(PingServant)).unwrap())
                .unwrap();
        }
        let client = ctx_on(&kernel, "client");
        let obj = rgroup.object_for(&client).unwrap();
        group.bench_with_input(BenchmarkId::new("replicas", r), &r, |b, _| {
            b.iter(|| ping(&obj).unwrap())
        });
    }
    group.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_replicon_failover");
    group.sample_size(10);
    // Each iteration sets up a 3-replica group, kills two, and measures the
    // call that walks the dead doors.
    group.bench_function("first_call_after_two_deaths", |b| {
        b.iter_with_setup(
            || {
                let kernel = Kernel::new("e5f");
                let rgroup = ReplicaGroup::new();
                let mut ctxs = Vec::new();
                for i in 0..3 {
                    let ctx = ctx_on(&kernel, &format!("replica-{i}"));
                    rgroup
                        .add(RepliconServer::new(&ctx, Arc::new(PingServant)).unwrap())
                        .unwrap();
                    ctxs.push(ctx);
                }
                let client = ctx_on(&kernel, "client");
                let obj = rgroup.object_for(&client).unwrap();
                ctxs[0].domain().crash();
                ctxs[1].domain().crash();
                (obj, rgroup, ctxs)
            },
            |(obj, _g, _c)| ping(&obj).unwrap(),
        )
    });
    group.finish();
}

criterion_group!(benches, bench_normal, bench_failover);
criterion_main!(benches);
