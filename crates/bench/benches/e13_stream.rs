//! E13 (extension) — §8.4's video direction: fire-and-forget frames vs
//! request/reply delivery for media payloads.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spring_bench::fixtures::{ctx_on, echo, PingServant, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::stream::Stream;
use spring_subcontracts::Simplex;
use subcontract::{ship_object, KernelTransport, ServerSubcontract};

fn bench(c: &mut Criterion) {
    let kernel = Kernel::new("e13");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    server.register_subcontract(Stream::new());
    client.register_subcontract(Stream::new());

    let mut group = c.benchmark_group("e13_stream");
    for size in [1024usize, 8 * 1024, 64 * 1024] {
        let frame = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));

        let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();
        let rr = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        group.bench_with_input(BenchmarkId::new("request_reply", size), &size, |b, _| {
            b.iter(|| echo(&rr, &frame).unwrap())
        });

        let (obj, _stats) = Stream::export(
            &server,
            Arc::new(PingServant),
            Arc::new(|_: u64, _: &[u8]| {}),
        )
        .unwrap();
        let st = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        group.bench_with_input(BenchmarkId::new("frame", size), &size, |b, _| {
            b.iter(|| Stream::send_frame(&st, &frame).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
