//! E3 + E12 — §8.1 cluster export/invoke costs, and §5.2.1's local fast
//! path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spring_bench::fixtures::{ctx_on, ping, PingServant, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{ClusterServer, Simplex};
use std::sync::Arc;
use subcontract::{ship_object, KernelTransport, ServerSubcontract};

fn bench_export(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_export");
    group.sample_size(10);
    for n in [10usize, 100, 1000] {
        group.bench_with_input(BenchmarkId::new("simplex", n), &n, |b, &n| {
            b.iter_with_large_drop(|| {
                let kernel = Kernel::new("e3");
                let server = ctx_on(&kernel, "server");
                let objs: Vec<_> = (0..n)
                    .map(|_| Simplex.export(&server, Arc::new(PingServant)).unwrap())
                    .collect();
                objs
            })
        });
        group.bench_with_input(BenchmarkId::new("cluster", n), &n, |b, &n| {
            b.iter_with_large_drop(|| {
                let kernel = Kernel::new("e3");
                let server = ctx_on(&kernel, "server");
                let cluster = ClusterServer::new(&server).unwrap();
                let objs: Vec<_> = (0..n)
                    .map(|_| cluster.export(Arc::new(PingServant)).unwrap())
                    .collect();
                (cluster, objs)
            })
        });
    }
    group.finish();
}

fn bench_invoke(c: &mut Criterion) {
    let kernel = Kernel::new("e3-invoke");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    let mut group = c.benchmark_group("e3_invoke");

    let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();
    let simplex = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    group.bench_function("simplex", |b| b.iter(|| ping(&simplex).unwrap()));

    let cluster = ClusterServer::new(&server).unwrap();
    let obj = cluster.export(Arc::new(PingServant)).unwrap();
    let clustered = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    group.bench_function("cluster_tagged", |b| b.iter(|| ping(&clustered).unwrap()));
    group.finish();
}

fn bench_local(c: &mut Criterion) {
    let kernel = Kernel::new("e12");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    let mut group = c.benchmark_group("e12_local_fast_path");

    let local = Simplex::export_local(&server, Arc::new(PingServant)).unwrap();
    group.bench_function("local", |b| b.iter(|| ping(&local).unwrap()));

    let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();
    let remote = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    group.bench_function("cross_domain", |b| b.iter(|| ping(&remote).unwrap()));
    group.finish();
}

criterion_group!(benches, bench_export, bench_invoke, bench_local);
criterion_main!(benches);
