//! E2 + E7 + E11 — §9.3 object transmission cost, §5.1.5 `marshal_copy`,
//! and §6.1 compatible-subcontract re-dispatch.

use criterion::{criterion_group, criterion_main, Criterion};
use spring_bench::fixtures::{ctx_on, PingServant, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{ReplicaGroup, RepliconServer, Simplex, Singleton};
use std::sync::Arc;
use subcontract::{
    ship_object, ship_object_copy, DomainCtx, KernelTransport, ServerSubcontract, SpringObj,
};

fn cleanup(ctx: &Arc<DomainCtx>, buf: spring_buf::CommBuffer) {
    for d in buf.into_message().doors {
        let _ = ctx.domain().delete_door(d);
    }
}

fn bench_transmit(c: &mut Criterion) {
    let kernel = Kernel::new("bench-e2");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");
    let server = ctx_on(&kernel, "server");

    let mut group = c.benchmark_group("e2_transmit");

    // Bare identifier baseline.
    let door = a
        .domain()
        .create_door(Arc::new(|_: &spring_kernel::CallCtx, m| Ok(m)))
        .unwrap();
    let mut current = door;
    let mut at_a = true;
    group.bench_function("bare_door_identifier", |bch| {
        bch.iter(|| {
            current = if at_a {
                a.domain().transfer_door(current, b.domain()).unwrap()
            } else {
                b.domain().transfer_door(current, a.domain()).unwrap()
            };
            at_a = !at_a;
        })
    });

    // Full subcontract transmission.
    let obj = Singleton.export(&server, Arc::new(PingServant)).unwrap();
    let mut slot = Some(ship_object(&KernelTransport, obj, &a, &PINGER_TYPE).unwrap());
    let mut held_at_a = true;
    group.bench_function("singleton_object", |bch| {
        bch.iter(|| {
            let obj: SpringObj = slot.take().unwrap();
            let to = if held_at_a { &b } else { &a };
            slot = Some(ship_object(&KernelTransport, obj, to, &PINGER_TYPE).unwrap());
            held_at_a = !held_at_a;
        })
    });
    group.finish();
}

fn bench_marshal_copy(c: &mut Criterion) {
    let kernel = Kernel::new("bench-e7");
    let server = ctx_on(&kernel, "server");
    let mut group = c.benchmark_group("e7_marshal_copy");

    let obj = Singleton.export(&server, Arc::new(PingServant)).unwrap();
    group.bench_function("singleton/copy_then_marshal", |bch| {
        bch.iter(|| {
            let copy = obj.copy().unwrap();
            let mut buf = spring_buf::CommBuffer::new();
            copy.marshal(&mut buf).unwrap();
            cleanup(&server, buf);
        })
    });
    group.bench_function("singleton/marshal_copy", |bch| {
        bch.iter(|| {
            let mut buf = spring_buf::CommBuffer::new();
            obj.marshal_copy(&mut buf).unwrap();
            cleanup(&server, buf);
        })
    });

    let rgroup = ReplicaGroup::new();
    for i in 0..3 {
        let ctx = ctx_on(&kernel, &format!("r{i}"));
        rgroup
            .add(RepliconServer::new(&ctx, Arc::new(PingServant)).unwrap())
            .unwrap();
    }
    let robj = rgroup.object_for(&server).unwrap();
    group.bench_function("replicon3/copy_then_marshal", |bch| {
        bch.iter(|| {
            let copy = robj.copy().unwrap();
            let mut buf = spring_buf::CommBuffer::new();
            copy.marshal(&mut buf).unwrap();
            cleanup(&server, buf);
        })
    });
    group.bench_function("replicon3/marshal_copy", |bch| {
        bch.iter(|| {
            let mut buf = spring_buf::CommBuffer::new();
            robj.marshal_copy(&mut buf).unwrap();
            cleanup(&server, buf);
        })
    });
    group.finish();
}

fn bench_compat(c: &mut Criterion) {
    let kernel = Kernel::new("bench-e11");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    let mut group = c.benchmark_group("e11_compat_redispatch");

    let matching = Singleton.export(&server, Arc::new(PingServant)).unwrap();
    let foreign = Simplex.export(&server, Arc::new(PingServant)).unwrap();

    group.bench_function("expected_subcontract", |bch| {
        bch.iter(|| {
            ship_object_copy(&KernelTransport, &matching, &client, &PINGER_TYPE)
                .unwrap()
                .consume()
                .unwrap();
        })
    });
    group.bench_function("foreign_subcontract_redispatch", |bch| {
        bch.iter(|| {
            ship_object_copy(&KernelTransport, &foreign, &client, &PINGER_TYPE)
                .unwrap()
                .consume()
                .unwrap();
        })
    });
    group.finish();
}

criterion_group!(benches, bench_transmit, bench_marshal_copy, bench_compat);
criterion_main!(benches);
