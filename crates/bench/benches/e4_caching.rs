//! E4 — §8.2: caching subcontract vs simplex for repeated remote reads.
//!
//! Network latency here is kept small (50 µs) so Criterion runs finish;
//! the `report` binary sweeps 0/100 µs/1 ms and records the crossover.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spring_bench::fixtures::ctx_on;
use spring_naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring_net::{NetConfig, Network};
use spring_services::{file_cache_manager, fs, FileServer};
use subcontract::{ship_object, DomainCtx};

struct Setup {
    net: Arc<Network>,
    client_ctx: Arc<DomainCtx>,
    fileserver: Arc<FileServer>,
}

fn setup(latency: Duration) -> Setup {
    let net = Network::new(NetConfig::with_latency(latency));
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");
    let server_ctx = ctx_on(server_node.kernel(), "fileserver");
    let client_ctx = ctx_on(client_node.kernel(), "client");
    let mgr_ctx = ctx_on(client_node.kernel(), "manager");
    let ns_ctx = ctx_on(client_node.kernel(), "naming");

    let ns = NameServer::new(&ns_ctx);
    let manager = file_cache_manager(&mgr_ctx);
    let mgr_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &mgr_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    mgr_names
        .bind("cache_manager", &manager.export().unwrap())
        .unwrap();
    let client_names = NameClient::from_obj(
        ship_object(
            &*net,
            ns.root_object().unwrap(),
            &client_ctx,
            &NAMING_CONTEXT_TYPE,
        )
        .unwrap(),
    )
    .unwrap();
    client_ctx.set_resolver(Arc::new(client_names));

    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", &vec![9u8; 4096]);
    Setup {
        net,
        client_ctx,
        fileserver,
    }
}

fn bench(c: &mut Criterion) {
    let s = setup(Duration::from_micros(50));
    let mut group = c.benchmark_group("e4_caching");
    group.sample_size(10);

    for k in [1u32, 16, 64] {
        group.bench_with_input(BenchmarkId::new("simplex_reads", k), &k, |b, &k| {
            b.iter(|| {
                let f = fs::File::from_obj(
                    ship_object(
                        &*s.net,
                        s.fileserver.export_file("data").unwrap(),
                        &s.client_ctx,
                        &fs::FILE_TYPE,
                    )
                    .unwrap(),
                )
                .unwrap();
                for _ in 0..k {
                    let _ = f.read(0, 1024).unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("caching_reads", k), &k, |b, &k| {
            b.iter(|| {
                let f = fs::CacheableFile::from_obj(
                    ship_object(
                        &*s.net,
                        s.fileserver.export_cacheable("data").unwrap(),
                        &s.client_ctx,
                        &fs::CACHEABLE_FILE_TYPE,
                    )
                    .unwrap(),
                )
                .unwrap();
                for _ in 0..k {
                    let _ = f.read(0, 1024).unwrap();
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
