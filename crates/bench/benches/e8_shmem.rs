//! E8 — §5.1.4: marshalling into shared memory vs the copied path, by
//! payload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spring_bench::fixtures::{ctx_on, echo, PingServant, PINGER_TYPE};
use spring_kernel::Kernel;
use spring_subcontracts::{Shmem, Simplex};
use std::sync::Arc;
use subcontract::{ship_object, KernelTransport, ServerSubcontract};

fn bench(c: &mut Criterion) {
    let kernel = Kernel::new("e8");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    let mut group = c.benchmark_group("e8_shmem");

    for size in [64usize, 4096, 65536, 262_144] {
        let payload = vec![0x55u8; size];
        group.throughput(Throughput::Bytes(size as u64));

        let obj = Simplex.export(&server, Arc::new(PingServant)).unwrap();
        let simplex = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        group.bench_with_input(BenchmarkId::new("simplex_echo", size), &size, |b, _| {
            b.iter(|| echo(&simplex, &payload).unwrap())
        });

        let obj = Shmem::export(&server, Arc::new(PingServant), size + 4096).unwrap();
        let shm = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        group.bench_with_input(BenchmarkId::new("shmem_echo", size), &size, |b, _| {
            b.iter(|| echo(&shm, &payload).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
