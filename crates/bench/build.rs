//! Compiles the benchmark IDL (`idl/bench.idl`) at build time, exactly as
//! `spring-services` does for its service interfaces — the flat-path arms
//! measure what real generated stubs cost, not a hand-written imitation.

fn main() {
    let out_dir = std::path::PathBuf::from(std::env::var("OUT_DIR").expect("OUT_DIR"));
    let input = "idl/bench.idl";
    println!("cargo::rerun-if-changed={input}");
    let source = std::fs::read_to_string(input).unwrap_or_else(|e| panic!("{input}: {e}"));
    let rust = match spring_idl::compile(&source) {
        Ok(code) => code,
        Err(e) => panic!("{input}: {e}"),
    };
    std::fs::write(out_dir.join("bench.rs"), rust).expect("write generated stubs");
}
