//! Proof that fixed-shape unmarshal is zero-copy on the two transports the
//! flat wire format targets.
//!
//! * Same-domain (D2) delivery: the kernel moves the frame by ownership
//!   transfer, so a full generated-stub round trip copies **zero** payload
//!   bytes (`bytes_copied` stays flat) and performs zero decode copies
//!   (`spring_buf::flat::decode_bytes_copied` stays flat). With the buffer
//!   pool warm it also performs zero heap allocations, which the counting
//!   global allocator below enforces (and is why this suite lives alone in
//!   its own integration-test binary).
//! * Shmem transport: argument frames cross in shared memory and are
//!   flat-decoded in place; only the 16-byte region descriptor and the
//!   small reply ride the kernel's copying path, independent of payload
//!   size.
//!
//! The allocation and process-global copy counters are shared across test
//! threads, so the tests serialize on one mutex.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spring_bench::fixtures::{flat_ping_same_domain, flat_ping_shmem, sample_fixture};
use spring_bench::flatbench::Sample;
use spring_buf::flat::decode_bytes_copied;
use spring_kernel::Kernel;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Serializes the tests: both read process-global counters.
static SERIAL: Mutex<()> = Mutex::new(());

const CALLS: u64 = 1_000;

#[test]
fn same_domain_flat_round_trip_copies_and_allocates_nothing() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let kernel = Kernel::new("flat-d2");
    let flat = flat_ping_same_domain(&kernel);
    let sample = sample_fixture();

    // Behavior first: the frame survives encode -> D2 -> flat decode on
    // both the argument and the result leg.
    assert_eq!(flat.ping(41).unwrap(), 42);
    assert_eq!(flat.echo_sample(&sample).unwrap(), sample);

    // Warm the thread-local buffer pool.
    for _ in 0..100 {
        let _ = flat.echo_sample(&sample).unwrap();
    }

    let before = kernel.stats();
    let decode_before = decode_bytes_copied();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..CALLS {
        let _ = flat.echo_sample(&sample).unwrap();
    }
    let delta = kernel.stats().since(&before);
    let decode_delta = decode_bytes_copied() - decode_before;
    let allocs_delta = ALLOCS.load(Ordering::Relaxed) - allocs_before;

    assert_eq!(
        delta.bytes_copied, 0,
        "same-domain delivery must not copy payload bytes"
    );
    assert!(
        delta.local_deliveries >= CALLS,
        "calls should take the D2 path (saw {} local deliveries)",
        delta.local_deliveries
    );
    assert_eq!(
        decode_delta, 0,
        "flat decode must not copy out of the frame (copied {decode_delta} bytes)"
    );
    assert_eq!(
        allocs_delta, 0,
        "steady-state flat calls allocated {allocs_delta} times"
    );
}

#[test]
fn shmem_flat_arguments_cross_without_payload_copies() {
    let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let kernel = Kernel::new("flat-shm");
    let flat = flat_ping_shmem(&kernel, 4096);
    let sample = sample_fixture();

    flat.sink_sample(&sample).unwrap();
    for _ in 0..50 {
        flat.sink_sample(&sample).unwrap();
    }

    let before = kernel.stats();
    let decode_before = decode_bytes_copied();
    for _ in 0..CALLS {
        flat.sink_sample(&sample).unwrap();
    }
    let delta = kernel.stats().since(&before);
    let decode_delta = decode_bytes_copied() - decode_before;

    assert_eq!(
        decode_delta, 0,
        "shmem flat decode must read the region in place (copied {decode_delta} bytes)"
    );
    // Each call marshals a footprint-sized frame into the region; if those
    // bytes rode the kernel's copying path the per-call copy cost would be
    // at least the footprint. Only the descriptor + reply may be copied.
    let footprint = Sample::footprint() as u64;
    assert!(
        delta.bytes_copied < CALLS * footprint,
        "argument frames were copied by the kernel ({} bytes over {} calls, footprint {})",
        delta.bytes_copied,
        CALLS,
        footprint
    );
}
