//! The acceptance gate behind the open-loop generator: proof that it does
//! not commit *coordinated omission*.
//!
//! Both arms drive the same servant through the same stub and both suffer
//! the same one-shot 60 ms server stall partway through the run:
//!
//! * The closed-loop arm issues each call when the previous one returns
//!   and times it from its own send. Exactly one call observes the stall,
//!   and the ~240 calls that a real 4 kHz client population would have
//!   issued during those 60 ms are simply never sent — so the stall lands
//!   past p99 of a 1000-call run and the reported tail looks clean.
//! * The open-loop arm fixes every arrival's intended time in advance and
//!   measures from that intent. The arrivals scheduled during the stall
//!   are issued late and their wait is charged to their latency, so the
//!   stall drags hundreds of samples into the tens of milliseconds and
//!   p99 tells the truth.
//!
//! The gate: the open-loop p99 must exceed 10 ms *and* be at least 10x the
//! closed-loop p99 for the identical workload. The workload is
//! sleep-dominated (timed-occupancy servant), so the ratio is robust on
//! small CI hosts; a couple of retries absorb scheduler outliers.

use spring_bench::fixtures::{ctx_on, work, SpinServant};
use spring_bench::openloop::{self, OpenLoopConfig};
use spring_kernel::Kernel;
use spring_subcontracts::Singleton;
use spring_trace::now_ns;
use subcontract::ServerSubcontract;

/// Nominal service time (timed occupancy, one worker).
const SERVICE_NS: u64 = 100_000;
/// The one-shot server hiccup both arms must live through.
const STALL_NS: u64 = 60_000_000;
/// Arrivals per run.
const CALLS: u64 = 1_000;
/// Offered rate for the open-loop arm: ~40% of the 1/service capacity, so
/// the schedule is comfortably sustainable outside the stall.
const RATE_PER_SEC: f64 = 4_000.0;
/// Which arrival trips the stall (far enough in for a warm pool).
const STALL_AT: u64 = 100;

struct Arm {
    open_p99_ns: u64,
    closed_p99_ns: u64,
}

fn one_round() -> Arm {
    let kernel = Kernel::new("co-proof");
    let ctx = ctx_on(&kernel, "driver");

    // Closed-loop: next call when the previous returns, each timed from
    // its own send.
    let servant = SpinServant::sleeping(SERVICE_NS);
    let obj = Singleton.export(&ctx, servant.clone()).unwrap();
    let mut latencies = Vec::with_capacity(CALLS as usize);
    for i in 0..CALLS {
        if i == STALL_AT {
            servant.arm_stall(STALL_NS);
        }
        let t0 = now_ns();
        work(&obj).unwrap();
        latencies.push(now_ns().saturating_sub(t0));
    }
    latencies.sort_unstable();
    let closed_p99_ns = latencies[(CALLS as usize * 99) / 100];

    // Open-loop: same servant configuration, same stall, but arrivals are
    // scheduled in advance and latencies measured from intent.
    let servant = SpinServant::sleeping(SERVICE_NS);
    let obj = Singleton.export(&ctx, servant.clone()).unwrap();
    let report = openloop::run(
        &OpenLoopConfig {
            rate_per_sec: RATE_PER_SEC,
            total_calls: CALLS,
            workers: 1,
            registry_hist: None,
        },
        |i, _intended| {
            if i == STALL_AT {
                servant.arm_stall(STALL_NS);
            }
            work(&obj)
        },
    );
    assert_eq!(report.served, CALLS, "no call may be skipped or fail");

    Arm {
        open_p99_ns: report.served_hist.p99_ns(),
        closed_p99_ns,
    }
}

#[test]
fn open_loop_charges_a_server_stall_to_the_tail_closed_loop_hides_it() {
    let mut last = None;
    for attempt in 0..3 {
        let arm = one_round();
        let ratio = arm.open_p99_ns as f64 / arm.closed_p99_ns.max(1) as f64;
        if arm.open_p99_ns > 10_000_000 && ratio >= 10.0 {
            return;
        }
        eprintln!(
            "attempt {attempt}: open p99 {:.2} ms, closed p99 {:.2} ms (ratio {ratio:.1}x), retrying",
            arm.open_p99_ns as f64 / 1e6,
            arm.closed_p99_ns as f64 / 1e6,
        );
        last = Some(arm);
    }
    let arm = last.unwrap();
    panic!(
        "coordinated-omission proof failed: open-loop p99 {:.2} ms vs closed-loop p99 {:.2} ms \
         (need open > 10 ms and at least 10x closed)",
        arm.open_p99_ns as f64 / 1e6,
        arm.closed_p99_ns as f64 / 1e6,
    );
}
