//! Multi-process smoke: two real OS processes (the `peer` binary in serve
//! and drive mode) exchanging door calls over a Unix-domain socket — 1k
//! calls including a pipelined burst and an at-most-once retry across an
//! injected reply loss, with zero leaked doors asserted on both sides by
//! the drive process itself. A second scenario kills the serving process
//! mid-call and checks the in-flight call fails with `Comm`.
//!
//! The test binary only orchestrates; every assertion about the calls
//! lives in `peer drive`, which exits nonzero with a message on the first
//! failure.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn peer_exe() -> &'static str {
    env!("CARGO_BIN_EXE_peer")
}

fn temp_sock(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("spring-mp-{}-{tag}.sock", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// Spawns `peer serve` and blocks until it prints its READY line.
fn spawn_serve(node: u64, args: &[&str]) -> (Child, String) {
    let mut child = Command::new(peer_exe())
        .arg("serve")
        .args(["--node", &node.to_string()])
        .args(args)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn peer serve");
    let stdout = child.stdout.take().expect("serve stdout");
    let mut lines = BufReader::new(stdout).lines();
    let ready = lines
        .next()
        .expect("serve exited before READY")
        .expect("read READY");
    let addr = ready
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected serve output: {ready}"))
        .to_owned();
    (child, addr)
}

fn run_drive(node: u64, args: &[&str]) -> std::process::Output {
    Command::new(peer_exe())
        .arg("drive")
        .args(["--node", &node.to_string()])
        .args(args)
        .output()
        .expect("run peer drive")
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

#[test]
fn two_processes_exchange_door_calls_over_uds() {
    let started = Instant::now();
    let path = temp_sock("smoke");
    let _ = std::fs::remove_file(&path);
    let (serve, _) = spawn_serve(41, &["--uds", &path]);
    let serve = KillOnDrop(serve);

    let out = run_drive(42, &["--uds", &path, "--calls", "1000"]);
    assert!(
        out.status.success(),
        "drive failed (status {:?}):\n{}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        report.contains("zero leaked doors both sides"),
        "drive did not report the leak check: {report}"
    );
    // The retry scenario tears the connection down twice by design.
    assert!(
        report.contains("2 disconnect(s)"),
        "expected exactly the two injected disconnects: {report}"
    );
    drop(serve);
    let _ = std::fs::remove_file(&path);
    // CI budget for the whole scenario.
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "multi-process smoke took {:?}",
        started.elapsed()
    );
}

#[test]
fn two_processes_exchange_door_calls_over_tcp() {
    let (serve, addr) = spawn_serve(51, &["--tcp", "127.0.0.1:0"]);
    let serve = KillOnDrop(serve);
    let out = run_drive(52, &["--tcp", &addr, "--calls", "200"]);
    assert!(
        out.status.success(),
        "drive failed (status {:?}):\n{}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    drop(serve);
}

#[test]
fn killing_the_serving_process_fails_inflight_calls_with_comm() {
    let path = temp_sock("kill");
    let _ = std::fs::remove_file(&path);
    let (mut serve, _) = spawn_serve(61, &["--uds", &path]);

    let out = run_drive(62, &["--uds", &path, "--kill"]);
    assert!(
        out.status.success(),
        "kill drive failed (status {:?}):\n{}{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("failed with Comm"),
        "kill drive did not confirm the Comm failure"
    );
    // The server really did die (exit code 9 from OP_DIE).
    let status = serve.wait().expect("reap serve");
    assert_eq!(
        status.code(),
        Some(9),
        "server should have exited via OP_DIE"
    );
    let _ = std::fs::remove_file(&path);
}
