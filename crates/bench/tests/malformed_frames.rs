//! Malformed-frame rejection: a seeded corpus of truncated, over-length,
//! and corrupted flat frames must all come back as typed [`WireError`]s —
//! never a panic, never an out-of-bounds read (the validate-then-cast
//! contract of DESIGN.md §5.13).
//!
//! Each sweep appends its seeds to `target/flat-frame-seeds.txt` so a CI
//! failure can report exactly which seeds were exercised.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use spring_bench::flatbench::{Sample, SampleView};
use spring_buf::{CommBuffer, WireError};
use spring_kernel::{CallCtx, DoorError, DoorHandler, Message};
use spring_net::{NetConfig, Network};

/// The seeds every sweep runs; kept in one place so the recorded list in
/// `target/flat-frame-seeds.txt` matches what actually ran.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Mutations tried per seed.
const MUTATIONS: usize = 256;

/// Records the seeds a sweep ran, for CI to upload on failure.
fn record_seeds(suite: &str, seeds: &[u64]) {
    // Tests run with the package dir as cwd; aim at the workspace-level
    // target/ so CI's artifact upload finds the file.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("flat-frame-seeds.txt"))
    {
        let list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(f, "{suite}: mutations={MUTATIONS} seeds={}", list.join(","));
    }
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants); the high bits are
/// the usable ones.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A canonical valid frame: marshal the fixture through the real encoder
/// and take the buffer's bytes (the frame starts at offset 0, which is
/// 8-aligned, so the flat offsets apply directly).
fn valid_frame() -> Vec<u8> {
    let mut buf = CommBuffer::new();
    spring_bench::fixtures::sample_fixture().idl_encode(&mut buf);
    let bytes = buf.into_message().bytes;
    assert_eq!(bytes.len(), Sample::footprint());
    bytes
}

#[test]
fn truncated_and_overlength_frames_fail_with_exact_lengths() {
    let frame = valid_frame();
    let footprint = Sample::footprint();
    for n in 0..footprint {
        assert_eq!(
            Sample::validate(&frame[..n]),
            Err(WireError::Truncated {
                needed: footprint,
                actual: n
            }),
            "truncation to {n} bytes must be rejected"
        );
    }
    for extra in 1..=16 {
        let mut long = frame.clone();
        long.extend(std::iter::repeat_n(0, extra));
        assert_eq!(
            Sample::validate(&long),
            Err(WireError::OverLength {
                expected: footprint,
                actual: footprint + extra
            }),
            "{extra} trailing bytes must be rejected"
        );
    }
}

#[test]
fn out_of_range_tags_and_bools_are_typed_errors() {
    let frame = valid_frame();
    assert!(Sample::validate(&frame).is_ok());

    // `urgent` is the bool at offset 53; anything but 0/1 is malformed.
    for value in [2u8, 7, 0x80, 0xFF] {
        let mut bad = frame.clone();
        bad[53] = value;
        assert_eq!(
            Sample::validate(&bad),
            Err(WireError::BadBool { offset: 53, value })
        );
    }

    // `m` is the 3-variant enum tag at offset 56.
    for value in [3u32, 4, 1000, u32::MAX] {
        let mut bad = frame.clone();
        bad[56..60].copy_from_slice(&value.to_le_bytes());
        assert_eq!(
            Sample::validate(&bad),
            Err(WireError::BadTag { offset: 56, value })
        );
    }
}

#[test]
fn seeded_mutation_sweep_never_panics_and_errors_are_typed() {
    let frame = valid_frame();
    let footprint = Sample::footprint();
    for &seed in &SEEDS {
        let mut state = seed;
        for _ in 0..MUTATIONS {
            let mutated = match lcg(&mut state) % 3 {
                0 => {
                    // Truncate to a strictly shorter prefix.
                    let n = (lcg(&mut state) as usize) % footprint;
                    frame[..n].to_vec()
                }
                1 => {
                    // Append 1..=16 junk bytes.
                    let extra = 1 + (lcg(&mut state) as usize) % 16;
                    let mut v = frame.clone();
                    v.extend((0..extra).map(|_| lcg(&mut state) as u8));
                    v
                }
                _ => {
                    // Corrupt one byte in place (length stays exact, so
                    // validate may legitimately accept it — most bytes are
                    // unconstrained scalars).
                    let pos = (lcg(&mut state) as usize) % footprint;
                    let mut v = frame.clone();
                    v[pos] ^= 1 + (lcg(&mut state) as u8 & 0xFE);
                    v
                }
            };
            // The contract under test: validate never panics, and a
            // rejection is a typed error. Exercise the view path too —
            // after a successful validate the accessors must be usable.
            match SampleView::new(&mutated) {
                Ok(view) => {
                    assert_eq!(mutated.len(), footprint);
                    let owned = view.to_owned();
                    assert_eq!(owned.when.secs, view.when().secs());
                }
                Err(e) => match e {
                    WireError::Truncated { needed, actual } => {
                        assert_eq!(needed, footprint);
                        assert!(actual < footprint);
                    }
                    WireError::OverLength { expected, actual } => {
                        assert_eq!(expected, footprint);
                        assert!(actual > footprint);
                    }
                    WireError::BadTag { offset, .. } => assert_eq!(offset, 56),
                    WireError::BadBool { offset, value } => {
                        assert_eq!(offset, 53);
                        assert!(value > 1);
                    }
                },
            }
            // Determinism: validating the same bytes twice agrees.
            assert_eq!(Sample::validate(&mutated), Sample::validate(&mutated));
        }
    }
    record_seeds("flat-frame-mutations", &SEEDS);
}

// ---------------------------------------------------------------------------
// The same corpus idea over a *real* socket pair.
// ---------------------------------------------------------------------------

/// Socket-sweep seeds and per-seed mutation count — smaller than the
/// in-memory sweep because each iteration crosses a real TCP connection.
const SOCKET_SEEDS: [u64; 4] = [1, 2, 3, 5];
const SOCKET_MUTATIONS: usize = 48;

/// Wire layout constants mirrored from the transport codec (DESIGN.md
/// §5.15): `[kind=2][u64 frame id][u32 ncalls]` then per call
/// `[u64 export][20B call id][16B trace][u32 ncaps][caps][u32 nbytes][payload]`.
fn encode_raw_request(frame_id: u64, export: u64, payload: &[u8]) -> Vec<u8> {
    let mut p = vec![2u8];
    p.extend_from_slice(&frame_id.to_le_bytes());
    p.extend_from_slice(&1u32.to_le_bytes());
    p.extend_from_slice(&export.to_le_bytes());
    p.extend_from_slice(&[0u8; 20]); // call id: NONE
    p.extend_from_slice(&[0u8; 16]); // trace: NONE
    p.extend_from_slice(&0u32.to_le_bytes()); // no caps
    p.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    p.extend_from_slice(payload);
    p
}

fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Reads one length-prefixed frame; `Ok(None)` on clean EOF.
fn read_raw_frame(s: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match s.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    s.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Dials the listener and completes the HELLO exchange as a raw byzantine
/// peer (node id 990 + seed so reconnects are distinguishable in logs).
fn raw_handshake(addr: &str, node: u64) -> TcpStream {
    let mut s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s.set_nodelay(true).unwrap();
    let mut hello = vec![1u8];
    hello.extend_from_slice(&node.to_le_bytes());
    hello.push(0); // no bootstrap advertised
    hello.extend_from_slice(&0u64.to_le_bytes());
    hello.extend_from_slice(&0u16.to_le_bytes());
    let mut bytes = Vec::new();
    put_frame(&mut bytes, &hello);
    s.write_all(&bytes).unwrap();
    let server_hello = read_raw_frame(&mut s).unwrap().expect("server hello");
    assert_eq!(server_hello[0], 1, "expected HELLO frame");
    s
}

/// The seeded mutation sweep delivered over real TCP: every mutated
/// request frame must end in a reply or a typed teardown (EOF) — never a
/// wedged connection, never a server panic — and the server must keep
/// serving fresh connections throughout. The servant validates the flat
/// payload in place, so valid frames also prove the IDL bytes crossed the
/// socket unmodified.
#[test]
fn seeded_mutation_sweep_over_real_socket() {
    struct ValidatesFlat;
    impl DoorHandler for ValidatesFlat {
        fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
            // Validate-in-place on the received bytes: a corrupt payload is
            // a typed rejection, never a panic.
            let ok = Sample::validate(&msg.bytes).is_ok();
            Ok(Message::from_bytes(vec![ok as u8]))
        }
    }

    let net = Network::new(NetConfig::default());
    let node = net.add_node_with_id("flat-validator", 301);
    let domain = node.kernel().create_domain("servants");
    let door = domain.create_door(Arc::new(ValidatesFlat)).unwrap();
    net.set_bootstrap(node.id(), &domain, door).unwrap();
    let listener = net.listen_tcp(node.id(), "127.0.0.1:0").unwrap();
    let addr = listener.local_addr().to_string();

    let flat = valid_frame();
    let valid = encode_raw_request(1, 1, &flat);

    // Sanity: the unmutated frame crosses the socket byte-identical and
    // validates on the server's copy.
    let mut conn = raw_handshake(&addr, 990);
    {
        let mut bytes = Vec::new();
        put_frame(&mut bytes, &valid);
        conn.write_all(&bytes).unwrap();
        let reply = read_raw_frame(&mut conn).unwrap().expect("reply");
        assert_eq!(reply[0], 3, "expected REPLY frame");
        assert_eq!(
            reply.last(),
            Some(&1u8),
            "flat payload must validate after crossing the socket"
        );
    }

    for &seed in &SOCKET_SEEDS {
        let mut state = seed;
        for _ in 0..SOCKET_MUTATIONS {
            let mutated = match lcg(&mut state) % 3 {
                0 => {
                    let n = (lcg(&mut state) as usize) % valid.len();
                    valid[..n].to_vec()
                }
                1 => {
                    let extra = 1 + (lcg(&mut state) as usize) % 16;
                    let mut v = valid.clone();
                    v.extend((0..extra).map(|_| lcg(&mut state) as u8));
                    v
                }
                _ => {
                    let pos = (lcg(&mut state) as usize) % valid.len();
                    let mut v = valid.clone();
                    v[pos] ^= 1 + (lcg(&mut state) as u8 & 0xFE);
                    v
                }
            };
            let mut bytes = Vec::new();
            put_frame(&mut bytes, &mutated);
            // The write itself may race a teardown from the previous
            // mutation; that just counts as a dead connection.
            let wrote = conn.write_all(&bytes).is_ok() && conn.flush().is_ok();
            // The contract under test: a reply arrives or the server tears
            // the connection down. A read timeout means a wedged server and
            // fails the test.
            let outcome = if wrote {
                read_raw_frame(&mut conn)
            } else {
                Ok(None)
            };
            match outcome {
                Ok(Some(reply)) => assert_eq!(reply[0], 3, "expected REPLY frame"),
                Ok(None) => conn = raw_handshake(&addr, 990 + seed),
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {
                    conn = raw_handshake(&addr, 990 + seed);
                }
                Err(e) => panic!("server wedged on mutated frame: {e}"),
            }
        }
    }

    // After the whole sweep the server still serves real peers.
    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 302);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_tcp(client_node.id(), &addr).unwrap();
    let remote = peer.bootstrap_door(&client).unwrap();
    let reply = client
        .call(remote, Message::from_bytes(flat.clone()))
        .unwrap();
    assert_eq!(reply.bytes, vec![1u8]);
    record_seeds("flat-frame-mutations-socket", &SOCKET_SEEDS);
}
