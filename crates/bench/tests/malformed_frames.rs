//! Malformed-frame rejection: a seeded corpus of truncated, over-length,
//! and corrupted flat frames must all come back as typed [`WireError`]s —
//! never a panic, never an out-of-bounds read (the validate-then-cast
//! contract of DESIGN.md §5.13).
//!
//! Each sweep appends its seeds to `target/flat-frame-seeds.txt` so a CI
//! failure can report exactly which seeds were exercised.

use std::io::Write as _;

use spring_bench::flatbench::{Sample, SampleView};
use spring_buf::{CommBuffer, WireError};

/// The seeds every sweep runs; kept in one place so the recorded list in
/// `target/flat-frame-seeds.txt` matches what actually ran.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Mutations tried per seed.
const MUTATIONS: usize = 256;

/// Records the seeds a sweep ran, for CI to upload on failure.
fn record_seeds(suite: &str, seeds: &[u64]) {
    // Tests run with the package dir as cwd; aim at the workspace-level
    // target/ so CI's artifact upload finds the file.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("flat-frame-seeds.txt"))
    {
        let list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(f, "{suite}: mutations={MUTATIONS} seeds={}", list.join(","));
    }
}

/// Deterministic 64-bit LCG (Knuth's MMIX constants); the high bits are
/// the usable ones.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// A canonical valid frame: marshal the fixture through the real encoder
/// and take the buffer's bytes (the frame starts at offset 0, which is
/// 8-aligned, so the flat offsets apply directly).
fn valid_frame() -> Vec<u8> {
    let mut buf = CommBuffer::new();
    spring_bench::fixtures::sample_fixture().idl_encode(&mut buf);
    let bytes = buf.into_message().bytes;
    assert_eq!(bytes.len(), Sample::footprint());
    bytes
}

#[test]
fn truncated_and_overlength_frames_fail_with_exact_lengths() {
    let frame = valid_frame();
    let footprint = Sample::footprint();
    for n in 0..footprint {
        assert_eq!(
            Sample::validate(&frame[..n]),
            Err(WireError::Truncated {
                needed: footprint,
                actual: n
            }),
            "truncation to {n} bytes must be rejected"
        );
    }
    for extra in 1..=16 {
        let mut long = frame.clone();
        long.extend(std::iter::repeat_n(0, extra));
        assert_eq!(
            Sample::validate(&long),
            Err(WireError::OverLength {
                expected: footprint,
                actual: footprint + extra
            }),
            "{extra} trailing bytes must be rejected"
        );
    }
}

#[test]
fn out_of_range_tags_and_bools_are_typed_errors() {
    let frame = valid_frame();
    assert!(Sample::validate(&frame).is_ok());

    // `urgent` is the bool at offset 53; anything but 0/1 is malformed.
    for value in [2u8, 7, 0x80, 0xFF] {
        let mut bad = frame.clone();
        bad[53] = value;
        assert_eq!(
            Sample::validate(&bad),
            Err(WireError::BadBool { offset: 53, value })
        );
    }

    // `m` is the 3-variant enum tag at offset 56.
    for value in [3u32, 4, 1000, u32::MAX] {
        let mut bad = frame.clone();
        bad[56..60].copy_from_slice(&value.to_le_bytes());
        assert_eq!(
            Sample::validate(&bad),
            Err(WireError::BadTag { offset: 56, value })
        );
    }
}

#[test]
fn seeded_mutation_sweep_never_panics_and_errors_are_typed() {
    let frame = valid_frame();
    let footprint = Sample::footprint();
    for &seed in &SEEDS {
        let mut state = seed;
        for _ in 0..MUTATIONS {
            let mutated = match lcg(&mut state) % 3 {
                0 => {
                    // Truncate to a strictly shorter prefix.
                    let n = (lcg(&mut state) as usize) % footprint;
                    frame[..n].to_vec()
                }
                1 => {
                    // Append 1..=16 junk bytes.
                    let extra = 1 + (lcg(&mut state) as usize) % 16;
                    let mut v = frame.clone();
                    v.extend((0..extra).map(|_| lcg(&mut state) as u8));
                    v
                }
                _ => {
                    // Corrupt one byte in place (length stays exact, so
                    // validate may legitimately accept it — most bytes are
                    // unconstrained scalars).
                    let pos = (lcg(&mut state) as usize) % footprint;
                    let mut v = frame.clone();
                    v[pos] ^= 1 + (lcg(&mut state) as u8 & 0xFE);
                    v
                }
            };
            // The contract under test: validate never panics, and a
            // rejection is a typed error. Exercise the view path too —
            // after a successful validate the accessors must be usable.
            match SampleView::new(&mutated) {
                Ok(view) => {
                    assert_eq!(mutated.len(), footprint);
                    let owned = view.to_owned();
                    assert_eq!(owned.when.secs, view.when().secs());
                }
                Err(e) => match e {
                    WireError::Truncated { needed, actual } => {
                        assert_eq!(needed, footprint);
                        assert!(actual < footprint);
                    }
                    WireError::OverLength { expected, actual } => {
                        assert_eq!(expected, footprint);
                        assert!(actual > footprint);
                    }
                    WireError::BadTag { offset, .. } => assert_eq!(offset, 56),
                    WireError::BadBool { offset, value } => {
                        assert_eq!(offset, 53);
                        assert!(value > 1);
                    }
                },
            }
            // Determinism: validating the same bytes twice agrees.
            assert_eq!(Sample::validate(&mutated), Sample::validate(&mutated));
        }
    }
    record_seeds("flat-frame-mutations", &SEEDS);
}
