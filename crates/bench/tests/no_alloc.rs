//! With tracing disabled, the steady-state E1 fast path must not allocate.
//!
//! This binary installs a counting global allocator (which is why the test
//! lives alone in its own integration-test file). The null-call path it
//! drives is the one E1 measures: request bytes come from the buffer pool,
//! the kernel's two cross-address-space copies draw from and return to the
//! pool, and the caller gives the reply backing store back — so after
//! warmup a call performs zero heap allocations, and the disabled tracing
//! instrumentation must keep it that way (its fast path is one relaxed
//! atomic load).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_kernel::{pool, CallCtx, DoorError, DoorHandler, Kernel, Message};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

#[test]
fn disabled_tracing_steady_state_call_does_not_allocate() {
    assert!(!spring_trace::enabled());

    let kernel = Kernel::new("no-alloc");
    let server = kernel.create_domain("server");
    let client = kernel.create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let door = server.transfer_door(door, &client).unwrap();

    let null_call = || {
        let mut bytes = pool::take(8);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        let reply = client.call(door, Message::from_bytes(bytes)).unwrap();
        assert_eq!(reply.bytes.len(), 8);
        pool::give(reply.bytes);
    };

    // Warm the thread-local buffer pool.
    for _ in 0..100 {
        null_call();
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        null_call();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state null calls allocated {} times",
        after - before
    );
}
