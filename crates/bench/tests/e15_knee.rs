//! The acceptance gate behind E15: with the admission controller shedding
//! low-priority calls past the queue-delay bound, the offered load at
//! which served p99 still meets the bound (the knee) must sit strictly
//! beyond the no-shedding arm's knee. The sweep is driven in multiples of
//! the host's own measured capacity, so the gate is machine-independent;
//! retries absorb the occasional CI host that stalls an entire round.

use spring_trace::json::Json;

fn knee_x(doc: &Json, arm: &str) -> f64 {
    doc.get("arms")
        .and_then(Json::as_arr)
        .and_then(|arms| {
            arms.iter()
                .find(|a| a.get("name").and_then(Json::as_str) == Some(arm))
        })
        .and_then(|a| a.get("knee_x"))
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("BENCH_e15 json lacks knee_x for arm `{arm}`"))
}

#[test]
fn shedding_moves_the_p99_knee_to_a_strictly_higher_offered_load() {
    let mut last = (0.0, 0.0);
    for attempt in 0..3 {
        let doc = spring_bench::report::e15_open_loop(true);
        let noshed = knee_x(&doc, "no_shed");
        let shed = knee_x(&doc, "shed");
        if shed > noshed {
            return;
        }
        eprintln!("attempt {attempt}: shed knee {shed:.1}x vs no-shed knee {noshed:.1}x, retrying");
        last = (shed, noshed);
    }
    panic!(
        "overload shedding did not move the knee: shed arm {:.1}x capacity vs no-shed {:.1}x",
        last.0, last.1
    );
}
