//! The acceptance gate behind E14: at 1 ms of link latency, a burst of
//! eight pipelined calls must finish at least 3x faster than the same
//! eight calls issued sequentially. The workload is sleep-dominated (each
//! frame pays two 1 ms hops), so the ratio is robust even in debug builds
//! and on loaded machines; a couple of retries absorb scheduler outliers.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spring_bench::fixtures::{ctx_on, ping, ping_async, ping_collect, PingServant, PINGER_TYPE};
use spring_net::{NetConfig, Network};
use spring_subcontracts::Pipeline;
use subcontract::ship_object;

const CALLS: usize = 8;
const MIN_SPEEDUP: f64 = 3.0;

fn one_round() -> f64 {
    let net = Network::new(NetConfig::with_latency(Duration::from_millis(1)));
    let server_node = net.add_node("server");
    let client_node = net.add_node("client");
    let server_ctx = ctx_on(server_node.kernel(), "server");
    let client_ctx = ctx_on(client_node.kernel(), "client");
    let obj = Pipeline::export(&server_ctx, Arc::new(PingServant)).unwrap();
    let client_obj = ship_object(&*net, obj, &client_ctx, &PINGER_TYPE).unwrap();

    // Warm-up: spawn the worker pool and prime the pools.
    ping(&client_obj).unwrap();
    let warm: Vec<_> = (0..CALLS)
        .map(|_| ping_async(&client_obj).unwrap())
        .collect();
    for p in warm {
        ping_collect(p).unwrap();
    }

    let t0 = Instant::now();
    for _ in 0..CALLS {
        ping(&client_obj).unwrap();
    }
    let sequential = t0.elapsed();

    let t0 = Instant::now();
    let promises: Vec<_> = (0..CALLS)
        .map(|_| ping_async(&client_obj).unwrap())
        .collect();
    for p in promises {
        ping_collect(p).unwrap();
    }
    let pipelined = t0.elapsed();

    sequential.as_secs_f64() / pipelined.as_secs_f64()
}

#[test]
fn pipelined_burst_is_at_least_3x_faster_at_1ms_latency() {
    let mut best = 0.0f64;
    for attempt in 0..3 {
        let speedup = one_round();
        best = best.max(speedup);
        if best >= MIN_SPEEDUP {
            return;
        }
        eprintln!("attempt {attempt}: speedup {speedup:.2}x, retrying");
    }
    panic!("pipelined speedup {best:.2}x < required {MIN_SPEEDUP}x at 1ms latency");
}
