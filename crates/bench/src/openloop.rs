//! Open-loop load generation: the coordinated-omission-safe way to measure
//! tail latency.
//!
//! A closed-loop driver issues the next call when the previous one returns,
//! so a server stall pauses the *load* as well as the measurement: one slow
//! call is recorded slow, and the calls that would have arrived during the
//! stall are silently never sent. That is *coordinated omission* — the
//! workload conspires with the server to hide its worst moments, and the
//! reported p99 describes a load no real client population generates.
//!
//! The generator here is open-loop: call number `i` has an *intended* start
//! time fixed in advance (`start + i/rate`), workers issue calls as close to
//! the schedule as they can, and every latency is measured from the intended
//! start — not from when a worker finally got around to sending. When the
//! server (or the worker pool) falls behind, the backlog shows up as queue
//! delay *in the recorded latencies*, which is exactly what a waiting client
//! would have experienced.
//!
//! Latencies are recorded into `spring-trace` histograms, so a run's
//! percentiles are readable live through the stats door while load runs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use spring_trace::{now_ns, HistSnapshot, Histogram};
use subcontract::SpringError;

/// Sleep until roughly this far from the deadline, then spin: coarse OS
/// sleep for the bulk of the wait, busy-wait for the precision tail.
const SPIN_WINDOW_NS: u64 = 200_000;

/// Configuration of one open-loop run.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopConfig {
    /// Offered arrival rate, calls per second.
    pub rate_per_sec: f64,
    /// Total arrivals in the schedule.
    pub total_calls: u64,
    /// Worker threads draining the schedule (the client population size).
    pub workers: usize,
    /// When set, served latencies are also recorded into the process-wide
    /// registry histogram `(key, op)`, so the run's percentiles are
    /// readable live through the stats door while load runs.
    pub registry_hist: Option<(u64, &'static str)>,
}

impl Default for OpenLoopConfig {
    fn default() -> OpenLoopConfig {
        OpenLoopConfig {
            rate_per_sec: 1000.0,
            total_calls: 1000,
            workers: 1,
            registry_hist: None,
        }
    }
}

/// What one open-loop run measured.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopReport {
    /// Arrivals issued (always `total_calls`; the schedule is fixed).
    pub offered: u64,
    /// Calls that completed successfully.
    pub served: u64,
    /// Calls the server shed with [`SpringError::Overloaded`].
    pub shed: u64,
    /// Calls that failed any other way.
    pub errors: u64,
    /// Wall-clock duration of the run in nanoseconds.
    pub elapsed_ns: u64,
    /// Latency distribution of *served* calls, measured from each call's
    /// intended start time.
    pub served_hist: HistSnapshot,
    /// Time-to-rejection distribution of shed calls, same time base.
    pub shed_hist: HistSnapshot,
}

impl OpenLoopReport {
    /// Completions (served + shed + errored) per wall-clock second.
    pub fn achieved_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        (self.served + self.shed + self.errors) as f64 * 1e9 / self.elapsed_ns as f64
    }

    /// Served calls per wall-clock second (goodput).
    pub fn goodput_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.served as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// Runs one open-loop schedule.
///
/// `call` is invoked once per arrival with `(index, intended_start_ns)`;
/// it issues the door call (stamping the intended start on the wire when
/// the target uses the priority subcontract, so the server's admission
/// controller sees true queue delay). Latency classification:
/// `Ok` → served, `Err(Overloaded)` → shed, anything else → error.
///
/// Workers claim arrivals from one shared schedule; an arrival whose
/// intended time has already passed is issued immediately, and its wait is
/// charged to its latency. Nothing is ever skipped.
pub fn run<F>(cfg: &OpenLoopConfig, call: F) -> OpenLoopReport
where
    F: Fn(u64, u64) -> subcontract::Result<()> + Sync,
{
    assert!(cfg.rate_per_sec > 0.0, "open loop needs a positive rate");
    assert!(cfg.workers > 0, "open loop needs at least one worker");
    let period_ns = 1e9 / cfg.rate_per_sec;

    let served_hist = Histogram::default();
    let shed_hist = Histogram::default();
    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let next = AtomicU64::new(0);

    // Schedule epoch: a little in the future so worker 0's first arrival
    // is not already late before the other workers have even spawned.
    let start_ns = now_ns() + 1_000_000;

    std::thread::scope(|scope| {
        for _ in 0..cfg.workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfg.total_calls {
                    break;
                }
                let intended = start_ns + (i as f64 * period_ns) as u64;
                loop {
                    let now = now_ns();
                    if now >= intended {
                        break;
                    }
                    let wait = intended - now;
                    if wait > SPIN_WINDOW_NS {
                        std::thread::sleep(Duration::from_nanos(wait - SPIN_WINDOW_NS));
                    } else {
                        std::hint::spin_loop();
                    }
                }
                let outcome = call(i, intended);
                let latency = now_ns().saturating_sub(intended);
                match outcome {
                    Ok(()) => {
                        served_hist.record(latency);
                        if let Some((key, op)) = cfg.registry_hist {
                            spring_trace::record(key, op, latency);
                        }
                        served.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(SpringError::Overloaded { .. }) => {
                        shed_hist.record(latency);
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    OpenLoopReport {
        offered: cfg.total_calls,
        served: served.into_inner(),
        shed: shed.into_inner(),
        errors: errors.into_inner(),
        elapsed_ns: now_ns().saturating_sub(start_ns),
        served_hist: served_hist.snapshot(),
        shed_hist: shed_hist.snapshot(),
    }
}
