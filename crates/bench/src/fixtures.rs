//! Benchmark servants, stubs, and the specialized ("fused") call path.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, DoorId, Kernel, Message};
use spring_subcontracts::register_standard;
use subcontract::{
    decode_reply_status, encode_ok, op_hash, Dispatch, DomainCtx, ReplyStatus, Result, ServerCtx,
    SpringError, SpringObj, TypeInfo, OBJECT_TYPE, STATUS_OK,
};

/// The benchmark interface's type.
pub static PINGER_TYPE: TypeInfo = TypeInfo {
    name: "pinger",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring_subcontracts::Singleton::ID,
};

/// Null operation: no arguments, no results.
pub const OP_PING: u32 = op_hash("ping");
/// Echo operation: bytes in, the same bytes out.
pub const OP_ECHO: u32 = op_hash("echo");

/// The benchmark servant.
#[derive(Debug, Default)]
pub struct PingServant;

impl Dispatch for PingServant {
    fn type_info(&self) -> &'static TypeInfo {
        &PINGER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_PING => {
                encode_ok(reply);
                Ok(())
            }
            x if x == OP_ECHO => {
                let payload = args.get_bytes()?;
                encode_ok(reply);
                reply.put_bytes(&payload);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// Creates a domain with the standard subcontracts and benchmark type.
pub fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&PINGER_TYPE);
    ctx
}

/// The general stub path for `ping` (works with any subcontract).
pub fn ping(obj: &SpringObj) -> Result<()> {
    let call = obj.start_call(OP_PING)?;
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The asynchronous stub path for `ping`: issues the call through the
/// pipeline subcontract and returns its promise without blocking.
pub fn ping_async(obj: &SpringObj) -> Result<spring_subcontracts::Promise> {
    let call = obj.start_call(OP_PING)?;
    spring_subcontracts::Pipeline::invoke_async(obj, call)
}

/// Collects a [`ping_async`] promise, decoding the reply like [`ping`].
pub fn ping_collect(promise: spring_subcontracts::Promise) -> Result<()> {
    let mut reply = promise.wait()?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The general stub path for `echo`.
pub fn echo(obj: &SpringObj, payload: &[u8]) -> Result<Vec<u8>> {
    let mut call = obj.start_call(OP_ECHO)?;
    call.put_bytes(payload);
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(reply.get_bytes()?),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The no-RPC baseline: a door whose handler does nothing, called with an
/// empty message — what a minimal kernel IPC round costs.
pub struct RawDoor {
    /// Calling domain.
    pub domain: Domain,
    /// Identifier owned by the calling domain.
    pub door: DoorId,
}

struct NullHandler;

impl DoorHandler for NullHandler {
    fn invoke(&self, _ctx: &CallCtx, _msg: Message) -> std::result::Result<Message, DoorError> {
        Ok(Message::new())
    }
}

impl RawDoor {
    /// Sets up the baseline between two fresh domains.
    pub fn new(kernel: &Kernel) -> RawDoor {
        let server = kernel.create_domain("raw-server");
        let client = kernel.create_domain("raw-client");
        let door = server
            .create_door(Arc::new(NullHandler))
            .expect("create door");
        let door = server.transfer_door(door, &client).expect("transfer");
        RawDoor {
            domain: client,
            door,
        }
    }

    /// One null kernel call.
    pub fn call(&self) -> std::result::Result<(), DoorError> {
        self.domain.call(self.door, Message::new())?;
        Ok(())
    }
}

/// The §9.1 *specialized stubs* path: client and server stubs fused for the
/// (pinger, simplex) pair. No trait objects, no generic marshalling — the
/// wire bytes are written and parsed inline, trading flexibility for speed
/// exactly as the paper anticipates.
pub struct FusedPing {
    /// Calling domain.
    pub domain: Domain,
    /// Identifier for the specialized server door.
    pub door: DoorId,
}

/// Server half of the fused pair: parses the simplex wire format directly.
struct FusedServerHandler;

impl DoorHandler for FusedServerHandler {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        // Wire: [ctrl u8][pad x3][op u32]. Specialized: assume ping.
        if msg.bytes.len() < 8 {
            return Err(DoorError::Handler("short fused request".into()));
        }
        let op = u32::from_le_bytes(msg.bytes[4..8].try_into().expect("4 bytes"));
        if op != OP_PING {
            return Err(DoorError::Handler("fused stub only serves ping".into()));
        }
        // Reply: [ctrl u8][status u8].
        Ok(Message::from_bytes(vec![0, STATUS_OK]))
    }
}

impl FusedPing {
    /// Sets up the fused pair between two fresh domains.
    pub fn new(kernel: &Kernel) -> FusedPing {
        let server = kernel.create_domain("fused-server");
        let client = kernel.create_domain("fused-client");
        let door = server
            .create_door(Arc::new(FusedServerHandler))
            .expect("create door");
        let door = server.transfer_door(door, &client).expect("transfer");
        FusedPing {
            domain: client,
            door,
        }
    }

    /// One fused ping: specialized client stub, no indirect calls.
    pub fn call(&self) -> std::result::Result<(), DoorError> {
        let mut bytes = Vec::with_capacity(8);
        bytes.push(0); // Simplex control byte.
        bytes.extend_from_slice(&[0, 0, 0]); // Alignment padding.
        bytes.extend_from_slice(&OP_PING.to_le_bytes());
        let reply = self.domain.call(self.door, Message::from_bytes(bytes))?;
        if reply.bytes.first() == Some(&0) && reply.bytes.get(1) == Some(&STATUS_OK) {
            Ok(())
        } else {
            Err(DoorError::Handler("bad fused reply".into()))
        }
    }
}
