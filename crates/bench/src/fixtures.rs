//! Benchmark servants, stubs, and the specialized ("fused") call path.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, DoorId, Kernel, Message};
use spring_subcontracts::{register_standard, Shmem, Singleton};
use subcontract::{
    decode_reply_status, encode_ok, op_hash, ship_object, Dispatch, DomainCtx, KernelTransport,
    ReplyStatus, Result, ServerCtx, ServerSubcontract, SpringError, SpringObj, TypeInfo,
    OBJECT_TYPE, STATUS_OK,
};

use crate::flatbench;

/// The benchmark interface's type.
pub static PINGER_TYPE: TypeInfo = TypeInfo {
    name: "pinger",
    parents: &[&OBJECT_TYPE],
    default_subcontract: spring_subcontracts::Singleton::ID,
};

/// Null operation: no arguments, no results.
pub const OP_PING: u32 = op_hash("ping");
/// Echo operation: bytes in, the same bytes out.
pub const OP_ECHO: u32 = op_hash("echo");

/// The benchmark servant.
#[derive(Debug, Default)]
pub struct PingServant;

impl Dispatch for PingServant {
    fn type_info(&self) -> &'static TypeInfo {
        &PINGER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_PING => {
                encode_ok(reply);
                Ok(())
            }
            x if x == OP_ECHO => {
                let payload = args.get_bytes()?;
                encode_ok(reply);
                reply.put_bytes(&payload);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// Creates a domain with the standard subcontracts and benchmark type.
pub fn ctx_on(kernel: &Kernel, name: &str) -> Arc<DomainCtx> {
    let ctx = DomainCtx::new(kernel.create_domain(name));
    register_standard(&ctx);
    ctx.types().register(&PINGER_TYPE);
    ctx
}

/// The general stub path for `ping` (works with any subcontract).
pub fn ping(obj: &SpringObj) -> Result<()> {
    let call = obj.start_call(OP_PING)?;
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The asynchronous stub path for `ping`: issues the call through the
/// pipeline subcontract and returns its promise without blocking.
pub fn ping_async(obj: &SpringObj) -> Result<spring_subcontracts::Promise> {
    let call = obj.start_call(OP_PING)?;
    spring_subcontracts::Pipeline::invoke_async(obj, call)
}

/// Collects a [`ping_async`] promise, decoding the reply like [`ping`].
pub fn ping_collect(promise: spring_subcontracts::Promise) -> Result<()> {
    let mut reply = promise.wait()?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The general stub path for `echo`.
pub fn echo(obj: &SpringObj, payload: &[u8]) -> Result<Vec<u8>> {
    let mut call = obj.start_call(OP_ECHO)?;
    call.put_bytes(payload);
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(reply.get_bytes()?),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// Servant behind the generated flat-path stubs (E1's `idl_flat` arm and
/// the zero-copy proofs). Every operation is fixed-shape, so both the
/// argument and result frames take the validate-in-place path.
#[derive(Debug, Default)]
pub struct FlatServant;

impl flatbench::FlatPingServant for FlatServant {
    fn ping(&self, token: u64) -> std::result::Result<u64, flatbench::FlatPingError> {
        Ok(token.wrapping_add(1))
    }

    fn echo_sample(
        &self,
        s: flatbench::Sample,
    ) -> std::result::Result<flatbench::Sample, flatbench::FlatPingError> {
        Ok(s)
    }

    fn sink_sample(
        &self,
        s: flatbench::Sample,
    ) -> std::result::Result<(), flatbench::FlatPingError> {
        let _ = s;
        Ok(())
    }
}

/// A representative fixed-shape message for the flat-path fixtures
/// (60-byte flat frame: nested struct, five scalars, enum, bool).
pub fn sample_fixture() -> flatbench::Sample {
    flatbench::Sample {
        when: flatbench::Stamp {
            secs: 1_726_000_000,
            nanos: 987_654_321,
        },
        a: 0x1111_1111_1111_1111,
        b: 0x2222_2222_2222_2222,
        c: 0x3333_3333_3333_3333,
        d: 0x4444_4444_4444_4444,
        seq: 42,
        kind: 7,
        urgent: true,
        m: flatbench::Mode::Active,
    }
}

/// Exports the flat-ping servant through singleton and wraps the exported
/// object directly: client and server share one domain, so every call takes
/// the kernel's same-domain (D2) delivery, where the payload moves by
/// ownership transfer instead of a cross-address-space copy.
pub fn flat_ping_same_domain(kernel: &Kernel) -> flatbench::FlatPing {
    let ctx = ctx_on(kernel, "flat");
    let obj = Singleton
        .export(
            &ctx,
            flatbench::FlatPingSkeleton::new(Arc::new(FlatServant)),
        )
        .expect("export flat servant");
    flatbench::FlatPing::from_obj(obj).expect("narrow flat_ping")
}

/// Exports the flat-ping servant through shmem between two domains:
/// argument frames cross in shared memory and are flat-decoded in place,
/// so only the 16-byte descriptor and the reply ride the copying path.
pub fn flat_ping_shmem(kernel: &Kernel, region_size: usize) -> flatbench::FlatPing {
    let server = ctx_on(kernel, "flat-server");
    let client = ctx_on(kernel, "flat-client");
    client.types().register(&flatbench::FLAT_PING_TYPE);
    let obj = Shmem::export(
        &server,
        flatbench::FlatPingSkeleton::new(Arc::new(FlatServant)),
        region_size,
    )
    .expect("export flat servant via shmem");
    let obj = ship_object(&KernelTransport, obj, &client, &flatbench::FLAT_PING_TYPE)
        .expect("ship flat_ping");
    flatbench::FlatPing::from_obj(obj).expect("narrow flat_ping")
}

/// The copying counterpart of the flat `echo_sample` path: the same wire
/// bytes over the same transport, but decoded field-by-field through
/// `idl_decode` on both sides — the code shape the IDL compiler emitted
/// before the flat fast path existed. E1 prices the two against each other.
#[derive(Debug, Default)]
pub struct CopySampleServant;

impl Dispatch for CopySampleServant {
    fn type_info(&self) -> &'static TypeInfo {
        &flatbench::FLAT_PING_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op == flatbench::flat_ping_ops::ECHO_SAMPLE {
            let s = flatbench::Sample::idl_decode(args)?;
            encode_ok(reply);
            s.idl_encode(reply);
            Ok(())
        } else {
            Err(SpringError::UnknownOp(op))
        }
    }
}

/// Exports [`CopySampleServant`] through singleton in one domain, like
/// [`flat_ping_same_domain`] but with the copying decode on the serve side.
pub fn copy_sample_same_domain(kernel: &Kernel) -> SpringObj {
    let ctx = ctx_on(kernel, "flat-copy");
    Singleton
        .export(&ctx, Arc::new(CopySampleServant))
        .expect("export copying servant")
}

/// Invokes `echo_sample` with the copying client decode (the pre-flat
/// general-stub shape), against a [`CopySampleServant`] export.
pub fn echo_sample_copying(obj: &SpringObj, s: &flatbench::Sample) -> Result<flatbench::Sample> {
    let mut call = obj.start_call(flatbench::flat_ping_ops::ECHO_SAMPLE)?;
    s.idl_encode(&mut call);
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(flatbench::Sample::idl_decode(&mut reply)?),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// Operation served by [`SpinServant`]: burns the configured service time.
pub const OP_WORK: u32 = op_hash("work");

/// A servant with a controllable service time — the workload behind the
/// open-loop experiments, where what matters is how long a call *occupies a
/// worker*, not what it computes. Two occupancy modes:
///
/// * [`SpinServant::new`] — CPU-bound: the call busy-spins for the service
///   time (a compute-heavy server).
/// * [`SpinServant::sleeping`] — timed occupancy: the call sleeps for the
///   service time (an I/O-bound server). The queueing behaviour is
///   identical — the worker is held either way — but the CPU stays free,
///   which keeps the measurement honest on small or shared hosts where
///   several spinning workers would preempt each other into
///   scheduler-induced multi-millisecond stalls.
///
/// A one-shot stall can be armed to simulate a server hiccup (GC pause,
/// page fault storm) for the coordinated-omission proof.
#[derive(Debug)]
pub struct SpinServant {
    service_ns: std::sync::atomic::AtomicU64,
    stall_ns: std::sync::atomic::AtomicU64,
    busy: bool,
}

impl SpinServant {
    /// Creates a servant whose `work` calls busy-spin for `service_ns`.
    pub fn new(service_ns: u64) -> Arc<SpinServant> {
        Self::with_mode(service_ns, true)
    }

    /// Creates a servant whose `work` calls sleep for `service_ns`.
    pub fn sleeping(service_ns: u64) -> Arc<SpinServant> {
        Self::with_mode(service_ns, false)
    }

    fn with_mode(service_ns: u64, busy: bool) -> Arc<SpinServant> {
        Arc::new(SpinServant {
            service_ns: std::sync::atomic::AtomicU64::new(service_ns),
            stall_ns: std::sync::atomic::AtomicU64::new(0),
            busy,
        })
    }

    /// Arms a one-shot stall: the *next* `work` call is held an extra `ns`
    /// before serving, then the stall disarms itself.
    pub fn arm_stall(&self, ns: u64) {
        self.stall_ns
            .store(ns, std::sync::atomic::Ordering::Relaxed);
    }

    fn occupy_for(&self, ns: u64) {
        if ns == 0 {
            return;
        }
        if self.busy {
            let deadline = spring_trace::now_ns() + ns;
            while spring_trace::now_ns() < deadline {
                std::hint::spin_loop();
            }
        } else {
            std::thread::sleep(std::time::Duration::from_nanos(ns));
        }
    }
}

impl Dispatch for SpinServant {
    fn type_info(&self) -> &'static TypeInfo {
        &PINGER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        _args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        match op {
            x if x == OP_WORK => {
                let stall = self.stall_ns.swap(0, std::sync::atomic::Ordering::Relaxed);
                self.occupy_for(stall);
                self.occupy_for(self.service_ns.load(std::sync::atomic::Ordering::Relaxed));
                encode_ok(reply);
                Ok(())
            }
            other => Err(SpringError::UnknownOp(other)),
        }
    }
}

/// The general stub path for `work` (same shape as [`ping`]).
pub fn work(obj: &SpringObj) -> Result<()> {
    let call = obj.start_call(OP_WORK)?;
    let mut reply = obj.invoke(call)?;
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(()),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// The no-RPC baseline: a door whose handler does nothing, called with an
/// empty message — what a minimal kernel IPC round costs.
pub struct RawDoor {
    /// Calling domain.
    pub domain: Domain,
    /// Identifier owned by the calling domain.
    pub door: DoorId,
}

struct NullHandler;

impl DoorHandler for NullHandler {
    fn invoke(&self, _ctx: &CallCtx, _msg: Message) -> std::result::Result<Message, DoorError> {
        Ok(Message::new())
    }
}

impl RawDoor {
    /// Sets up the baseline between two fresh domains.
    pub fn new(kernel: &Kernel) -> RawDoor {
        let server = kernel.create_domain("raw-server");
        let client = kernel.create_domain("raw-client");
        let door = server
            .create_door(Arc::new(NullHandler))
            .expect("create door");
        let door = server.transfer_door(door, &client).expect("transfer");
        RawDoor {
            domain: client,
            door,
        }
    }

    /// One null kernel call.
    pub fn call(&self) -> std::result::Result<(), DoorError> {
        self.domain.call(self.door, Message::new())?;
        Ok(())
    }
}

/// The §9.1 *specialized stubs* path: client and server stubs fused for the
/// (pinger, simplex) pair. No trait objects, no generic marshalling — the
/// wire bytes are written and parsed inline, trading flexibility for speed
/// exactly as the paper anticipates.
pub struct FusedPing {
    /// Calling domain.
    pub domain: Domain,
    /// Identifier for the specialized server door.
    pub door: DoorId,
}

/// Server half of the fused pair: parses the simplex wire format directly.
struct FusedServerHandler;

impl DoorHandler for FusedServerHandler {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        // Wire: [ctrl u8][pad x3][op u32]. Specialized: assume ping.
        if msg.bytes.len() < 8 {
            return Err(DoorError::Handler("short fused request".into()));
        }
        let op = u32::from_le_bytes(msg.bytes[4..8].try_into().expect("4 bytes"));
        if op != OP_PING {
            return Err(DoorError::Handler("fused stub only serves ping".into()));
        }
        // Reply: [ctrl u8][status u8].
        Ok(Message::from_bytes(vec![0, STATUS_OK]))
    }
}

impl FusedPing {
    /// Sets up the fused pair between two fresh domains.
    pub fn new(kernel: &Kernel) -> FusedPing {
        let server = kernel.create_domain("fused-server");
        let client = kernel.create_domain("fused-client");
        let door = server
            .create_door(Arc::new(FusedServerHandler))
            .expect("create door");
        let door = server.transfer_door(door, &client).expect("transfer");
        FusedPing {
            domain: client,
            door,
        }
    }

    /// One fused ping: specialized client stub, no indirect calls.
    pub fn call(&self) -> std::result::Result<(), DoorError> {
        let mut bytes = Vec::with_capacity(8);
        bytes.push(0); // Simplex control byte.
        bytes.extend_from_slice(&[0, 0, 0]); // Alignment padding.
        bytes.extend_from_slice(&OP_PING.to_le_bytes());
        let reply = self.domain.call(self.door, Message::from_bytes(bytes))?;
        if reply.bytes.first() == Some(&0) && reply.bytes.get(1) == Some(&STATUS_OK) {
            Ok(())
        } else {
            Err(DoorError::Handler("bad fused reply".into()))
        }
    }
}
