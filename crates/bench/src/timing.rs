//! Lightweight timing for the deterministic `report` binary (Criterion
//! handles the statistically careful runs under `benches/`).

use std::time::{Duration, Instant};

/// Runs `f` in a timed loop after a warmup, returning nanoseconds per
/// iteration.
pub fn ns_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `rounds` timed batches of `iters` iterations (after one warmup
/// batch) and returns the *fastest* batch's nanoseconds per iteration.
///
/// Load spikes on a busy host only ever slow a batch down, never speed it
/// up, so the minimum is a far more stable estimator than one long mean —
/// which matters for the ratio-based CI gates, where two arms measured
/// seconds apart must not see different host weather.
pub fn ns_per_iter_min(rounds: u32, iters: u64, mut f: impl FnMut()) -> f64 {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..rounds.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Times one execution of `f`.
pub fn time_once(f: impl FnOnce()) -> Duration {
    let start = Instant::now();
    f();
    start.elapsed()
}

/// Formats nanoseconds compactly.
pub fn fmt_ns(ns: f64) -> String {
    if ns >= 1_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else if ns >= 1_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else {
        format!("{ns:.0} ns")
    }
}
