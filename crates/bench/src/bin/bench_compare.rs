//! `bench_compare` — fails CI when a benchmark regresses past tolerance.
//!
//! Usage: `cargo run --release -p spring-bench --bin bench_compare --
//! BASELINE_DIR CURRENT_DIR [--tolerance PCT]`
//!
//! Both directories hold `BENCH_*.json` files as written by `report
//! --json-dir`. Raw nanosecond timings are machine- and load-dependent, so
//! the comparison uses *ratios within one run* — each metric divides two
//! numbers measured seconds apart on the same host, which cancels the
//! host's absolute speed:
//!
//! * `e1`: simplex ns / raw-door ns — the subcontract overhead multiple
//!   (lower is better). Guards the door-call fast path.
//! * `e1 flat`: idl-flat ns / fused-stub ns — how close the generated
//!   validate-in-place stubs stay to the hand-fused floor (lower is
//!   better). Guards the flat wire format's zero-copy decode path.
//! * `e1 echo`: flat echo ns / copying echo ns for the same 60-byte struct
//!   over the same transport (lower is better). The two arms differ only
//!   in decode strategy, so this guards the in-place win itself.
//! * `e1t`: max-thread calls/s / 1-thread calls/s, clamped to the host's
//!   hardware parallelism — throughput scaling under the sharded nucleus
//!   (higher is better).
//! * `e4`: simplex ns / caching ns on the last sweep row (highest latency,
//!   most reads) — the caching win (higher is better).
//! * `e14`: pipelined speedup at 1 ms latency (higher is better). Guards
//!   per-link batching.
//! * `e15 knee`: shed-arm knee ÷ no-shed knee, both in multiples of the
//!   same measured capacity (higher is better). Guards the admission
//!   controller's headline effect: shedding moves the saturation knee
//!   right.
//! * `e15 overload p99`: served p99 at the top of the sweep, shed ÷
//!   no-shed (lower is better). Guards the tail-latency win itself.
//! * `e16`: Unix-domain-socket null-call ns ÷ simulated-backend null-call
//!   ns, both measured in the same run (lower is better). Guards the
//!   socket transport's per-call overhead — framing, writer-thread
//!   handoff, reply matching — against the in-process floor.
//!
//! A metric regresses when it moves past `tolerance` (default 20%) in the
//! bad direction; improvements never fail. Missing files and missing
//! fields are errors that name the side (baseline/current), the file, and
//! the JSON path that came up short — silently skipping a comparison is
//! how regressions sneak in.

use std::path::Path;
use std::process::ExitCode;

use spring_trace::json::Json;

/// A normalized, machine-independent metric extracted from one experiment.
struct Metric {
    name: &'static str,
    file: &'static str,
    /// True when larger values are better (throughput scaling, speedups).
    higher_is_better: bool,
    /// Extracts the metric, or says exactly which JSON path was missing or
    /// malformed so a renamed field fails loudly instead of skipping.
    extract: fn(&Json) -> Result<f64, String>,
    /// Overrides the run-wide tolerance for metrics with known-wider run
    /// noise (socket latency depends on scheduler wakeup timing).
    tolerance: Option<f64>,
}

const METRICS: &[Metric] = &[
    Metric {
        name: "e1 simplex/raw overhead ratio",
        file: "BENCH_e1.json",
        higher_is_better: false,
        extract: e1_overhead_ratio,
        tolerance: None,
    },
    Metric {
        name: "e1 idl-flat/fused stub ratio",
        file: "BENCH_e1.json",
        higher_is_better: false,
        extract: e1_flat_ratio,
        tolerance: None,
    },
    Metric {
        name: "e1 flat/copying echo ratio",
        file: "BENCH_e1.json",
        higher_is_better: false,
        extract: e1_echo_ratio,
        tolerance: None,
    },
    Metric {
        name: "e1t thread-scaling ratio",
        file: "BENCH_e1t.json",
        higher_is_better: true,
        extract: e1t_scaling,
        tolerance: None,
    },
    Metric {
        name: "e4 caching speedup at max latency",
        file: "BENCH_e4.json",
        higher_is_better: true,
        extract: e4_caching_speedup,
        tolerance: None,
    },
    Metric {
        name: "e14 pipelining speedup at 1ms",
        file: "BENCH_e14.json",
        higher_is_better: true,
        extract: e14_speedup,
        tolerance: None,
    },
    Metric {
        name: "e15 shed/no-shed knee ratio",
        file: "BENCH_e15.json",
        higher_is_better: true,
        extract: e15_knee_ratio,
        tolerance: None,
    },
    Metric {
        name: "e15 overload p99 shed/no-shed",
        file: "BENCH_e15.json",
        higher_is_better: false,
        extract: e15_overload_p99_ratio,
        tolerance: None,
    },
    Metric {
        name: "e16 uds/sim null-call ratio",
        file: "BENCH_e16.json",
        higher_is_better: false,
        extract: e16_uds_ratio,
        tolerance: Some(0.60),
    },
];

/// Walks a dotted path of object keys; the error names the full path and
/// the first segment that was absent.
fn field<'a>(doc: &'a Json, path: &'static str) -> Result<&'a Json, String> {
    let mut cur = doc;
    for seg in path.split('.') {
        cur = cur.get(seg).ok_or_else(|| {
            if path == seg {
                format!("missing field `{path}`")
            } else {
                format!("missing field `{path}` (no `{seg}`)")
            }
        })?;
    }
    Ok(cur)
}

/// A number at a dotted path, or an error naming the path.
fn num(doc: &Json, path: &'static str) -> Result<f64, String> {
    field(doc, path)?
        .as_f64()
        .ok_or_else(|| format!("field `{path}` is not a number"))
}

fn arm_ns(doc: &Json, arm: &str) -> Result<f64, String> {
    field(doc, "arms")?
        .as_arr()
        .ok_or("field `arms` is not an array".to_string())?
        .iter()
        .find(|a| a.get("name").and_then(Json::as_str) == Some(arm))
        .ok_or_else(|| format!("no arm named `{arm}` in `arms`"))?
        .get("ns_per_call")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("arm `{arm}` lacks numeric `ns_per_call`"))
}

fn ratio(num_v: f64, den_v: f64, what: &str) -> Result<f64, String> {
    if den_v > 0.0 {
        Ok(num_v / den_v)
    } else {
        Err(format!("non-positive denominator for {what}"))
    }
}

fn e1_overhead_ratio(doc: &Json) -> Result<f64, String> {
    ratio(
        arm_ns(doc, "simplex")?,
        arm_ns(doc, "raw_door")?,
        "simplex/raw_door",
    )
}

fn e1_flat_ratio(doc: &Json) -> Result<f64, String> {
    ratio(
        arm_ns(doc, "idl_flat")?,
        arm_ns(doc, "fused_stubs")?,
        "idl_flat/fused_stubs",
    )
}

fn e1_echo_ratio(doc: &Json) -> Result<f64, String> {
    ratio(
        arm_ns(doc, "idl_flat_echo")?,
        arm_ns(doc, "idl_copy_echo")?,
        "idl_flat_echo/idl_copy_echo",
    )
}

fn e1t_scaling(doc: &Json) -> Result<f64, String> {
    let scaling = num(doc, "scaling_16_vs_1")?;
    // Measured "scaling" above the hardware parallelism is scheduler noise
    // (a single-core host can report anywhere from 2x to 6x depending on
    // how the 1-thread warmup landed), so clamp to what the host can
    // actually deliver before comparing.
    let hw = num(doc, "hardware_threads")?;
    Ok(scaling.min(hw))
}

fn e4_caching_speedup(doc: &Json) -> Result<f64, String> {
    let row = field(doc, "sweep")?
        .as_arr()
        .ok_or("field `sweep` is not an array".to_string())?
        .last()
        .ok_or("field `sweep` is empty".to_string())?;
    ratio(
        num(row, "simplex_ns")?,
        num(row, "caching_ns")?,
        "simplex_ns/caching_ns",
    )
}

fn e14_speedup(doc: &Json) -> Result<f64, String> {
    num(doc, "latency_1ms.speedup")
}

fn e15_knee_ratio(doc: &Json) -> Result<f64, String> {
    num(doc, "knee_ratio_shed_over_noshed")
}

fn e15_overload_p99_ratio(doc: &Json) -> Result<f64, String> {
    num(doc, "overload_p99_ratio_shed_over_noshed")
}

fn e16_uds_ratio(doc: &Json) -> Result<f64, String> {
    num(doc, "uds_vs_sim_null_ratio")
}

fn load(dir: &Path, file: &str) -> Result<Json, String> {
    let path = dir.join(file);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut tolerance = 0.20;
    let mut dirs = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--tolerance" {
            match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct > 0.0 => tolerance = pct / 100.0,
                _ => {
                    eprintln!("--tolerance needs a positive percentage");
                    return ExitCode::FAILURE;
                }
            }
            i += 2;
        } else {
            dirs.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline_dir, current_dir] = &dirs[..] else {
        eprintln!("usage: bench_compare BASELINE_DIR CURRENT_DIR [--tolerance PCT]");
        return ExitCode::FAILURE;
    };
    let baseline_dir = Path::new(baseline_dir);
    let current_dir = Path::new(current_dir);

    let mut failed = false;
    println!(
        "{:<36} {:>10} {:>10} {:>8}  verdict (tolerance {:.0}%)",
        "metric",
        "baseline",
        "current",
        "delta",
        tolerance * 100.0
    );
    for metric in METRICS {
        let pair = (|| -> Result<(f64, f64), String> {
            let base_doc = load(baseline_dir, metric.file).map_err(|e| format!("baseline: {e}"))?;
            let cur_doc = load(current_dir, metric.file).map_err(|e| format!("current: {e}"))?;
            let base = (metric.extract)(&base_doc)
                .map_err(|e| format!("baseline {}: {e}", metric.file))?;
            let cur =
                (metric.extract)(&cur_doc).map_err(|e| format!("current {}: {e}", metric.file))?;
            Ok((base, cur))
        })();
        let (base, cur) = match pair {
            Ok(pair) => pair,
            Err(e) => {
                println!("{:<36} ERROR: {e}", metric.name);
                failed = true;
                continue;
            }
        };
        let tol = metric.tolerance.unwrap_or(tolerance);
        let regressed = if metric.higher_is_better {
            cur < base * (1.0 - tol)
        } else {
            cur > base * (1.0 + tol)
        };
        let delta = (cur - base) / base * 100.0;
        println!(
            "{:<36} {:>10.3} {:>10.3} {:>+7.1}%  {}{}",
            metric.name,
            base,
            cur,
            delta,
            if regressed { "REGRESSED" } else { "ok" },
            match metric.tolerance {
                Some(t) => format!(" (tolerance {:.0}%)", t * 100.0),
                None => String::new(),
            }
        );
        failed |= regressed;
    }

    if failed {
        eprintln!("benchmark regression detected");
        ExitCode::FAILURE
    } else {
        println!("all benchmark metrics within tolerance");
        ExitCode::SUCCESS
    }
}
