//! `report` — regenerates every evaluation table of the paper.
//!
//! Usage: `cargo run --release -p spring-bench --bin report [--quick]
//! [--smoke] [--trace] [--json-dir DIR]`
//!
//! One section per experiment from DESIGN.md §4 (E1–E14). Timings are
//! machine-dependent; the accompanying counters (doors created, messages
//! sent, bytes copied) are not, and EXPERIMENTS.md records both.
//!
//! Flags:
//!
//! * `--quick` — fewer iterations per timed loop (local sanity runs).
//! * `--smoke` — E1/E1t/E4/E14/E15/E16 only, with tiny iteration counts
//!   and short sweeps; the CI per-push mode whose sole purpose is
//!   producing `BENCH_e1.json` / `BENCH_e1t.json` / `BENCH_e4.json` /
//!   `BENCH_e14.json` / `BENCH_e15.json` / `BENCH_e16.json` and proving
//!   the harness still runs.
//! * `--trace` — enable distributed tracing for the run, so the JSON
//!   output carries per-subcontract latency histograms (slower; not the
//!   configuration EXPERIMENTS.md records).
//! * `--json-dir DIR` — write the machine-readable results of E1, E1t,
//!   E4, E14, E15 and E16 to `DIR/BENCH_e1.json`, `DIR/BENCH_e1t.json`,
//!   `DIR/BENCH_e4.json`, `DIR/BENCH_e14.json`, `DIR/BENCH_e15.json`
//!   and `DIR/BENCH_e16.json`.

use spring_bench::report;
use spring_trace::json::Json;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let smoke = args.iter().any(|a| a == "--smoke");
    let trace = args.iter().any(|a| a == "--trace");
    let json_dir = args
        .iter()
        .position(|a| a == "--json-dir")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let iters: u64 = if smoke {
        500
    } else if quick {
        2_000
    } else {
        50_000
    };

    if trace {
        spring_trace::set_enabled(true);
    }

    println!("Subcontract evaluation reproduction (paper: Hamilton/Powell/Mitchell, SOSP 1993)");
    println!(
        "iterations per timed loop: {iters}{}",
        if smoke {
            " (smoke mode)"
        } else if quick {
            " (quick mode)"
        } else {
            ""
        }
    );

    let e1 = report::e1_null_call(iters);
    let e1t = report::e1_threaded(if smoke { 200 } else { iters });
    let e4 = report::e4_caching(smoke || quick);
    let e14 = report::e14_pipeline(smoke || quick);
    let e15 = report::e15_open_loop(smoke || quick);
    let e16 = report::e16_socket(smoke || quick);

    if !smoke {
        report::e2_transmit(iters);
        report::e3_cluster();
        report::e4b_unmarshal_overhead(iters);
        report::e5_replicon(iters);
        report::e6_reconnect();
        report::e7_marshal_copy(iters);
        report::e8_shmem(if quick { 200 } else { 2_000 });
        report::e9_discovery(iters);
        report::e11_compat(iters);
        report::e12_local(iters);
        report::e13_stream(if quick { 500 } else { 10_000 });
    }

    if let Some(dir) = json_dir {
        write_json(&dir, "BENCH_e1.json", &e1);
        write_json(&dir, "BENCH_e1t.json", &e1t);
        write_json(&dir, "BENCH_e4.json", &e4);
        write_json(&dir, "BENCH_e14.json", &e14);
        write_json(&dir, "BENCH_e15.json", &e15);
        write_json(&dir, "BENCH_e16.json", &e16);
    }

    println!();
    println!("done.");
}

fn write_json(dir: &str, name: &str, value: &Json) {
    let dir = std::path::Path::new(dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        std::process::exit(1);
    }
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, value.pretty()) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());
}
