//! `report` — regenerates every evaluation table of the paper.
//!
//! Usage: `cargo run --release -p spring-bench --bin report [--quick]`
//!
//! One section per experiment from DESIGN.md §4 (E1–E12). Timings are
//! machine-dependent; the accompanying counters (doors created, messages
//! sent, bytes copied) are not, and EXPERIMENTS.md records both.

use spring_bench::report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: u64 = if quick { 2_000 } else { 50_000 };

    println!("Subcontract evaluation reproduction (paper: Hamilton/Powell/Mitchell, SOSP 1993)");
    println!(
        "iterations per timed loop: {iters}{}",
        if quick { " (quick mode)" } else { "" }
    );

    report::e1_null_call(iters);
    report::e1_threaded(iters);
    report::e2_transmit(iters);
    report::e3_cluster();
    report::e4_caching();
    report::e4b_unmarshal_overhead(iters);
    report::e5_replicon(iters);
    report::e6_reconnect();
    report::e7_marshal_copy(iters);
    report::e8_shmem(if quick { 200 } else { 2_000 });
    report::e9_discovery(iters);
    report::e11_compat(iters);
    report::e12_local(iters);
    report::e13_stream(if quick { 500 } else { 10_000 });

    println!();
    println!("done.");
}
