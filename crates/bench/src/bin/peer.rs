//! `peer` — one OS process on the socket transport, for multi-process
//! tests and the E16 benchmark.
//!
//! Serve mode publishes a bootstrap door speaking a tiny op protocol and
//! blocks forever (the parent kills the process when done):
//!
//! ```text
//! peer serve --node N (--uds PATH | --tcp ADDR)
//! ```
//!
//! It prints `READY <addr>` on stdout once the listener is bound — for TCP
//! that line carries the actual ephemeral address.
//!
//! Drive mode dials a serving peer and runs the cross-process acceptance
//! sweep (echo calls, a pipelined burst, door round-trips, an at-most-once
//! retry across an injected reply loss, and leak checks on both sides),
//! exiting nonzero with a message on the first failure:
//!
//! ```text
//! peer drive --node N (--uds PATH | --tcp ADDR) --calls K [--kill]
//! ```
//!
//! With `--kill` it instead asks the server to die mid-call and checks the
//! in-flight call fails with a communications error.
//!
//! The op protocol, chosen by the first payload byte: 0 echo (bytes and
//! doors come straight back), 1 count (returns a running counter,
//! deduplicated by the envelope's `CallId` nonce), 2 mint a door into the
//! reply, 3 report the serving kernel's live identifier count, 4 sleep
//! `u64` ms then echo, 5 arm one injected write fault on the listener (the
//! next reply frame dies), 6 exit the process mid-call.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use spring_kernel::{CallCtx, CallId, DoorError, DoorHandler, DoorId, Kernel, Message};
use spring_net::{NetConfig, Network, SocketListener, SocketPeer};

const OP_ECHO: u8 = 0;
const OP_COUNT: u8 = 1;
const OP_MAKE_DOOR: u8 = 2;
const OP_LIVE_IDS: u8 = 3;
const OP_SLOW: u8 = 4;
const OP_ARM_REPLY_FAULT: u8 = 5;
const OP_DIE: u8 = 6;

fn fail(msg: &str) -> ! {
    eprintln!("peer: {msg}");
    std::process::exit(1);
}

fn live_ids(kernel: &Kernel) -> u64 {
    let s = kernel.stats();
    s.ids_issued - s.ids_deleted
}

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

struct PeerServant {
    kernel: Kernel,
    count: AtomicU64,
    /// Reply cache for `OP_COUNT`: nonce → the value this logical call
    /// counted. A retry of a nonce whose first attempt already executed
    /// gets the recorded reply instead of a second execution — at-most-once
    /// across real processes, keyed by the envelope the socket carried.
    seen: Mutex<HashMap<u64, u64>>,
    listener: Mutex<Option<Arc<SocketListener>>>,
}

impl DoorHandler for PeerServant {
    fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let op = *msg.bytes.first().unwrap_or(&OP_ECHO);
        match op {
            OP_COUNT => {
                let id = msg.call;
                if id.is_some() {
                    let mut seen = self.seen.lock().unwrap();
                    let counted = *seen
                        .entry(id.nonce)
                        .or_insert_with(|| self.count.fetch_add(1, Ordering::Relaxed) + 1);
                    Ok(Message::from_bytes(counted.to_le_bytes().to_vec()))
                } else {
                    let counted = self.count.fetch_add(1, Ordering::Relaxed) + 1;
                    Ok(Message::from_bytes(counted.to_le_bytes().to_vec()))
                }
            }
            OP_MAKE_DOOR => {
                let fresh = ctx.server.create_door(Arc::new(Echo))?;
                Ok(Message {
                    doors: vec![fresh],
                    ..Message::default()
                })
            }
            OP_LIVE_IDS => Ok(Message::from_bytes(
                live_ids(&self.kernel).to_le_bytes().to_vec(),
            )),
            OP_SLOW => {
                let ms = msg
                    .bytes
                    .get(1..9)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(10);
                std::thread::sleep(Duration::from_millis(ms));
                Ok(msg)
            }
            OP_ARM_REPLY_FAULT => {
                // Faults apply to the next N reply frames — starting with
                // the reply to THIS call, so callers arm N and expect their
                // own reply to be casualty number one.
                let n = *msg.bytes.get(1).unwrap_or(&1) as u64;
                match self.listener.lock().unwrap().as_ref() {
                    Some(l) => l.inject_write_faults(n),
                    None => return Err(DoorError::Handler("no listener to arm".into())),
                }
                Ok(Message::new())
            }
            OP_DIE => {
                // Exit without replying: the dialer must see the in-flight
                // call fail with a communications error, not hang.
                std::process::exit(9);
            }
            _ => Ok(msg),
        }
    }
}

enum Addr {
    Uds(String),
    Tcp(String),
}

struct Args {
    mode: String,
    node: u64,
    addr: Addr,
    calls: u64,
    kill: bool,
}

fn parse_args() -> Args {
    let argv: Vec<String> = std::env::args().collect();
    let mode = argv.get(1).cloned().unwrap_or_default();
    if mode != "serve" && mode != "drive" {
        fail("usage: peer (serve|drive) --node N (--uds PATH | --tcp ADDR) [--calls K] [--kill]");
    }
    let flag = |name: &str| {
        argv.iter()
            .position(|a| a == name)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let node = flag("--node")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail("--node N required"));
    let addr = match (flag("--uds"), flag("--tcp")) {
        (Some(p), None) => Addr::Uds(p),
        (None, Some(a)) => Addr::Tcp(a),
        _ => fail("exactly one of --uds PATH or --tcp ADDR required"),
    };
    Args {
        mode,
        node,
        addr,
        calls: flag("--calls").and_then(|v| v.parse().ok()).unwrap_or(1000),
        kill: argv.iter().any(|a| a == "--kill"),
    }
}

fn serve(args: Args) -> ! {
    let net = Network::new(NetConfig::default());
    let node = net.add_node_with_id("peer-serve", args.node);
    let domain = node.kernel().create_domain("servants");
    let servant = Arc::new(PeerServant {
        kernel: node.kernel().clone(),
        count: AtomicU64::new(0),
        seen: Mutex::new(HashMap::new()),
        listener: Mutex::new(None),
    });
    let door = domain
        .create_door(servant.clone())
        .unwrap_or_else(|e| fail(&format!("create_door: {e}")));
    net.set_bootstrap(node.id(), &domain, door)
        .unwrap_or_else(|e| fail(&format!("set_bootstrap: {e}")));

    let (listener, shown) = match &args.addr {
        Addr::Uds(path) => {
            let l = net
                .listen_uds(node.id(), path)
                .unwrap_or_else(|e| fail(&format!("listen_uds {path}: {e}")));
            (l, path.clone())
        }
        Addr::Tcp(addr) => {
            let l = net
                .listen_tcp(node.id(), addr)
                .unwrap_or_else(|e| fail(&format!("listen_tcp {addr}: {e}")));
            let actual = l.local_addr().to_string();
            (l, actual)
        }
    };
    *servant.listener.lock().unwrap() = Some(listener);

    // The parent synchronizes on this line (and reads the ephemeral TCP
    // address out of it), then kills the process when the run is over.
    println!("READY {shown}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    loop {
        std::thread::park();
    }
}

fn connect(net: &Network, node: spring_kernel::NodeId, addr: &Addr) -> Arc<SocketPeer> {
    let res = match addr {
        Addr::Uds(path) => net.connect_uds(node, path),
        Addr::Tcp(a) => net.connect_tcp(node, a),
    };
    res.unwrap_or_else(|e| fail(&format!("connect: {e}")))
}

fn call_op(
    domain: &spring_kernel::Domain,
    door: DoorId,
    bytes: Vec<u8>,
) -> Result<Message, DoorError> {
    domain.call(door, Message::from_bytes(bytes))
}

fn expect_u64(reply: &Message, what: &str) -> u64 {
    reply
        .bytes
        .get(..8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or_else(|| fail(&format!("{what}: short reply")))
}

fn drive(args: Args) {
    let net = Network::new(NetConfig::default());
    let node = net.add_node_with_id("peer-drive", args.node);
    let domain = node.kernel().create_domain("app");
    let peer = connect(&net, node.id(), &args.addr);
    let door = peer
        .bootstrap_door(&domain)
        .unwrap_or_else(|e| fail(&format!("bootstrap_door: {e}")));

    if args.kill {
        // Warm call, then ask the server to exit mid-call: the in-flight
        // call must fail with a communications error, promptly.
        call_op(&domain, door, vec![OP_ECHO, 1]).unwrap_or_else(|e| fail(&format!("warm: {e}")));
        match call_op(&domain, door, vec![OP_DIE]) {
            Err(e) if e.is_comm_failure() => {
                println!("kill: in-flight call failed with Comm as required");
                return;
            }
            Err(e) => fail(&format!("kill: expected Comm, got {e:?}")),
            Ok(_) => fail("kill: call to a dead process somehow succeeded"),
        }
    }

    // Door round-trips first (they intentionally pin proxy/export state on
    // both sides), then leak baselines, then the door-free sweep which must
    // leave both processes exactly at baseline.
    let minted = call_op(&domain, door, vec![OP_MAKE_DOOR])
        .unwrap_or_else(|e| fail(&format!("make_door: {e}")));
    let proxy = *minted
        .doors
        .first()
        .unwrap_or_else(|| fail("make_door: no door in reply"));
    let echoed = domain
        .call(proxy, Message::from_bytes(b"via minted door".to_vec()))
        .unwrap_or_else(|e| fail(&format!("minted door call: {e}")));
    if echoed.bytes != b"via minted door" {
        fail("minted door call: wrong payload");
    }
    domain
        .delete_door(proxy)
        .unwrap_or_else(|e| fail(&format!("delete minted proxy: {e}")));

    let local_baseline = live_ids(node.kernel());
    let remote_baseline = expect_u64(
        &call_op(&domain, door, vec![OP_LIVE_IDS])
            .unwrap_or_else(|e| fail(&format!("live_ids: {e}"))),
        "live_ids",
    );

    // Sequential null calls.
    let sequential = args.calls / 2;
    for i in 0..sequential {
        let payload = vec![OP_ECHO, i as u8, (i >> 8) as u8];
        let reply = call_op(&domain, door, payload.clone())
            .unwrap_or_else(|e| fail(&format!("echo call {i}: {e}")));
        if reply.bytes != payload {
            fail(&format!("echo call {i}: wrong payload"));
        }
    }

    // Pipelined burst: concurrent callers share the link and ride batched
    // frames. Every thread calls through its own copy of the proxy door.
    let threads = 8u64;
    let per_thread = (args.calls - sequential).div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let d = domain.clone();
            let tdoor = domain
                .copy_door(door)
                .unwrap_or_else(|e| fail(&format!("copy door: {e}")));
            s.spawn(move || {
                for i in 0..per_thread {
                    let payload = vec![OP_ECHO, t as u8, i as u8];
                    let reply = call_op(&d, tdoor, payload.clone())
                        .unwrap_or_else(|e| fail(&format!("burst call {t}/{i}: {e}")));
                    if reply.bytes != payload {
                        fail(&format!("burst call {t}/{i}: wrong payload"));
                    }
                }
                d.delete_door(tdoor)
                    .unwrap_or_else(|e| fail(&format!("delete burst door: {e}")));
            });
        }
    });

    // At-most-once across a lost reply: arm one reply-frame fault, issue a
    // counted call, watch it fail with Comm, retry with the SAME nonce,
    // and check the server executed the count exactly once.
    let count_at = |id: CallId| -> Result<u64, DoorError> {
        let mut msg = Message::from_bytes(vec![OP_COUNT]);
        msg.call = id;
        domain.call(door, msg).map(|r| expect_u64(&r, "count"))
    };
    let n0 = count_at(CallId::NONE).unwrap_or_else(|e| fail(&format!("count: {e}")));
    // Arm two reply faults: the first eats the arming call's own reply
    // (so that call must itself fail with Comm), the second eats the
    // counted call's reply on the redialed connection.
    match call_op(&domain, door, vec![OP_ARM_REPLY_FAULT, 2]) {
        Err(e) if e.is_comm_failure() => {}
        Err(e) => fail(&format!("arm fault: expected Comm, got {e:?}")),
        Ok(_) => fail("arm fault: its own reply should have been dropped"),
    }
    let retry_id = CallId {
        nonce: spring_kernel::callid::next_nonce(),
        attempt: 1,
        deadline_micros: 0,
    };
    match count_at(retry_id) {
        Err(e) if e.is_comm_failure() => {}
        Err(e) => fail(&format!("lost-reply call: expected Comm, got {e:?}")),
        Ok(_) => fail("lost-reply call unexpectedly survived the injected fault"),
    }
    let retried = count_at(CallId {
        attempt: 2,
        ..retry_id
    })
    .unwrap_or_else(|e| fail(&format!("retry: {e}")));
    if retried != n0 + 1 {
        fail(&format!(
            "retry: counted {retried}, expected {} (first attempt must have executed once)",
            n0 + 1
        ));
    }
    let n2 = count_at(CallId::NONE).unwrap_or_else(|e| fail(&format!("count after retry: {e}")));
    if n2 != n0 + 2 {
        fail(&format!(
            "dedup broken: counter at {n2} after retry, expected {} — the retried nonce \
             must not execute twice",
            n0 + 2
        ));
    }

    // Zero leaked doors, both sides.
    let local_now = live_ids(node.kernel());
    if local_now != local_baseline {
        fail(&format!(
            "local door leak: {local_now} live ids vs baseline {local_baseline}"
        ));
    }
    let remote_now = expect_u64(
        &call_op(&domain, door, vec![OP_LIVE_IDS])
            .unwrap_or_else(|e| fail(&format!("live_ids: {e}"))),
        "live_ids",
    );
    if remote_now != remote_baseline {
        fail(&format!(
            "server door leak: {remote_now} live ids vs baseline {remote_baseline}"
        ));
    }

    let stats = net.socket_stats();
    println!(
        "drive: ok — {} calls ({sequential} sequential + {threads}x{per_thread} burst), \
         {} frames sent / {} received, {} disconnect(s), zero leaked doors both sides",
        args.calls, stats.frames_sent, stats.frames_received, stats.disconnects
    );
}

fn main() {
    let args = parse_args();
    if args.mode == "serve" {
        serve(args)
    } else {
        drive(args)
    }
}
