//! Shared fixtures for the benchmark harness.
//!
//! Every experiment from DESIGN.md §4 (E1–E12) is driven twice: by a
//! Criterion bench under `benches/` (wall-clock distributions) and by the
//! `report` binary (deterministic, hardware-independent counters plus quick
//! timings), whose output is recorded in EXPERIMENTS.md.

/// Generated stubs for the flat-frame benchmark interface (see
/// `idl/bench.idl`): fixed-shape messages whose unmarshal path is
/// validate-in-place over the wire bytes.
// Machine-written code is kept simple and regular rather than idiomatic;
// style lints are waived for it, as is conventional for generated modules.
#[allow(clippy::all)]
pub mod idl {
    include!(concat!(env!("OUT_DIR"), "/bench.rs"));
}

pub use idl::flatbench;

pub mod fixtures;
pub mod openloop;
pub mod report;
pub mod timing;
