//! Shared fixtures for the benchmark harness.
//!
//! Every experiment from DESIGN.md §4 (E1–E12) is driven twice: by a
//! Criterion bench under `benches/` (wall-clock distributions) and by the
//! `report` binary (deterministic, hardware-independent counters plus quick
//! timings), whose output is recorded in EXPERIMENTS.md.

pub mod fixtures;
pub mod report;
pub mod timing;
