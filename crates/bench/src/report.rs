//! The experiment harness behind the `report` binary.
//!
//! One function per experiment from DESIGN.md §4; each prints a table of
//! measured timings *and* hardware-independent counters (kernel door
//! counts, network message counts), which is what EXPERIMENTS.md records
//! against the paper's claims.

use std::sync::Arc;
use std::time::{Duration, Instant};

use spring_kernel::Kernel;
use spring_naming::{NameClient, NameServer, NAMING_CONTEXT_TYPE};
use spring_net::{NetConfig, Network};
use spring_services::{file_cache_manager, fs, FileServer};
use spring_subcontracts::{
    standard_library, Caching, Cluster, ClusterServer, Pipeline, Reconnectable, ReplicaGroup,
    Replicon, RepliconServer, RetryPolicy, Shmem, Simplex, Singleton,
};
use subcontract::{
    ship_object, ship_object_copy, unmarshal_object, DomainCtx, KernelTransport, LibraryStore,
    MapLibraryNames, ServerSubcontract, SpringObj,
};

use spring_subcontracts::stream::{FrameOutcome, Stream};
use spring_trace::json::Json;

use crate::fixtures::{
    ctx_on, echo, ping, ping_async, ping_collect, work, FusedPing, PingServant, RawDoor,
    SpinServant, PINGER_TYPE,
};
use crate::openloop::{self, OpenLoopConfig};
use crate::timing::{fmt_ns, ns_per_iter, ns_per_iter_min, time_once};

/// Timed batches per E1 arm; the reported figure is the fastest batch.
/// E1's per-arm numbers feed the ratio-based CI gates, so each arm takes
/// the minimum over several short batches — host load spikes then have to
/// hit every batch of an arm to skew its ratio (see
/// [`crate::timing::ns_per_iter_min`]).
const E1_ROUNDS: u32 = 5;

fn servant() -> Arc<PingServant> {
    Arc::new(PingServant)
}

fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// E1 + E10 — §9.3: the cost a subcontract adds to a minimal remote call,
/// and §9.1's specialized-stub escape hatch.
///
/// Returns the measurements as a [`Json`] record; the `report` binary
/// writes it to `BENCH_e1.json` when `--json-dir` is given, and CI archives
/// that file as a per-push artifact.
pub fn e1_null_call(iters: u64) -> Json {
    header("E1/E10: minimal cross-domain call (paper §9.3, §9.1)");
    let kernel = Kernel::new("e1");
    spring_kernel::pool::reset_counters();
    let before = kernel.stats();

    let raw = RawDoor::new(&kernel);
    let raw_ns = ns_per_iter_min(E1_ROUNDS, iters, || raw.call().unwrap());

    let fused = FusedPing::new(&kernel);
    let fused_ns = ns_per_iter_min(E1_ROUNDS, iters, || fused.call().unwrap());

    // Generated flat-path stubs (validate-in-place, §5.13): the IDL
    // compiler's zero-copy wire format, driven same-domain so the kernel's
    // D2 delivery moves the frame by ownership instead of a copy. The gap
    // this arm closes is measured against the hand-fused stubs above.
    let flat = crate::fixtures::flat_ping_same_domain(&kernel);
    let flat_ns = ns_per_iter_min(E1_ROUNDS, iters, || {
        let _ = flat.ping(7).unwrap();
    });

    // Struct-payload pair: the same 60-byte `sample` echoed over the same
    // same-domain transport, decoded either in place (flat view) or
    // field-by-field (`idl_decode`, the pre-flat stub shape). The two arms
    // differ only in the wire-format code the tentpole replaced, so their
    // ratio isolates the validate-in-place win from invoke machinery.
    let sample = crate::fixtures::sample_fixture();
    let flat_echo_ns = ns_per_iter_min(E1_ROUNDS, iters, || {
        let _ = flat.echo_sample(&sample).unwrap();
    });
    let copy_obj = crate::fixtures::copy_sample_same_domain(&kernel);
    let copy_echo_ns = ns_per_iter_min(E1_ROUNDS, iters, || {
        let _ = crate::fixtures::echo_sample_copying(&copy_obj, &sample).unwrap();
    });

    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let obj = Singleton.export(&server, servant()).unwrap();
    let singleton_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    let singleton_ns = ns_per_iter_min(E1_ROUNDS, iters, || ping(&singleton_obj).unwrap());

    let obj = Simplex.export(&server, servant()).unwrap();
    let simplex_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    let simplex_ns = ns_per_iter_min(E1_ROUNDS, iters, || ping(&simplex_obj).unwrap());

    // At-most-once arm: every call carries a fresh call identity and the
    // server records its reply in the dedup cache. The id-free arms above
    // all pass `CallId::NONE` through the same serve path (one branch), so
    // any drift in *their* numbers is the disabled-path cost — the gate CI
    // watches. The delta of this arm against singleton is the full price
    // of the identity machinery when it is switched on.
    let obj = Reconnectable::export(&server, servant(), "e1-amo").unwrap();
    let amo_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    let amo_ns = ns_per_iter_min(E1_ROUNDS, iters, || ping(&amo_obj).unwrap());

    let delta = kernel.stats().since(&before);

    println!(
        "{:<34} {:>12} {:>24}",
        "arm", "ns/call", "extra indirect calls"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "raw kernel door (no RPC)",
        fmt_ns(raw_ns),
        "0"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "specialized fused stubs (§9.1)",
        fmt_ns(fused_ns),
        "0"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "idl flat stubs, same domain (D2)",
        fmt_ns(flat_ns),
        "2 client + 1 server"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "flat echo_sample (60 B, in place)",
        fmt_ns(flat_echo_ns),
        "2 client + 1 server"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "copying echo_sample (60 B)",
        fmt_ns(copy_echo_ns),
        "2 client + 1 server"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "general stubs + singleton",
        fmt_ns(singleton_ns),
        "2 client + 1 server"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "general stubs + simplex",
        fmt_ns(simplex_ns),
        "2 client + 2 server"
    );
    println!(
        "{:<34} {:>12} {:>24}",
        "at-most-once (reconnectable)",
        fmt_ns(amo_ns),
        "2 client + 1 server"
    );
    println!(
        "at-most-once identity + reply cache vs singleton: +{}",
        fmt_ns(amo_ns - singleton_ns)
    );
    println!(
        "subcontract overhead vs raw: singleton +{}, simplex +{} (paper: < 2 µs on a SPARCstation 2)",
        fmt_ns(singleton_ns - raw_ns),
        fmt_ns(simplex_ns - raw_ns)
    );
    println!(
        "specialization wins back {} of the {} general-stub cost",
        fmt_ns(simplex_ns - fused_ns),
        fmt_ns(simplex_ns - raw_ns)
    );
    println!(
        "flat stubs sit {} above the fused floor (general stubs: +{})",
        fmt_ns(flat_ns - fused_ns),
        fmt_ns(simplex_ns - fused_ns)
    );
    println!(
        "in-place decode saves {} per 60-byte echo ({:.2}x over copying)",
        fmt_ns(copy_echo_ns - flat_echo_ns),
        copy_echo_ns / flat_echo_ns
    );

    let arm = |name: &str, ns: f64, extra_calls: u64| {
        Json::obj([
            ("name", Json::from(name)),
            ("ns_per_call", Json::from(ns)),
            ("extra_indirect_calls", Json::from(extra_calls)),
        ])
    };
    Json::obj([
        ("experiment", Json::from("e1_null_call")),
        ("paper_sections", Json::from("9.3, 9.1")),
        ("iters", Json::from(iters)),
        (
            "arms",
            Json::Arr(vec![
                arm("raw_door", raw_ns, 0),
                arm("fused_stubs", fused_ns, 0),
                arm("idl_flat", flat_ns, 3),
                arm("idl_flat_echo", flat_echo_ns, 3),
                arm("idl_copy_echo", copy_echo_ns, 3),
                arm("singleton", singleton_ns, 3),
                arm("simplex", simplex_ns, 4),
                arm("at_most_once", amo_ns, 3),
            ]),
        ),
        (
            "overhead_ns",
            Json::obj([
                ("singleton_vs_raw", Json::from(singleton_ns - raw_ns)),
                ("simplex_vs_raw", Json::from(simplex_ns - raw_ns)),
                ("simplex_vs_fused", Json::from(simplex_ns - fused_ns)),
                ("idl_flat_vs_fused", Json::from(flat_ns - fused_ns)),
                (
                    "copy_echo_vs_flat_echo",
                    Json::from(copy_echo_ns - flat_echo_ns),
                ),
                (
                    "at_most_once_vs_singleton",
                    Json::from(amo_ns - singleton_ns),
                ),
            ]),
        ),
        ("kernel_counters", kernel_counters_json(&delta)),
        ("tracing", tracing_json()),
    ])
}

/// The hardware-independent kernel counters of a run, as a JSON object.
fn kernel_counters_json(delta: &spring_kernel::StatsSnapshot) -> Json {
    Json::obj([
        ("door_calls", Json::from(delta.door_calls)),
        ("doors_created", Json::from(delta.doors_created)),
        ("bytes_copied", Json::from(delta.bytes_copied)),
        ("local_deliveries", Json::from(delta.local_deliveries)),
        ("table_lock_waits", Json::from(delta.table_lock_waits)),
        ("shard_lock_waits", Json::from(delta.shard_lock_waits)),
        ("pool_hits", Json::from(delta.pool_hits)),
        ("pool_misses", Json::from(delta.pool_misses)),
    ])
}

/// Tracing state plus, when enabled, the per-subcontract latency
/// histograms recorded during the run.
fn tracing_json() -> Json {
    if spring_trace::enabled() {
        Json::obj([
            ("enabled", Json::from(true)),
            ("histograms", spring_trace::histograms_json()),
        ])
    } else {
        Json::obj([("enabled", Json::from(false))])
    }
}

/// E1t — concurrent null-call throughput: one raw door per caller thread,
/// all on a single kernel. With the sharded nucleus, callers on distinct
/// doors and domains take disjoint locks, so aggregate throughput should
/// scale with cores (the contention counters show residual lock traffic —
/// on a single-core host the aggregate cannot exceed the 1-thread rate,
/// but the wait counts still demonstrate lock independence).
pub fn e1_threaded(iters: u64) -> Json {
    header("E1t: concurrent null-call throughput (sharded nucleus)");
    println!(
        "{:<8} {:>16} {:>12} {:>12} {:>12} {:>14}",
        "threads", "calls/s (agg)", "ns/call", "table waits", "shard waits", "pool hit rate"
    );
    let mut rows = Vec::new();
    let mut single_rate = 0.0f64;
    let mut last_rate = 0.0f64;
    for &threads in &[1usize, 4, 16] {
        let kernel = Kernel::new(format!("e1t-{threads}"));
        // The fused ping is the minimal *payload-carrying* null call (an
        // 8-byte wire header each way), so it also exercises the pool.
        let doors: Vec<FusedPing> = (0..threads).map(|_| FusedPing::new(&kernel)).collect();
        for d in &doors {
            for _ in 0..(iters / 10).max(1) {
                d.call().unwrap();
            }
        }
        let before = kernel.stats();
        let start = Instant::now();
        let handles: Vec<_> = doors
            .into_iter()
            .map(|d| {
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        d.call().unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let elapsed = start.elapsed();
        let after = kernel.stats().since(&before);
        let total = threads as u64 * iters;
        let rate = total as f64 / elapsed.as_secs_f64();
        if threads == 1 {
            single_rate = rate;
        }
        let pool_total = after.pool_hits + after.pool_misses;
        let hit_rate = if pool_total == 0 {
            0.0
        } else {
            100.0 * after.pool_hits as f64 / pool_total as f64
        };
        println!(
            "{:<8} {:>16.0} {:>12} {:>12} {:>12} {:>13.1}%",
            threads,
            rate,
            fmt_ns(elapsed.as_nanos() as f64 / total as f64),
            after.table_lock_waits,
            after.shard_lock_waits,
            hit_rate
        );
        rows.push(Json::obj([
            ("threads", Json::from(threads)),
            ("calls_per_sec", Json::from(rate)),
            (
                "ns_per_call",
                Json::from(elapsed.as_nanos() as f64 / total as f64),
            ),
            ("table_lock_waits", Json::from(after.table_lock_waits)),
            ("shard_lock_waits", Json::from(after.shard_lock_waits)),
            ("pool_hits", Json::from(after.pool_hits)),
            ("pool_misses", Json::from(after.pool_misses)),
            ("pool_hit_rate_pct", Json::from(hit_rate)),
        ]));
        last_rate = rate;
        if threads == 16 && single_rate > 0.0 {
            println!(
                "16-thread aggregate = {:.2}x the 1-thread rate ({} hardware threads available)",
                rate / single_rate,
                std::thread::available_parallelism().map_or(1, |n| n.get())
            );
        }
    }
    let scaling = if single_rate > 0.0 {
        Json::from(last_rate / single_rate)
    } else {
        Json::Null
    };
    Json::obj([
        ("experiment", Json::from("e1_threaded")),
        ("iters_per_thread", Json::from(iters)),
        (
            "hardware_threads",
            Json::from(std::thread::available_parallelism().map_or(1, |n| n.get())),
        ),
        ("rows", Json::Arr(rows)),
        ("scaling_16_vs_1", scaling),
        ("tracing", tracing_json()),
    ])
}

/// E2 — §9.3: the cost of transmitting an object (marshal + unmarshal +
/// subcontract ID) versus transmitting a bare door identifier.
pub fn e2_transmit(iters: u64) {
    header("E2: object transmission (paper §9.3)");
    let kernel = Kernel::new("e2");
    let a = ctx_on(&kernel, "a");
    let b = ctx_on(&kernel, "b");

    // Baseline: move a bare identifier back and forth.
    let raw = {
        let door = a
            .domain()
            .create_door(Arc::new(|_: &spring_kernel::CallCtx, m| Ok(m)))
            .unwrap();
        let mut held_by_a = true;
        let mut current = door;
        ns_per_iter(iters, || {
            current = if held_by_a {
                a.domain().transfer_door(current, b.domain()).unwrap()
            } else {
                b.domain().transfer_door(current, a.domain()).unwrap()
            };
            held_by_a = !held_by_a;
        })
    };

    // Full subcontract transmission of a singleton object.
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, servant()).unwrap();
    let mut slot = Some(ship_object(&KernelTransport, obj, &a, &PINGER_TYPE).unwrap());
    let mut held_by_a = true;
    let marshalled_size = {
        let mut buf = spring_buf::CommBuffer::new();
        slot.as_ref().unwrap().marshal_copy(&mut buf).unwrap();
        let msg = buf.into_message();
        // Clean up the probe copy.
        let mut rb = spring_buf::CommBuffer::from_message(msg);
        let len = rb.len();
        unmarshal_object(&a, &PINGER_TYPE, &mut rb)
            .unwrap()
            .consume()
            .unwrap();
        len
    };
    let full = ns_per_iter(iters, || {
        let obj = slot.take().unwrap();
        let to = if held_by_a { &b } else { &a };
        slot = Some(ship_object(&KernelTransport, obj, to, &PINGER_TYPE).unwrap());
        held_by_a = !held_by_a;
    });

    println!("{:<44} {:>12}", "arm", "ns/transmit");
    println!(
        "{:<44} {:>12}",
        "bare door identifier (kernel transfer)",
        fmt_ns(raw)
    );
    println!(
        "{:<44} {:>12}",
        "singleton object (marshal+unmarshal+ID)",
        fmt_ns(full)
    );
    println!(
        "subcontract machinery adds {} per transmission; marshalled form is {marshalled_size} bytes \
         (subcontract ID + type name + door slot)",
        fmt_ns(full - raw)
    );
}

/// E3 — §8.1: cluster shares one kernel door among N objects.
pub fn e3_cluster() {
    header("E3: cluster vs simplex resource usage (paper §8.1)");
    println!(
        "{:>8} {:>16} {:>16} {:>14} {:>14}",
        "objects", "simplex doors", "cluster doors", "simplex µs", "cluster µs"
    );
    for n in [1usize, 10, 100, 1000, 10000] {
        let kernel = Kernel::new("e3");
        let server = ctx_on(&kernel, "server");

        let before = kernel.stats();
        let mut simplex_objs = Vec::with_capacity(n);
        let simplex_time = time_once(|| {
            for _ in 0..n {
                simplex_objs.push(Simplex.export(&server, servant()).unwrap());
            }
        });
        let simplex_doors = kernel.stats().since(&before).doors_created;

        let before = kernel.stats();
        let cluster = ClusterServer::new(&server).unwrap();
        let mut cluster_objs = Vec::with_capacity(n);
        let cluster_time = time_once(|| {
            for _ in 0..n {
                cluster_objs.push(cluster.export(servant()).unwrap());
            }
        });
        let cluster_doors = kernel.stats().since(&before).doors_created;

        // Both remain invocable.
        ping(&simplex_objs[0]).unwrap();
        ping(&cluster_objs[0]).unwrap();

        println!(
            "{:>8} {:>16} {:>16} {:>14.1} {:>14.1}",
            n,
            simplex_doors,
            cluster_doors,
            simplex_time.as_secs_f64() * 1e6,
            cluster_time.as_secs_f64() * 1e6
        );
    }
    println!("(cluster's door count is O(1); per-object cost is an identifier + a tag)");
}

/// E4 — §8.2/§9.3: caching pays at unmarshal, wins on repeated reads; the
/// coherent arm prices invalidation callbacks + leases against the
/// incoherent cache on a read-mostly workload and measures how long a
/// write takes to become visible on another machine.
///
/// Returns the measurements as a [`Json`] record; the `report` binary
/// writes it to `BENCH_e4.json` when `--json-dir` is given.
pub fn e4_caching(quick: bool) -> Json {
    header("E4: caching vs simplex over the network (paper §8.2, §9.3)");
    println!(
        "{:>10} {:>6} {:>14} {:>14} {:>10} {:>10}",
        "latency", "reads", "simplex", "caching", "sx msgs", "ca msgs"
    );
    let latencies: &[u64] = if quick { &[0] } else { &[0, 100, 1000] };
    let read_counts: &[u32] = if quick {
        &[1, 16, 64]
    } else {
        &[1, 4, 16, 64, 256]
    };
    let mut sweep_rows = Vec::new();
    for &latency_us in latencies {
        for &k in read_counts {
            let net = Network::new(NetConfig::with_latency(Duration::from_micros(latency_us)));
            let server_node = net.add_node("server");
            let client_node = net.add_node("client");
            let server_ctx = ctx_on(server_node.kernel(), "fileserver");
            let client_ctx = ctx_on(client_node.kernel(), "client");
            let mgr_ctx = ctx_on(client_node.kernel(), "manager");
            let ns_ctx = ctx_on(client_node.kernel(), "naming");

            let ns = NameServer::new(&ns_ctx);
            let manager = file_cache_manager(&mgr_ctx);
            let mgr_names = NameClient::from_obj(
                ship_object(
                    &*net,
                    ns.root_object().unwrap(),
                    &mgr_ctx,
                    &NAMING_CONTEXT_TYPE,
                )
                .unwrap(),
            )
            .unwrap();
            mgr_names
                .bind("cache_manager", &manager.export().unwrap())
                .unwrap();
            let client_names = NameClient::from_obj(
                ship_object(
                    &*net,
                    ns.root_object().unwrap(),
                    &client_ctx,
                    &NAMING_CONTEXT_TYPE,
                )
                .unwrap(),
            )
            .unwrap();
            client_ctx.set_resolver(Arc::new(client_names));

            let fileserver = FileServer::new(&server_ctx, "cache_manager");
            fileserver.put("data", &vec![9u8; 4096]);

            // Simplex arm: unmarshal + K reads, all remote.
            let before = net.stats();
            let simplex_time = time_once(|| {
                let f = fs::File::from_obj(
                    ship_object(
                        &*net,
                        fileserver.export_file("data").unwrap(),
                        &client_ctx,
                        &fs::FILE_TYPE,
                    )
                    .unwrap(),
                )
                .unwrap();
                for _ in 0..k {
                    let _ = f.read(0, 1024).unwrap();
                }
            });
            let sx_msgs = net.stats().since(&before).messages;

            // Caching arm: expensive unmarshal (attach), then local reads.
            let before = net.stats();
            let caching_time = time_once(|| {
                let f = fs::CacheableFile::from_obj(
                    ship_object(
                        &*net,
                        fileserver.export_cacheable("data").unwrap(),
                        &client_ctx,
                        &fs::CACHEABLE_FILE_TYPE,
                    )
                    .unwrap(),
                )
                .unwrap();
                for _ in 0..k {
                    let _ = f.read(0, 1024).unwrap();
                }
            });
            let ca_msgs = net.stats().since(&before).messages;

            println!(
                "{:>8}µs {:>6} {:>14} {:>14} {:>10} {:>10}",
                latency_us,
                k,
                fmt_ns(simplex_time.as_nanos() as f64),
                fmt_ns(caching_time.as_nanos() as f64),
                sx_msgs,
                ca_msgs
            );
            sweep_rows.push(Json::obj([
                ("latency_us", Json::from(latency_us)),
                ("reads", Json::from(k as u64)),
                ("simplex_ns", Json::from(simplex_time.as_nanos() as f64)),
                ("caching_ns", Json::from(caching_time.as_nanos() as f64)),
                ("simplex_msgs", Json::from(sx_msgs)),
                ("caching_msgs", Json::from(ca_msgs)),
            ]));
        }
    }
    println!("(caching messages stay flat in K: only the first read misses)");

    let coherent = e4_coherent(quick);
    Json::obj([
        ("experiment", Json::from("e4_caching")),
        ("paper_sections", Json::from("8.2, 9.3")),
        ("sweep", Json::Arr(sweep_rows)),
        ("coherent", coherent),
        ("tracing", tracing_json()),
    ])
}

/// Builds one machine of the coherent-caching topology: a cache manager
/// plus a resolver that hands out copies of it under `cache_manager`.
fn e4_cache_machine(net: &Arc<Network>, node: &spring_net::Node, tag: &str) -> Arc<DomainCtx> {
    let client_ctx = ctx_on(node.kernel(), &format!("client-{tag}"));
    let mgr_ctx = ctx_on(node.kernel(), &format!("manager-{tag}"));
    let manager = file_cache_manager(&mgr_ctx);
    struct OneName {
        net: Arc<Network>,
        obj: SpringObj,
        ctx: Arc<DomainCtx>,
    }
    impl subcontract::Resolver for OneName {
        fn resolve(
            &self,
            name: &str,
            expected: &'static subcontract::TypeInfo,
        ) -> subcontract::Result<SpringObj> {
            if name == "cache_manager" {
                ship_object_copy(&*self.net, &self.obj, &self.ctx, expected)
            } else {
                Err(subcontract::SpringError::ResolveFailed(name.to_owned()))
            }
        }
    }
    client_ctx.set_resolver(Arc::new(OneName {
        net: net.clone(),
        obj: manager.export().unwrap(),
        ctx: client_ctx.clone(),
    }));
    client_ctx
}

/// The coherent arm of E4: read-mostly throughput against the incoherent
/// cache, and the latency for a write on one machine to become visible on
/// another.
fn e4_coherent(quick: bool) -> Json {
    let lease = Duration::from_millis(5);
    let reads: u64 = if quick { 20_000 } else { 200_000 };
    let write_every: u64 = 1_000;
    let trials: usize = if quick { 10 } else { 50 };

    // Read-mostly throughput: one writer interleaved into a stream of
    // cached reads, incoherent vs coherent attachment on the same topology.
    let throughput = |coherent: bool| -> f64 {
        let net = Network::new(NetConfig::default());
        let server_node = net.add_node("server");
        let client_node = net.add_node("client");
        let server_ctx = ctx_on(server_node.kernel(), "fileserver");
        let client_ctx = e4_cache_machine(&net, &client_node, "t");

        let fileserver = FileServer::new(&server_ctx, "cache_manager");
        fileserver.put("data", &vec![9u8; 4096]);
        let obj = if coherent {
            fileserver.export_coherent("data", lease).unwrap().0
        } else {
            fileserver.export_cacheable("data").unwrap()
        };
        let f = fs::CacheableFile::from_obj(
            ship_object(&*net, obj, &client_ctx, &fs::CACHEABLE_FILE_TYPE).unwrap(),
        )
        .unwrap();
        let _ = f.read(0, 1024).unwrap(); // warm the memo
        let elapsed = time_once(|| {
            for i in 0..reads {
                let _ = f.read(0, 1024).unwrap();
                if i % write_every == write_every - 1 {
                    f.write(0, &i.to_le_bytes()).unwrap();
                }
            }
        });
        reads as f64 / elapsed.as_secs_f64()
    };
    let incoherent_rps = throughput(false);
    let coherent_rps = throughput(true);
    let ratio = coherent_rps / incoherent_rps;

    // Invalidation propagation: write through machine A's cache, poll
    // machine B until the new contents are served. The broadcast runs
    // before the writer's reply, so this bounds the post-ack staleness
    // window (≈ one revalidating read).
    let net = Network::new(NetConfig::default());
    let server_node = net.add_node("server");
    let node_a = net.add_node("a");
    let node_b = net.add_node("b");
    let server_ctx = ctx_on(server_node.kernel(), "fileserver");
    let ctx_a = e4_cache_machine(&net, &node_a, "a");
    let ctx_b = e4_cache_machine(&net, &node_b, "b");

    let fileserver = FileServer::new(&server_ctx, "cache_manager");
    fileserver.put("data", &0u64.to_le_bytes());
    let (obj, stats) = fileserver.export_coherent("data", lease).unwrap();
    let attach = |ctx: &Arc<DomainCtx>| {
        fs::CacheableFile::from_obj(
            ship_object_copy(&*net, &obj, ctx, &fs::CACHEABLE_FILE_TYPE).unwrap(),
        )
        .unwrap()
    };
    let file_a = attach(&ctx_a);
    let file_b = attach(&ctx_b);
    let mut latencies_us = Vec::with_capacity(trials);
    for t in 1..=trials as u64 {
        let _ = file_b.read(0, 8).unwrap(); // make sure B is serving hits
        file_a.write(0, &t.to_le_bytes()).unwrap();
        let wrote = Instant::now();
        loop {
            let bytes = file_b.read(0, 8).unwrap();
            if bytes == t.to_le_bytes() {
                break;
            }
        }
        latencies_us.push(wrote.elapsed().as_nanos() as f64 / 1e3);
    }
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let mean = latencies_us.iter().sum::<f64>() / latencies_us.len() as f64;
    let p95 = latencies_us[(latencies_us.len() * 95).div_ceil(100) - 1];

    println!();
    println!(
        "coherent arm (lease {:?}, 1 write per {write_every} reads):",
        lease
    );
    println!(
        "  reads/s incoherent {incoherent_rps:>12.0}   coherent {coherent_rps:>12.0}   ratio {ratio:.3}"
    );
    println!(
        "  invalidation visible on the other machine after: min {:.1}µs  mean {mean:.1}µs  \
         p95 {p95:.1}µs  max {:.1}µs  ({trials} trials, {} broadcasts)",
        latencies_us[0],
        latencies_us[latencies_us.len() - 1],
        stats.broadcasts(),
    );

    Json::obj([
        ("lease_us", Json::from(lease.as_micros() as u64)),
        ("reads", Json::from(reads)),
        ("write_every", Json::from(write_every)),
        ("incoherent_reads_per_sec", Json::from(incoherent_rps)),
        ("coherent_reads_per_sec", Json::from(coherent_rps)),
        ("throughput_ratio", Json::from(ratio)),
        (
            "invalidation_latency_us",
            Json::obj([
                ("trials", Json::from(trials)),
                ("min", Json::from(latencies_us[0])),
                ("mean", Json::from(mean)),
                ("p95", Json::from(p95)),
                ("max", Json::from(latencies_us[latencies_us.len() - 1])),
            ]),
        ),
        ("broadcasts", Json::from(stats.broadcasts())),
    ])
}

/// E5 — §5.1.3: replicon failover deletes dead doors and keeps serving.
pub fn e5_replicon(iters: u64) {
    header("E5: replicon failover (paper §5.1.3)");
    println!(
        "{:>9} {:>14} {:>9} {:>18} {:>16}",
        "replicas", "normal", "killed", "failover call", "doors after"
    );
    for r in [1usize, 2, 3, 5] {
        let kernel = Kernel::new("e5");
        let group = ReplicaGroup::new();
        let mut ctxs = Vec::new();
        for i in 0..r {
            let ctx = ctx_on(&kernel, &format!("replica-{i}"));
            group
                .add(RepliconServer::new(&ctx, servant()).unwrap())
                .unwrap();
            ctxs.push(ctx);
        }
        let client = ctx_on(&kernel, "client");
        let obj = group.object_for(&client).unwrap();

        let normal = ns_per_iter(iters, || ping(&obj).unwrap());

        // Kill all but the last replica; the next call walks the dead ones.
        let killed = r - 1;
        for ctx in ctxs.iter().take(killed) {
            ctx.domain().crash();
        }
        let failover = time_once(|| ping(&obj).unwrap());
        let after = Replicon::live_replicas(&obj).unwrap();

        println!(
            "{:>9} {:>14} {:>9} {:>18} {:>16}",
            r,
            fmt_ns(normal),
            killed,
            fmt_ns(failover.as_nanos() as f64),
            after
        );
    }
    println!("(only the failover call pays; dead identifiers are deleted from the set)");
}

/// E6 — §8.3: reconnect latency is governed by the retry interval.
pub fn e6_reconnect() {
    header("E6: reconnectable recovery (paper §8.3)");
    println!(
        "{:>15} {:>16} {:>18}",
        "retry interval", "outage", "call recovers in"
    );
    for interval_ms in [1u64, 5, 20] {
        let kernel = Kernel::new("e6");
        let policy = RetryPolicy {
            max_attempts: 500,
            interval: Duration::from_millis(interval_ms),
            ..RetryPolicy::default()
        };

        let names = Arc::new(parking_lot::Mutex::new(std::collections::HashMap::<
            String,
            SpringObj,
        >::new()));
        // A minimal resolver over the shared map.
        struct MapResolver {
            names: Arc<parking_lot::Mutex<std::collections::HashMap<String, SpringObj>>>,
            ctx: Arc<DomainCtx>,
        }
        impl subcontract::Resolver for MapResolver {
            fn resolve(
                &self,
                name: &str,
                expected: &'static subcontract::TypeInfo,
            ) -> subcontract::Result<SpringObj> {
                let guard = self.names.lock();
                let obj = guard
                    .get(name)
                    .ok_or_else(|| subcontract::SpringError::ResolveFailed(name.to_owned()))?;
                ship_object_copy(&KernelTransport, obj, &self.ctx, expected)
            }
        }

        let gen1 = ctx_on(&kernel, "gen1");
        gen1.register_subcontract(Reconnectable::with_policy(policy));
        let obj = Reconnectable::export(&gen1, servant(), "svc").unwrap();
        names.lock().insert("svc".into(), obj.copy().unwrap());

        let client = ctx_on(&kernel, "client");
        client.register_subcontract(Reconnectable::with_policy(policy));
        let client_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        client.set_resolver(Arc::new(MapResolver {
            names: names.clone(),
            ctx: client.clone(),
        }));
        ping(&client_obj).unwrap();

        // Crash, then restart after a fixed 10 ms outage from a helper
        // thread while the client's call retries.
        gen1.domain().crash();
        names.lock().remove("svc");
        let outage = Duration::from_millis(10);
        let kernel2 = kernel.clone();
        let names2 = names.clone();
        let restarter = std::thread::spawn(move || {
            std::thread::sleep(outage);
            let gen2 = ctx_on(&kernel2, "gen2");
            gen2.register_subcontract(Reconnectable::with_policy(policy));
            let fresh = Reconnectable::export(&gen2, servant(), "svc").unwrap();
            names2.lock().insert("svc".into(), fresh);
        });
        let recover = time_once(|| ping(&client_obj).unwrap());
        restarter.join().unwrap();

        println!(
            "{:>13}ms {:>16} {:>18}",
            interval_ms,
            "10 ms",
            fmt_ns(recover.as_nanos() as f64)
        );
    }
    println!("(recovery ≈ outage, quantized by the retry interval)");
}

/// E7 — §5.1.5: `marshal_copy` optimizes out the intermediate copy.
pub fn e7_marshal_copy(iters: u64) {
    header("E7: marshal_copy vs copy-then-marshal (paper §5.1.5)");
    println!(
        "{:>22} {:>18} {:>18}",
        "subcontract", "copy+marshal", "marshal_copy"
    );

    // Singleton.
    let kernel = Kernel::new("e7");
    let server = ctx_on(&kernel, "server");
    let obj = Singleton.export(&server, servant()).unwrap();
    let naive = ns_per_iter(iters, || {
        let copy = obj.copy().unwrap();
        let mut buf = spring_buf::CommBuffer::new();
        copy.marshal(&mut buf).unwrap();
        cleanup(&server, buf);
    });
    let optimized = ns_per_iter(iters, || {
        let mut buf = spring_buf::CommBuffer::new();
        obj.marshal_copy(&mut buf).unwrap();
        cleanup(&server, buf);
    });
    println!(
        "{:>22} {:>18} {:>18}",
        "singleton",
        fmt_ns(naive),
        fmt_ns(optimized)
    );

    // Replicon with three replicas.
    let group = ReplicaGroup::new();
    for i in 0..3 {
        let ctx = ctx_on(&kernel, &format!("r{i}"));
        group
            .add(RepliconServer::new(&ctx, servant()).unwrap())
            .unwrap();
    }
    let robj = group.object_for(&server).unwrap();
    let naive = ns_per_iter(iters, || {
        let copy = robj.copy().unwrap();
        let mut buf = spring_buf::CommBuffer::new();
        copy.marshal(&mut buf).unwrap();
        cleanup(&server, buf);
    });
    let optimized = ns_per_iter(iters, || {
        let mut buf = spring_buf::CommBuffer::new();
        robj.marshal_copy(&mut buf).unwrap();
        cleanup(&server, buf);
    });
    println!(
        "{:>22} {:>18} {:>18}",
        "replicon (3 doors)",
        fmt_ns(naive),
        fmt_ns(optimized)
    );
}

/// Deletes the identifiers a probe marshal produced, so loops do not leak.
fn cleanup(ctx: &Arc<DomainCtx>, buf: spring_buf::CommBuffer) {
    let msg = buf.into_message();
    for d in msg.doors {
        let _ = ctx.domain().delete_door(d);
    }
}

/// E8 — §5.1.4: shared memory skips the kernel's payload copy.
pub fn e8_shmem(iters: u64) {
    header("E8: shmem vs simplex payload transport (paper §5.1.4)");
    println!(
        "{:>10} {:>14} {:>14} {:>16} {:>16}",
        "payload", "simplex", "shmem", "sx copied", "shm copied"
    );
    for size in [64usize, 1024, 16 * 1024, 64 * 1024, 256 * 1024] {
        let kernel = Kernel::new("e8");
        let server = ctx_on(&kernel, "server");
        let client = ctx_on(&kernel, "client");
        let payload = vec![0xAAu8; size];

        let obj = Simplex.export(&server, servant()).unwrap();
        let sx = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        let before = kernel.stats();
        let sx_ns = ns_per_iter(iters, || {
            let _ = echo(&sx, &payload).unwrap();
        });
        let sx_copied = kernel.stats().since(&before).bytes_copied / (iters + (iters / 10).max(1));

        let obj = Shmem::export(&server, servant(), size + 4096).unwrap();
        let sh = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
        let before = kernel.stats();
        let sh_ns = ns_per_iter(iters, || {
            let _ = echo(&sh, &payload).unwrap();
        });
        let sh_copied = kernel.stats().since(&before).bytes_copied / (iters + (iters / 10).max(1));

        println!(
            "{:>10} {:>14} {:>14} {:>16} {:>16}",
            size,
            fmt_ns(sx_ns),
            fmt_ns(sh_ns),
            sx_copied,
            sh_copied
        );
    }
    println!("(request payloads cross in shared memory; replies use the ordinary path)");
}

/// E9 — §6.2: the dynamic-discovery cost is paid exactly once.
pub fn e9_discovery(iters: u64) {
    header("E9: dynamic subcontract discovery (paper §6.2)");
    let kernel = Kernel::new("e9");
    let server = ctx_on(&kernel, "server");
    let obj = Simplex.export(&server, servant()).unwrap();

    let store = LibraryStore::new();
    store.install("standard.so", "/usr/lib/subcontracts", standard_library());

    // Cold: a freshly "linked" program that only knows singleton; every
    // iteration pays registry miss + naming lookup + dynamic link.
    let cold = ns_per_iter(iters.min(2000), || {
        let fresh = DomainCtx::new(kernel.create_domain("fresh"));
        fresh.register_subcontract(Singleton::new());
        fresh.types().register(&PINGER_TYPE);
        let names = MapLibraryNames::new();
        names.bind(Simplex::ID, "standard.so");
        fresh.configure_loader(store.clone(), vec!["/usr/lib/subcontracts".into()]);
        fresh.set_library_names(names);
        let copy = ship_object_copy(&KernelTransport, &obj, &fresh, &PINGER_TYPE).unwrap();
        copy.consume().unwrap();
    });

    // Warm: the same flow with the subcontract already registered.
    let warm_ctx = ctx_on(&kernel, "warm");
    let warm = ns_per_iter(iters, || {
        let copy = ship_object_copy(&KernelTransport, &obj, &warm_ctx, &PINGER_TYPE).unwrap();
        copy.consume().unwrap();
    });

    println!("{:<50} {:>12}", "arm", "ns/unmarshal");
    println!(
        "{:<50} {:>12}",
        "cold (registry miss + naming + dynamic link)",
        fmt_ns(cold)
    );
    println!("{:<50} {:>12}", "warm (registry hit)", fmt_ns(warm));
    println!("(after the first load the library is registered; see compat tests)");
}

/// E11 — §6.1: the compatible-subcontract re-dispatch is cheap.
pub fn e11_compat(iters: u64) {
    header("E11: compatible-subcontract re-dispatch (paper §6.1)");
    let kernel = Kernel::new("e11");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    // PINGER_TYPE defaults to singleton; a singleton object matches the
    // expected subcontract, a simplex object triggers the re-dispatch.
    let matching = Singleton.export(&server, servant()).unwrap();
    let foreign = Simplex.export(&server, servant()).unwrap();

    let match_ns = ns_per_iter(iters, || {
        let copy = ship_object_copy(&KernelTransport, &matching, &client, &PINGER_TYPE).unwrap();
        copy.consume().unwrap();
    });
    let foreign_ns = ns_per_iter(iters, || {
        let copy = ship_object_copy(&KernelTransport, &foreign, &client, &PINGER_TYPE).unwrap();
        copy.consume().unwrap();
    });

    println!("{:<44} {:>12}", "arm", "ns/unmarshal");
    println!(
        "{:<44} {:>12}",
        "expected subcontract (singleton)",
        fmt_ns(match_ns)
    );
    println!(
        "{:<44} {:>12}",
        "foreign subcontract (simplex, re-dispatch)",
        fmt_ns(foreign_ns)
    );
    println!("re-dispatch overhead: {}", fmt_ns(foreign_ns - match_ns));
}

/// E12 — §5.2.1: the same-address-space fast path.
pub fn e12_local(iters: u64) {
    header("E12: same-address-space fast path (paper §5.2.1)");
    let kernel = Kernel::new("e12");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");

    let before = kernel.stats();
    let local = Simplex::export_local(&server, servant()).unwrap();
    let local_doors = kernel.stats().since(&before).doors_created;
    let local_ns = ns_per_iter(iters, || ping(&local).unwrap());

    let before = kernel.stats();
    let remote_obj = Simplex.export(&server, servant()).unwrap();
    let remote = ship_object(&KernelTransport, remote_obj, &client, &PINGER_TYPE).unwrap();
    let remote_doors = kernel.stats().since(&before).doors_created;
    let remote_ns = ns_per_iter(iters, || ping(&remote).unwrap());

    println!("{:<34} {:>12} {:>14}", "arm", "ns/call", "doors created");
    println!(
        "{:<34} {:>12} {:>14}",
        "local fast path",
        fmt_ns(local_ns),
        local_doors
    );
    println!(
        "{:<34} {:>12} {:>14}",
        "cross-domain simplex",
        fmt_ns(remote_ns),
        remote_doors
    );

    // The lazy door appears only when the object is first marshalled.
    let before = kernel.stats();
    let moved = ship_object(&KernelTransport, local, &client, &PINGER_TYPE).unwrap();
    println!(
        "first marshal of the local object created {} door(s); it still works remotely: {:?}",
        kernel.stats().since(&before).doors_created,
        ping(&moved).is_ok()
    );
}

/// The caching subcontract's unmarshal overhead in isolation (§9.3's
/// "significant overhead to object unmarshalling"), complementing E4.
pub fn e4b_unmarshal_overhead(iters: u64) {
    header("E4b: unmarshal cost by subcontract (paper §9.3)");
    let kernel = Kernel::new("e4b");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    let mgr_ctx = ctx_on(&kernel, "manager");

    // Machine-local resolver for the caching arm.
    let manager = spring_subcontracts::CacheManager::new(&mgr_ctx, [crate::fixtures::OP_PING]);
    let mgr_obj = manager.export().unwrap();
    struct OneName {
        obj: SpringObj,
        ctx: Arc<DomainCtx>,
    }
    impl subcontract::Resolver for OneName {
        fn resolve(
            &self,
            name: &str,
            expected: &'static subcontract::TypeInfo,
        ) -> subcontract::Result<SpringObj> {
            if name == "cache_manager" {
                ship_object_copy(&KernelTransport, &self.obj, &self.ctx, expected)
            } else {
                Err(subcontract::SpringError::ResolveFailed(name.to_owned()))
            }
        }
    }
    client.set_resolver(Arc::new(OneName {
        obj: mgr_obj,
        ctx: client.clone(),
    }));

    let singleton = Singleton.export(&server, servant()).unwrap();
    let caching = Caching::export(&server, servant(), "cache_manager").unwrap();
    let cluster_server = ClusterServer::new(&server).unwrap();
    let cluster = cluster_server.export(servant()).unwrap();

    for (name, obj) in [
        ("singleton", &singleton),
        ("cluster", &cluster),
        ("caching (attaches to manager)", &caching),
    ] {
        let ns = ns_per_iter(iters.min(5000), || {
            let copy = ship_object_copy(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
            copy.consume().unwrap();
        });
        println!("{:<34} {:>12}", name, fmt_ns(ns));
    }
    let _ = Cluster::ID;
}

/// E13 (extension, §8.4 video direction) — frame delivery vs request/reply
/// for media payloads, and behaviour under loss.
pub fn e13_stream(iters: u64) {
    header("E13: stream frames vs request/reply (paper §8.4, extension)");
    let kernel = Kernel::new("e13");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    server.register_subcontract(Stream::new());
    client.register_subcontract(Stream::new());

    let frame = vec![0u8; 8 * 1024];

    let obj = Simplex.export(&server, servant()).unwrap();
    let simplex_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    let rr = ns_per_iter(iters, || {
        let _ = echo(&simplex_obj, &frame).unwrap();
    });

    let (obj, _stats) =
        Stream::export(&server, servant(), Arc::new(|_: u64, _: &[u8]| {})).unwrap();
    let stream_obj = ship_object(&KernelTransport, obj, &client, &PINGER_TYPE).unwrap();
    let fr = ns_per_iter(iters, || {
        Stream::send_frame(&stream_obj, &frame).unwrap();
    });

    println!("{:<42} {:>12}", "arm (8 KiB frames)", "ns/frame");
    println!("{:<42} {:>12}", "request/reply echo (simplex)", fmt_ns(rr));
    println!(
        "{:<42} {:>12}",
        "fire-and-forget frame (stream)",
        fmt_ns(fr)
    );

    // Loss behaviour over the network: frames drop, calls error.
    let net = spring_net::Network::new(spring_net::NetConfig {
        drop_prob: 0.25,
        ..Default::default()
    });
    net.reseed(11);
    let a = net.add_node("cam");
    let b = net.add_node("tv");
    let cam = ctx_on(a.kernel(), "cam");
    let tv = ctx_on(b.kernel(), "tv");
    cam.register_subcontract(Stream::new());
    tv.register_subcontract(Stream::new());
    let (obj, stats) = Stream::export(&tv, servant(), Arc::new(|_: u64, _: &[u8]| {})).unwrap();
    let remote = ship_object(&*net, obj, &cam, &PINGER_TYPE).unwrap();
    let total = 400u64;
    let mut dropped = 0u64;
    for _ in 0..total {
        if Stream::send_frame(&remote, &frame).unwrap() == FrameOutcome::Dropped {
            dropped += 1;
        }
    }
    println!(
        "over a 25%-loss link: {total} frames sent, {dropped} reported dropped, \
         {} rendered, {} gaps tolerated — zero errors",
        stats.received(),
        stats.missing()
    );
}

/// E14 — pipelined invocation plus per-link batching: N overlapping calls
/// share wire frames, so a latency-bound burst approaches one round trip
/// instead of N.
///
/// Two arms: a 1 ms-latency link (the latency-bound regime, where the
/// speedup should approach the burst size) and a zero-latency link (the
/// overhead-bound regime, where pipelining must at least not lose). The
/// network counters report how many calls actually shared frames.
pub fn e14_pipeline(smoke: bool) -> Json {
    header("E14: pipelined invocation + per-link batching (paper §8.4 spirit)");
    const CALLS: usize = 8;
    let rounds = if smoke { 3 } else { 10 };

    let run_arm = |latency: Duration| -> (f64, f64, spring_net::NetStatsSnapshot) {
        let net = Network::new(NetConfig::with_latency(latency));
        let server_node = net.add_node("e14-server");
        let client_node = net.add_node("e14-client");
        let server_ctx = ctx_on(server_node.kernel(), "server");
        let client_ctx = ctx_on(client_node.kernel(), "client");
        let obj = Pipeline::export(&server_ctx, servant()).unwrap();
        let client_obj = ship_object(&*net, obj, &client_ctx, &PINGER_TYPE).unwrap();

        // Warm up both paths: fabricate the proxy, spawn the worker pool,
        // prime the buffer and slot pools.
        ping(&client_obj).unwrap();
        let warm: Vec<_> = (0..CALLS)
            .map(|_| ping_async(&client_obj).unwrap())
            .collect();
        for p in warm {
            ping_collect(p).unwrap();
        }

        let mut sequential_ns = 0f64;
        let mut pipelined_ns = 0f64;
        let before = net.stats();
        for _ in 0..rounds {
            let t0 = Instant::now();
            for _ in 0..CALLS {
                ping(&client_obj).unwrap();
            }
            sequential_ns += t0.elapsed().as_nanos() as f64;

            let t0 = Instant::now();
            let promises: Vec<_> = (0..CALLS)
                .map(|_| ping_async(&client_obj).unwrap())
                .collect();
            for p in promises {
                ping_collect(p).unwrap();
            }
            pipelined_ns += t0.elapsed().as_nanos() as f64;
        }
        let delta = net.stats().since(&before);
        (
            sequential_ns / rounds as f64,
            pipelined_ns / rounds as f64,
            delta,
        )
    };

    let (seq_1ms, pipe_1ms, stats_1ms) = run_arm(Duration::from_millis(1));
    let speedup = seq_1ms / pipe_1ms;
    let (seq_0, pipe_0, _) = run_arm(Duration::ZERO);
    let ratio_0 = seq_0 / pipe_0;

    println!(
        "{:<26} {:>16} {:>16} {:>10}",
        "arm", "sequential/burst", "pipelined/burst", "ratio"
    );
    println!(
        "{:<26} {:>16} {:>16} {:>9.2}x",
        format!("{CALLS} calls @ 1ms latency"),
        fmt_ns(seq_1ms),
        fmt_ns(pipe_1ms),
        speedup
    );
    println!(
        "{:<26} {:>16} {:>16} {:>9.2}x",
        format!("{CALLS} calls @ 0 latency"),
        fmt_ns(seq_0),
        fmt_ns(pipe_0),
        ratio_0
    );
    println!(
        "1ms arm ({} bursts each way): {} flushes, {} calls batched, {} unbatched",
        rounds, stats_1ms.batch_flushes, stats_1ms.calls_batched, stats_1ms.calls_unbatched
    );

    Json::obj([
        ("experiment", Json::from("e14_pipeline")),
        ("paper_sections", Json::from("8.4")),
        ("rounds", Json::from(rounds as u64)),
        ("calls_per_burst", Json::from(CALLS as u64)),
        (
            "latency_1ms",
            Json::obj([
                ("sequential_ns", Json::from(seq_1ms)),
                ("pipelined_ns", Json::from(pipe_1ms)),
                ("speedup", Json::from(speedup)),
                ("batch_flushes", Json::from(stats_1ms.batch_flushes)),
                ("calls_batched", Json::from(stats_1ms.calls_batched)),
                ("calls_unbatched", Json::from(stats_1ms.calls_unbatched)),
            ]),
        ),
        (
            "zero_latency",
            Json::obj([
                ("sequential_ns", Json::from(seq_0)),
                ("pipelined_ns", Json::from(pipe_0)),
                ("ratio", Json::from(ratio_0)),
            ]),
        ),
        ("tracing", tracing_json()),
    ])
}

/// One rate point of the E15 sweep, aggregated over its rounds.
struct E15Point {
    offered_x: f64,
    offered_per_sec: f64,
    served: u64,
    shed: u64,
    errors: u64,
    /// Representative percentiles: the round with the lowest served p99
    /// (the min-over-batches discipline — a host-load spike must hit every
    /// round of a point to skew it).
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    max_ns: u64,
    goodput_per_sec: f64,
}

/// Highest sweep multiple whose prefix all held the p99 bound — the knee.
/// A point past the first violation does not count even if it squeaks
/// under the bound: the knee is where bounded service *stops*, not the
/// last lucky sample.
fn e15_knee(points: &[E15Point], p99_bound_ns: u64) -> f64 {
    let mut knee = 0.0;
    for p in points {
        if p.p99_ns > p99_bound_ns {
            break;
        }
        knee = p.offered_x;
    }
    knee
}

/// E15 — open-loop tail latency and overload shedding (§8.4 priority).
///
/// Measures the server's closed-loop capacity, then offers open-loop
/// (coordinated-omission-safe) load at multiples of it, with and without
/// the priority subcontract's admission controller. The *knee* is the
/// highest offered rate at which the served-calls p99 (measured from each
/// call's intended start) stays under a bound. Without shedding, any rate
/// past capacity grows the backlog linearly and the p99 explodes; with
/// shedding, low-priority calls past the queue bound are rejected in
/// microseconds, the backlog stays near the bound, and served calls keep a
/// bounded tail well past capacity — the knee moves right.
pub fn e15_open_loop(smoke: bool) -> Json {
    header("E15: open-loop tail latency + overload shedding (paper §8.4)");
    // Service time is *timed occupancy* (the servant sleeps, not spins):
    // the queueing behaviour is what the experiment is about, and sleeping
    // keeps a 1-2 core CI host from turning worker preemption into
    // multi-millisecond measurement noise. The p99 bound is set well above
    // residual scheduler jitter (~1-2 ms here) and well below the backlog
    // blow-up an overloaded open-loop arm produces (tens of ms per 0.1 s of
    // overload), so the knee detects saturation, not host hiccups.
    const SERVICE_NS: u64 = 200_000;
    const WORKERS: usize = 2;
    const QUEUE_BOUND: Duration = Duration::from_millis(1);
    const SHED_BELOW: u32 = 5;
    const HIGH_PRI: u32 = 10;
    const P99_BOUND_NS: u64 = 10_000_000;
    let sweep_x: &[f64] = &[0.5, 0.8, 1.2, 1.6, 2.0];
    let rounds: usize = if smoke { 2 } else { 3 };
    let point_secs: f64 = if smoke { 0.25 } else { 0.5 };

    use spring_subcontracts::priority::{self, AdmissionConfig};
    use spring_subcontracts::Priority;

    let kernel = Kernel::new("e15");
    let server = ctx_on(&kernel, "server");
    let client = ctx_on(&kernel, "client");
    server.register_subcontract(Priority::new());
    client.register_subcontract(Priority::new());

    // Capacity: the same worker pool driving the same servant closed-loop,
    // flat out. All offered rates below are multiples of this, so the sweep
    // is machine-independent by construction.
    let cap_obj = Priority
        .export(&server, SpinServant::sleeping(SERVICE_NS))
        .unwrap();
    let cap_obj = ship_object(&KernelTransport, cap_obj, &client, &PINGER_TYPE).unwrap();
    for _ in 0..50 {
        work(&cap_obj).unwrap();
    }
    let per_thread = ((point_secs * 1e9) / SERVICE_NS as f64 / WORKERS as f64) as u64;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..WORKERS {
            s.spawn(|| {
                for _ in 0..per_thread {
                    work(&cap_obj).unwrap();
                }
            });
        }
    });
    let capacity = (per_thread * WORKERS as u64) as f64 / t0.elapsed().as_secs_f64();
    println!(
        "capacity: {capacity:.0} calls/s ({WORKERS} workers, {} service time)",
        fmt_ns(SERVICE_NS as f64)
    );

    // One arm: sweep offered rates against a (low-pri, high-pri) object
    // pair; ~25% of arrivals are high priority.
    let run_arm = |obj_low: &SpringObj, obj_high: &SpringObj, hist_key: u64| -> Vec<E15Point> {
        sweep_x
            .iter()
            .map(|&x| {
                let rate = capacity * x;
                let total = (rate * point_secs) as u64;
                let mut point = E15Point {
                    offered_x: x,
                    offered_per_sec: rate,
                    served: 0,
                    shed: 0,
                    errors: 0,
                    p50_ns: 0,
                    p99_ns: u64::MAX,
                    p999_ns: 0,
                    max_ns: 0,
                    goodput_per_sec: 0.0,
                };
                for _ in 0..rounds {
                    let report = openloop::run(
                        &OpenLoopConfig {
                            rate_per_sec: rate,
                            total_calls: total,
                            workers: WORKERS,
                            registry_hist: Some((hist_key, "e15.open_loop")),
                        },
                        |i, intended| {
                            let obj = if i % 4 == 0 { obj_high } else { obj_low };
                            // Server-side queue delay is measured from the
                            // *intended* start, same as the client latency.
                            priority::stamp_enqueue_ns(intended);
                            work(obj)
                        },
                    );
                    point.served += report.served;
                    point.shed += report.shed;
                    point.errors += report.errors;
                    let p99 = report.served_hist.p99_ns();
                    if p99 < point.p99_ns {
                        point.p99_ns = p99;
                        point.p50_ns = report.served_hist.p50_ns();
                        point.p999_ns = report.served_hist.p999_ns();
                        point.max_ns = report.served_hist.max_ns;
                        point.goodput_per_sec = report.goodput_per_sec();
                    }
                }
                point
            })
            .collect()
    };

    // No-shedding arm: plain priority export, queue grows without limit.
    let plain = Priority
        .export(&server, SpinServant::sleeping(SERVICE_NS))
        .unwrap();
    let plain_low = ship_object(&KernelTransport, plain, &client, &PINGER_TYPE).unwrap();
    let plain_high = plain_low.copy().unwrap();
    Priority::set_priority(&plain_high, HIGH_PRI).unwrap();
    let noshed = run_arm(&plain_low, &plain_high, 0xE150);

    // Shedding arm: the admission controller rejects low-priority calls
    // once the measured queue delay passes the bound.
    let (guarded, admission) = Priority::export_with_admission(
        &server,
        SpinServant::sleeping(SERVICE_NS),
        AdmissionConfig {
            queue_bound: QUEUE_BOUND,
            shed_below: SHED_BELOW,
        },
    )
    .unwrap();
    let shed_low = ship_object(&KernelTransport, guarded, &client, &PINGER_TYPE).unwrap();
    let shed_high = shed_low.copy().unwrap();
    Priority::set_priority(&shed_high, HIGH_PRI).unwrap();
    let shed = run_arm(&shed_low, &shed_high, 0xE151);

    println!(
        "{:<8} {:>9} {:>9} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "arm", "offered×", "served", "shed", "p50", "p99", "p999", "max"
    );
    for (name, points) in [("no_shed", &noshed), ("shed", &shed)] {
        for p in points.iter() {
            println!(
                "{:<8} {:>9.1} {:>9} {:>8} {:>11} {:>11} {:>11} {:>11}",
                name,
                p.offered_x,
                p.served,
                p.shed,
                fmt_ns(p.p50_ns as f64),
                fmt_ns(p.p99_ns as f64),
                fmt_ns(p.p999_ns as f64),
                fmt_ns(p.max_ns as f64),
            );
        }
    }

    let knee_noshed = e15_knee(&noshed, P99_BOUND_NS);
    let knee_shed = e15_knee(&shed, P99_BOUND_NS);
    // A knee of zero means the very first point blew the bound; floor it at
    // half the first sweep step so the ratio stays finite.
    let knee_ratio = knee_shed / knee_noshed.max(sweep_x[0] / 2.0);
    let top_noshed = noshed.last().unwrap();
    let top_shed = shed.last().unwrap();
    let overload_p99_ratio = top_shed.p99_ns as f64 / (top_noshed.p99_ns as f64).max(1.0);
    println!(
        "knee (p99 ≤ {}): no_shed {knee_noshed:.1}x capacity, shed {knee_shed:.1}x → ratio {knee_ratio:.2}",
        fmt_ns(P99_BOUND_NS as f64)
    );
    println!(
        "at {:.1}x capacity: served p99 {} (shed) vs {} (no shed); admission admitted {} / shed {} (max queue {})",
        top_shed.offered_x,
        fmt_ns(top_shed.p99_ns as f64),
        fmt_ns(top_noshed.p99_ns as f64),
        admission.admitted(),
        admission.shed(),
        fmt_ns(admission.max_queue_ns() as f64),
    );

    let point_json = |p: &E15Point| {
        Json::obj([
            ("offered_x", Json::from(p.offered_x)),
            ("offered_per_sec", Json::from(p.offered_per_sec)),
            ("served", Json::from(p.served)),
            ("shed", Json::from(p.shed)),
            ("errors", Json::from(p.errors)),
            ("p50_ns", Json::from(p.p50_ns)),
            ("p99_ns", Json::from(p.p99_ns)),
            ("p999_ns", Json::from(p.p999_ns)),
            ("max_ns", Json::from(p.max_ns)),
            ("goodput_per_sec", Json::from(p.goodput_per_sec)),
        ])
    };
    let arm_json = |name: &str, points: &[E15Point], knee_x: f64| {
        Json::obj([
            ("name", Json::from(name)),
            ("knee_x", Json::from(knee_x)),
            ("knee_per_sec", Json::from(knee_x * capacity)),
            ("points", Json::Arr(points.iter().map(point_json).collect())),
        ])
    };
    Json::obj([
        ("experiment", Json::from("e15_open_loop")),
        ("paper_sections", Json::from("8.4")),
        ("service_ns", Json::from(SERVICE_NS)),
        ("workers", Json::from(WORKERS)),
        ("rounds", Json::from(rounds as u64)),
        ("point_secs", Json::from(point_secs)),
        ("capacity_per_sec", Json::from(capacity)),
        ("p99_bound_ns", Json::from(P99_BOUND_NS)),
        ("queue_bound_ns", Json::from(QUEUE_BOUND.as_nanos() as u64)),
        ("shed_below", Json::from(SHED_BELOW as u64)),
        ("high_priority", Json::from(HIGH_PRI as u64)),
        (
            "arms",
            Json::Arr(vec![
                arm_json("no_shed", &noshed, knee_noshed),
                arm_json("shed", &shed, knee_shed),
            ]),
        ),
        ("knee_ratio_shed_over_noshed", Json::from(knee_ratio)),
        (
            "overload_p99_ratio_shed_over_noshed",
            Json::from(overload_p99_ratio),
        ),
        (
            "admission",
            Json::obj([
                ("admitted", Json::from(admission.admitted())),
                ("shed", Json::from(admission.shed())),
                ("max_queue_ns", Json::from(admission.max_queue_ns())),
            ]),
        ),
        ("tracing", tracing_json()),
    ])
}

/// One E16 arm's measurements.
struct E16Arm {
    name: &'static str,
    null_ns: f64,
    burst_per_s: f64,
}

/// Measures one transport arm of E16 against an echo door: sequential
/// null-call latency (fastest batch) and a pipelined burst where
/// concurrent callers share the link batcher.
fn e16_measure(
    name: &'static str,
    rounds: u32,
    iters: u64,
    burst_threads: u64,
    burst_calls: u64,
    domain: &spring_kernel::Domain,
    door: spring_kernel::DoorId,
) -> E16Arm {
    use spring_kernel::Message;
    let null_ns = ns_per_iter_min(rounds, iters, || {
        let r = domain.call(door, Message::from_bytes(vec![0])).unwrap();
        assert_eq!(r.bytes, [0]);
    });
    let elapsed = time_once(|| {
        std::thread::scope(|s| {
            for _ in 0..burst_threads {
                let d = domain.clone();
                let td = domain.copy_door(door).unwrap();
                s.spawn(move || {
                    for _ in 0..burst_calls {
                        d.call(td, Message::from_bytes(vec![0])).unwrap();
                    }
                    d.delete_door(td).unwrap();
                });
            }
        });
    });
    let burst_per_s = (burst_threads * burst_calls) as f64 / elapsed.as_secs_f64();
    E16Arm {
        name,
        null_ns,
        burst_per_s,
    }
}

/// Spawns `peer serve` (built alongside this binary) and waits for its
/// READY line, which carries the bound address.
fn e16_spawn_peer(
    exe: &std::path::Path,
    node: u64,
    transport: &[&str],
) -> (std::process::Child, String) {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(exe)
        .arg("serve")
        .args(["--node", &node.to_string()])
        .args(transport)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn peer serve");
    let stdout = child.stdout.take().expect("peer stdout");
    let ready = std::io::BufReader::new(stdout)
        .lines()
        .next()
        .expect("peer exited before READY")
        .expect("read READY line");
    let addr = ready
        .strip_prefix("READY ")
        .unwrap_or_else(|| panic!("unexpected peer output: {ready}"))
        .to_owned();
    (child, addr)
}

/// E16 — the socket transport: door calls between real OS processes over
/// Unix-domain and TCP sockets, against the in-process simulated backend
/// (DESIGN.md §5.15). The serving side is a second process running the
/// `peer` binary; the figures CI gates on are ratios within this one run.
pub fn e16_socket(smoke: bool) -> Json {
    use spring_kernel::{CallCtx, Message};
    header("E16: socket transport — doors between OS processes (DESIGN.md §5.15)");
    let rounds = if smoke { 3 } else { 5 };
    let iters: u64 = if smoke { 300 } else { 5_000 };
    let burst_threads: u64 = 8;
    let burst_calls: u64 = if smoke { 100 } else { 1_000 };

    // Simulated arm: two nodes of one in-process network, echo proxy door.
    let sim = {
        let net = Network::new(NetConfig::default());
        let a = net.add_node("a");
        let b = net.add_node("b");
        let server = b.kernel().create_domain("server");
        let client = a.kernel().create_domain("client");
        let door = server
            .create_door(Arc::new(|_: &CallCtx, msg: Message| Ok(msg)))
            .unwrap();
        let arrived = net
            .ship_message(
                &server,
                &client,
                Message {
                    doors: vec![door],
                    ..Message::default()
                },
            )
            .unwrap();
        e16_measure(
            "sim",
            rounds,
            iters,
            burst_threads,
            burst_calls,
            &client,
            arrived.doors[0],
        )
    };

    // Socket arms need the `peer` binary next to this one.
    let peer_exe = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("peer")))
        .filter(|p| p.exists());
    let mut socket_arms = Vec::new();
    if let Some(exe) = &peer_exe {
        let uds_path = std::env::temp_dir()
            .join(format!("spring-e16-{}.sock", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&uds_path);
        for (name, node, transport) in [
            ("uds", 150u64, vec!["--uds", uds_path.as_str()]),
            ("tcp", 152u64, vec!["--tcp", "127.0.0.1:0"]),
        ] {
            let (mut child, addr) = e16_spawn_peer(exe, node, &transport);
            let net = Network::new(NetConfig::default());
            let n = net.add_node_with_id(format!("e16-{name}-client"), node + 1);
            let domain = n.kernel().create_domain("app");
            let peer = if name == "uds" {
                net.connect_uds(n.id(), &addr)
            } else {
                net.connect_tcp(n.id(), &addr)
            }
            .expect("connect to peer");
            let door = peer.bootstrap_door(&domain).expect("bootstrap door");
            socket_arms.push(e16_measure(
                name,
                rounds,
                iters,
                burst_threads,
                burst_calls,
                &domain,
                door,
            ));
            let _ = child.kill();
            let _ = child.wait();
        }
        let _ = std::fs::remove_file(&uds_path);
    } else {
        println!(
            "socket arms SKIPPED: peer binary not found next to this one \
             (build with `cargo build --release -p spring-bench --bins`)"
        );
    }

    println!(
        "{:<10} {:>14} {:>18}",
        "arm", "null ns/call", "burst calls/s"
    );
    let all: Vec<&E16Arm> = std::iter::once(&sim).chain(socket_arms.iter()).collect();
    for arm in &all {
        println!(
            "{:<10} {:>14} {:>18.0}",
            arm.name,
            fmt_ns(arm.null_ns),
            arm.burst_per_s
        );
    }
    let uds_ratio = socket_arms
        .iter()
        .find(|a| a.name == "uds")
        .map(|a| a.null_ns / sim.null_ns);
    if let Some(r) = uds_ratio {
        println!("uds null-call vs simulated backend: {r:.1}x");
    }

    let arm_json = |a: &E16Arm| {
        Json::obj([
            ("name", Json::from(a.name)),
            ("null_ns", Json::from(a.null_ns)),
            ("burst_calls_per_s", Json::from(a.burst_per_s)),
        ])
    };
    let mut fields = vec![
        ("experiment", Json::from("e16_socket")),
        ("design_section", Json::from("5.15")),
        ("iters", Json::from(iters)),
        ("burst_threads", Json::from(burst_threads)),
        ("burst_calls_per_thread", Json::from(burst_calls)),
        ("arms", Json::Arr(all.iter().map(|a| arm_json(a)).collect())),
    ];
    if let Some(r) = uds_ratio {
        fields.push(("uds_vs_sim_null_ratio", Json::from(r)));
    }
    fields.push(("tracing", tracing_json()));
    Json::obj(fields)
}
