//! Core-crate tests that need a live kernel: transports, context plumbing,
//! and the discovery error ladder.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{DoorError, Kernel, Message};
use subcontract::{
    DomainCtx, KernelTransport, LibraryStore, MapLibraryNames, ScId, SpringError, Transport,
};

#[test]
fn kernel_transport_moves_identifiers() {
    let kernel = Kernel::new("t");
    let a = kernel.create_domain("a");
    let b = kernel.create_domain("b");
    let door = a
        .create_door(Arc::new(|_: &spring_kernel::CallCtx, m| Ok(m)))
        .unwrap();

    let t = KernelTransport;
    let moved = t
        .ship(
            &a,
            &b,
            Message {
                bytes: vec![1, 2],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    assert_eq!(moved.bytes, vec![1, 2]);
    assert_eq!(moved.doors[0].owner(), b.id());
    assert!(!a.door_is_valid(door));
    assert!(b.door_is_valid(moved.doors[0]));
}

#[test]
fn kernel_transport_refuses_cross_machine() {
    let k1 = Kernel::new("one");
    let k2 = Kernel::new("two");
    let a = k1.create_domain("a");
    let b = k2.create_domain("b");
    let t = KernelTransport;
    match t.ship(&a, &b, Message::new()).unwrap_err() {
        DoorError::Comm(why) => assert!(why.contains("network")),
        other => panic!("expected comm error, got {other:?}"),
    }
}

#[test]
fn lookup_error_ladder() {
    // No naming context configured at all.
    let kernel = Kernel::new("t");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let ghost = ScId::from_name("ghost");
    assert_eq!(
        ctx.lookup_subcontract(ghost).err().unwrap(),
        SpringError::UnknownSubcontract(ghost)
    );

    // Naming context configured, but it does not know the id.
    ctx.set_library_names(MapLibraryNames::new());
    ctx.configure_loader(LibraryStore::new(), vec!["/lib".into()]);
    assert_eq!(
        ctx.lookup_subcontract(ghost).err().unwrap(),
        SpringError::UnknownLibrary(ghost)
    );

    // Naming context maps it, but the library is not installed.
    let names = MapLibraryNames::new();
    names.bind(ghost, "ghost.so");
    ctx.set_library_names(names);
    assert_eq!(
        ctx.lookup_subcontract(ghost).err().unwrap(),
        SpringError::ResolveFailed("ghost.so".into())
    );
}

#[test]
fn loaded_library_that_lacks_the_id_still_errors() {
    // A mapped, trusted library that does not actually provide the wanted
    // subcontract leaves the registry miss in place.
    let kernel = Kernel::new("t");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let wanted = ScId::from_name("wanted");
    let store = LibraryStore::new();
    store.install("empty.so", "/lib", Arc::new(Vec::new));
    let names = MapLibraryNames::new();
    names.bind(wanted, "empty.so");
    ctx.configure_loader(store, vec!["/lib".into()]);
    ctx.set_library_names(names);
    assert_eq!(
        ctx.lookup_subcontract(wanted).err().unwrap(),
        SpringError::UnknownSubcontract(wanted)
    );
}

#[test]
fn resolver_unconfigured_is_a_clean_error() {
    let kernel = Kernel::new("t");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    assert!(matches!(
        ctx.resolver().err().unwrap(),
        SpringError::Unsupported(_)
    ));
}

#[test]
fn search_path_can_be_changed_at_runtime() {
    let kernel = Kernel::new("t");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let id = ScId::from_name("thing");
    let store = LibraryStore::new();
    store.install("thing.so", "/opt/untrusted", Arc::new(Vec::new));
    let names = MapLibraryNames::new();
    names.bind(id, "thing.so");
    ctx.configure_loader(store, vec!["/lib".into()]);
    ctx.set_library_names(names);

    assert!(matches!(
        ctx.lookup_subcontract(id).err().unwrap(),
        SpringError::UntrustedLibrary { .. }
    ));

    // The administrator blesses the directory; the load now proceeds (and
    // fails later only because the library is empty).
    ctx.configure_loader(
        {
            let store = LibraryStore::new();
            store.install("thing.so", "/opt/untrusted", Arc::new(Vec::new));
            store
        },
        vec!["/opt/untrusted".into()],
    );
    assert_eq!(
        ctx.lookup_subcontract(id).err().unwrap(),
        SpringError::UnknownSubcontract(id)
    );
}

#[test]
fn obj_header_survives_ignorant_intermediaries() {
    // The wire type name written by put_obj_header comes back intact even
    // when the reader's registry is empty.
    let kernel = Kernel::new("t");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let mut buf = CommBuffer::new();
    subcontract::put_obj_header(&mut buf, ScId::from_name("x"), "exotic::type");
    let (id, name, info) =
        subcontract::get_obj_header(&ctx, &subcontract::OBJECT_TYPE, &mut buf).unwrap();
    assert_eq!(id, ScId::from_name("x"));
    assert_eq!(name, "exotic::type");
    assert_eq!(info.name, "object");
}
