//! A from-scratch mock subcontract, exercising the `Subcontract` trait
//! contract itself: default-method behaviour, drop-consume routing, call
//! sequencing (`invoke_preamble` before the op number), and the
//! `server_dispatch` failure ladder.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::Kernel;
use subcontract::{
    encode_ok, get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch,
    DomainCtx, ObjParts, Repr, Result, ScId, ServerCtx, SpringError, SpringObj, Subcontract,
    TypeInfo, OBJECT_TYPE,
};

static VALUE_TYPE: TypeInfo = TypeInfo {
    name: "value",
    parents: &[&OBJECT_TYPE],
    default_subcontract: ScId::from_name("inproc"),
};

/// Counters observing every operation the machinery performs.
#[derive(Debug, Default)]
struct Probes {
    preambles: AtomicU64,
    invokes: AtomicU64,
    marshals: AtomicU64,
    copies: AtomicU64,
    consumes: AtomicU64,
}

/// Representation: shared in-process state (no doors at all — subcontracts
/// get to choose their transport, §9.2).
#[derive(Debug)]
struct ValueRepr {
    state: Arc<Mutex<i64>>,
}

/// A purely in-process subcontract.
#[derive(Debug)]
struct InProc {
    probes: Arc<Probes>,
}

impl InProc {
    const ID: ScId = ScId::from_name("inproc");
}

impl Subcontract for InProc {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "inproc"
    }

    fn invoke_preamble(&self, _obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        self.probes.preambles.fetch_add(1, Ordering::Relaxed);
        // Control region: a marker byte the invoke side checks, proving the
        // preamble ran before the stubs wrote the op number.
        call.put_u8(0xCD);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        self.probes.invokes.fetch_add(1, Ordering::Relaxed);
        let repr = obj.repr().downcast::<ValueRepr>(self.name())?;
        let mut args = call;
        assert_eq!(args.get_u8()?, 0xCD, "preamble must run before the op");
        let op = args.get_u32()?;
        let mut reply = CommBuffer::new();
        match op {
            1 => {
                encode_ok(&mut reply);
                reply.put_i64(*repr.state.lock());
            }
            2 => {
                *repr.state.lock() += args.get_i64()?;
                encode_ok(&mut reply);
            }
            other => return Err(SpringError::UnknownOp(other)),
        }
        Ok(reply)
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        self.probes.marshals.fetch_add(1, Ordering::Relaxed);
        let repr = parts.repr.into_downcast::<ValueRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        // In-process marshalling: stash the state behind a token.
        buf.put_i64(*repr.state.lock());
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let value = buf.get_i64()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ValueRepr {
                state: Arc::new(Mutex::new(value)),
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        self.probes.copies.fetch_add(1, Ordering::Relaxed);
        let repr = obj.repr().downcast::<ValueRepr>(self.name())?;
        Ok(obj.assemble_like(Repr::new(ValueRepr {
            state: repr.state.clone(),
        })))
    }

    fn consume(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        self.probes.consumes.fetch_add(1, Ordering::Relaxed);
        let _ = parts.repr.into_downcast::<ValueRepr>(self.name())?;
        Ok(())
    }
}

fn setup() -> (Arc<DomainCtx>, Arc<Probes>, SpringObj) {
    let kernel = Kernel::new("mock");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let probes = Arc::new(Probes::default());
    ctx.register_subcontract(Arc::new(InProc {
        probes: probes.clone(),
    }));
    ctx.types().register(&VALUE_TYPE);
    let obj = SpringObj::assemble(
        ctx.clone(),
        &VALUE_TYPE,
        ctx.lookup_subcontract(InProc::ID).unwrap(),
        Repr::new(ValueRepr {
            state: Arc::new(Mutex::new(100)),
        }),
    );
    (ctx, probes, obj)
}

fn get(obj: &SpringObj) -> i64 {
    let call = obj.start_call(1).unwrap();
    let mut reply = obj.invoke(call).unwrap();
    subcontract::decode_reply_status(&mut reply).unwrap();
    reply.get_i64().unwrap()
}

#[test]
fn call_sequencing_preamble_then_op() {
    let (_ctx, probes, obj) = setup();
    assert_eq!(get(&obj), 100);
    assert_eq!(probes.preambles.load(Ordering::Relaxed), 1);
    assert_eq!(probes.invokes.load(Ordering::Relaxed), 1);
}

#[test]
fn default_marshal_copy_is_copy_then_marshal() {
    let (_ctx, probes, obj) = setup();
    let mut buf = CommBuffer::new();
    obj.marshal_copy(&mut buf).unwrap();
    // The trait's default implementation must have gone through copy,
    // marshal — and not consume (marshal destroys the intermediate).
    assert_eq!(probes.copies.load(Ordering::Relaxed), 1);
    assert_eq!(probes.marshals.load(Ordering::Relaxed), 1);
    assert_eq!(probes.consumes.load(Ordering::Relaxed), 0);
    // And the original still works.
    assert_eq!(get(&obj), 100);
}

#[test]
fn drop_routes_through_consume_exactly_once() {
    let (_ctx, probes, obj) = setup();
    drop(obj);
    assert_eq!(probes.consumes.load(Ordering::Relaxed), 1);
}

#[test]
fn explicit_consume_does_not_double_consume() {
    let (_ctx, probes, obj) = setup();
    obj.consume().unwrap();
    assert_eq!(probes.consumes.load(Ordering::Relaxed), 1);
}

#[test]
fn marshal_skips_consume() {
    let (ctx, probes, obj) = setup();
    let mut buf = CommBuffer::new();
    obj.marshal(&mut buf).unwrap();
    assert_eq!(probes.marshals.load(Ordering::Relaxed), 1);
    assert_eq!(probes.consumes.load(Ordering::Relaxed), 0);
    // The marshalled form round-trips in the same domain.
    let restored = subcontract::unmarshal_object(&ctx, &VALUE_TYPE, &mut buf).unwrap();
    assert_eq!(get(&restored), 100);
}

#[test]
fn copies_share_underlying_state() {
    let (_ctx, _probes, obj) = setup();
    let copy = obj.copy().unwrap();
    {
        let mut call = obj.start_call(2).unwrap();
        call.put_i64(11);
        let mut reply = obj.invoke(call).unwrap();
        subcontract::decode_reply_status(&mut reply).unwrap();
    }
    assert_eq!(get(&copy), 111);
}

#[test]
fn server_dispatch_failure_ladder() {
    // Exercise server_dispatch directly with a dispatcher that misbehaves
    // in controlled ways.
    struct Flaky;
    impl Dispatch for Flaky {
        fn type_info(&self) -> &'static TypeInfo {
            &VALUE_TYPE
        }
        fn dispatch(
            &self,
            _sctx: &ServerCtx,
            op: u32,
            _args: &mut CommBuffer,
            reply: &mut CommBuffer,
        ) -> Result<()> {
            match op {
                1 => {
                    encode_ok(reply);
                    Ok(())
                }
                // Fails before touching the reply.
                2 => Err(SpringError::Remote("early failure".into())),
                // Fails after partially writing the reply.
                3 => {
                    reply.put_u8(0);
                    Err(SpringError::Remote("late failure".into()))
                }
                other => Err(SpringError::UnknownOp(other)),
            }
        }
    }

    let kernel = Kernel::new("ladder");
    let ctx = DomainCtx::new(kernel.create_domain("d"));
    let sctx = ServerCtx {
        ctx: ctx.clone(),
        caller: ctx.domain().id(),
    };
    let run = |op: u32| {
        let mut args = CommBuffer::new();
        args.put_u32(op);
        let mut reply = CommBuffer::new();
        server_dispatch(&sctx, &Flaky, &mut args, &mut reply).map(|()| reply)
    };

    // Success passes the skeleton's reply through.
    let mut reply = run(1).unwrap();
    assert!(matches!(
        subcontract::decode_reply_status(&mut reply).unwrap(),
        subcontract::ReplyStatus::Ok
    ));

    // Clean failure becomes an in-band system error.
    let mut reply = run(2).unwrap();
    assert!(matches!(
        subcontract::decode_reply_status(&mut reply).unwrap_err(),
        SpringError::Remote(m) if m.contains("early failure")
    ));

    // A half-written reply must become a transport-level error, never a
    // corrupt in-band reply.
    assert!(run(3).is_err());

    // Unknown op is reported in-band.
    let mut reply = run(99).unwrap();
    assert!(matches!(
        subcontract::decode_reply_status(&mut reply).unwrap_err(),
        SpringError::UnknownOp(99)
    ));

    // A malformed request (no op) is reported in-band, too.
    let mut args = CommBuffer::new();
    let mut reply = CommBuffer::new();
    server_dispatch(&sctx, &Flaky, &mut args, &mut reply).unwrap();
    assert!(matches!(
        subcontract::decode_reply_status(&mut reply).unwrap_err(),
        SpringError::Remote(m) if m.contains("malformed")
    ));
}
