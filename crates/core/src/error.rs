//! The unified error type for subcontract operations.

use std::fmt;

use spring_buf::{BufError, WireError};
use spring_kernel::DoorError;

use crate::scid::ScId;

/// Convenience alias used across the subcontract machinery.
pub type Result<T> = std::result::Result<T, SpringError>;

/// Errors surfaced by subcontract operations and generated stubs.
#[derive(Clone, Debug, PartialEq)]
pub enum SpringError {
    /// A kernel door operation failed.
    Door(DoorError),
    /// Marshalling or unmarshalling failed.
    Buf(BufError),
    /// A flat (fixed-shape) frame failed its validate-then-cast check.
    Wire(WireError),
    /// No subcontract with this identifier is registered, and dynamic
    /// discovery could not locate one either.
    UnknownSubcontract(ScId),
    /// Dynamic discovery found no library name for this subcontract.
    UnknownLibrary(ScId),
    /// The named library exists but is not installed in a trusted location
    /// on the domain's search path (§6.2 security rule).
    UntrustedLibrary {
        /// The library that was refused.
        library: String,
        /// Where it was installed.
        location: String,
    },
    /// A run-time type check failed (`narrow`, or a marshalled object whose
    /// actual type does not conform to the expected type).
    TypeMismatch {
        /// The type the receiver expected.
        expected: &'static str,
        /// The actual type carried by the marshalled form.
        actual: String,
    },
    /// The server rejected an operation number (stub/skeleton mismatch).
    UnknownOp(u32),
    /// The remote end reported a system-level failure.
    Remote(String),
    /// The remote end raised a user exception this stub does not know.
    UnknownUserException(String),
    /// A subcontract was handed a representation of the wrong shape —
    /// always a programming error in subcontract composition.
    BadRepresentation(&'static str),
    /// A name could not be resolved.
    ResolveFailed(String),
    /// The operation is not supported by this subcontract.
    Unsupported(&'static str),
    /// A fault-tolerant subcontract ran out of alternatives (replicon with
    /// no live replicas, reconnectable past its retry budget).
    Exhausted(&'static str),
    /// The server's admission controller shed this call under overload
    /// (§8.4 priority subcontract). Carries the queue delay the server
    /// measured when it rejected the call, so clients can back off
    /// proportionally. Not a comm failure: retrying immediately would make
    /// the overload worse, so fault-tolerant subcontracts surface it.
    Overloaded {
        /// Queue delay the server measured at rejection, in nanoseconds.
        queue_ns: u64,
    },
}

impl SpringError {
    /// True when the failure is a communications error, which fault-tolerant
    /// subcontracts may react to by failing over or reconnecting (§5.1.3).
    pub fn is_comm_failure(&self) -> bool {
        matches!(self, SpringError::Door(e) if e.is_comm_failure())
    }
}

impl fmt::Display for SpringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpringError::Door(e) => write!(f, "door: {e}"),
            SpringError::Buf(e) => write!(f, "marshal: {e}"),
            SpringError::Wire(e) => write!(f, "flat frame: {e}"),
            SpringError::UnknownSubcontract(id) => write!(f, "unknown subcontract {id}"),
            SpringError::UnknownLibrary(id) => {
                write!(f, "no library known for subcontract {id}")
            }
            SpringError::UntrustedLibrary { library, location } => {
                write!(
                    f,
                    "library {library} at {location} is not on the trusted search path"
                )
            }
            SpringError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            SpringError::UnknownOp(op) => write!(f, "unknown operation {op:#x}"),
            SpringError::Remote(msg) => write!(f, "remote system error: {msg}"),
            SpringError::UnknownUserException(name) => {
                write!(f, "unknown user exception {name}")
            }
            SpringError::BadRepresentation(sc) => {
                write!(f, "representation does not belong to subcontract {sc}")
            }
            SpringError::ResolveFailed(name) => write!(f, "could not resolve name {name:?}"),
            SpringError::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            SpringError::Exhausted(what) => write!(f, "exhausted: {what}"),
            SpringError::Overloaded { queue_ns } => {
                write!(
                    f,
                    "server overloaded: call shed at {queue_ns} ns queue delay"
                )
            }
        }
    }
}

impl std::error::Error for SpringError {}

impl From<DoorError> for SpringError {
    fn from(e: DoorError) -> Self {
        SpringError::Door(e)
    }
}

impl From<BufError> for SpringError {
    fn from(e: BufError) -> Self {
        SpringError::Buf(e)
    }
}

impl From<WireError> for SpringError {
    fn from(e: WireError) -> Self {
        SpringError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_failure_passthrough() {
        assert!(SpringError::Door(DoorError::Revoked).is_comm_failure());
        assert!(SpringError::Door(DoorError::Comm("x".into())).is_comm_failure());
        assert!(!SpringError::Door(DoorError::InvalidDoor).is_comm_failure());
        assert!(!SpringError::Remote("x".into()).is_comm_failure());
    }

    #[test]
    fn conversions() {
        let e: SpringError = DoorError::Revoked.into();
        assert_eq!(e, SpringError::Door(DoorError::Revoked));
        let e: SpringError = BufError::InvalidUtf8.into();
        assert_eq!(e, SpringError::Buf(BufError::InvalidUtf8));
    }

    #[test]
    fn display_has_detail() {
        let e = SpringError::UntrustedLibrary {
            library: "evil.so".into(),
            location: "/tmp".into(),
        };
        let s = e.to_string();
        assert!(s.contains("evil.so") && s.contains("/tmp"));
    }
}
