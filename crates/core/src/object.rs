//! The Spring object: method table + subcontract ops vector + representation.

use std::fmt;
use std::sync::Arc;

use spring_buf::CommBuffer;

use crate::ctx::DomainCtx;
use crate::error::{Result, SpringError};
use crate::repr::Repr;
use crate::traits::{ObjParts, Subcontract};
use crate::types::TypeInfo;

struct ObjInner {
    ctx: Arc<DomainCtx>,
    /// The authoritative type name from the marshalled form. It survives
    /// transit through domains that do not know the type (where `type_info`
    /// degrades to the declared type), so a later, better-informed receiver
    /// can still narrow correctly.
    type_name: String,
    /// Best locally-known type information.
    type_info: &'static TypeInfo,
    sc: Arc<dyn Subcontract>,
    repr: Repr,
}

/// A Spring object as held by a client.
///
/// Spring presents a model where "clients are operating directly on
/// objects, rather than on object references" (§3.2): an object can only
/// exist in one place at a time, so transmitting it ([`SpringObj::marshal`])
/// consumes it, and [`SpringObj::copy`] must be used first to keep one.
/// This maps directly onto Rust move semantics — marshal takes `self`.
///
/// Generated stubs wrap a `SpringObj` and supply the method table; the
/// subcontract operations vector is the `Arc<dyn Subcontract>`; the
/// client-local private state is the [`Repr`].
///
/// Dropping an object without explicitly consuming it routes through the
/// subcontract's `consume` anyway, so servers still observe the death.
pub struct SpringObj {
    inner: Option<ObjInner>,
}

impl SpringObj {
    /// Plugs together a subcontract, type information, and representation —
    /// the final step of a server-side `export`, where the actual type is
    /// statically known.
    pub fn assemble(
        ctx: Arc<DomainCtx>,
        type_info: &'static TypeInfo,
        sc: Arc<dyn Subcontract>,
        repr: Repr,
    ) -> SpringObj {
        SpringObj {
            inner: Some(ObjInner {
                ctx,
                type_name: type_info.name.to_owned(),
                type_info,
                sc,
                repr,
            }),
        }
    }

    /// Plugs together an object from its marshalled form, preserving the
    /// wire type name even when this domain only knows the declared type
    /// (the final step of every subcontract's `unmarshal`, §5.1.2).
    pub fn assemble_from_wire(
        ctx: Arc<DomainCtx>,
        type_name: String,
        type_info: &'static TypeInfo,
        sc: Arc<dyn Subcontract>,
        repr: Repr,
    ) -> SpringObj {
        SpringObj {
            inner: Some(ObjInner {
                ctx,
                type_name,
                type_info,
                sc,
                repr,
            }),
        }
    }

    /// Builds a sibling object sharing this object's identity (context,
    /// type, subcontract) around a fresh representation — the common tail
    /// of every subcontract's `copy`.
    pub fn assemble_like(&self, repr: Repr) -> SpringObj {
        let inner = self.inner();
        SpringObj {
            inner: Some(ObjInner {
                ctx: inner.ctx.clone(),
                type_name: inner.type_name.clone(),
                type_info: inner.type_info,
                sc: inner.sc.clone(),
                repr,
            }),
        }
    }

    fn inner(&self) -> &ObjInner {
        self.inner.as_ref().expect("object already consumed")
    }

    /// The domain context the object lives in.
    pub fn ctx(&self) -> &Arc<DomainCtx> {
        &self.inner().ctx
    }

    /// The object's most-derived *locally known* type (run-time type query,
    /// §5.1.6).
    pub fn type_info(&self) -> &'static TypeInfo {
        self.inner().type_info
    }

    /// The authoritative type name carried by the marshalled form.
    pub fn type_name(&self) -> &str {
        &self.inner().type_name
    }

    /// The object's subcontract operations vector.
    pub fn subcontract(&self) -> &Arc<dyn Subcontract> {
        &self.inner().sc
    }

    /// The object's representation.
    pub fn repr(&self) -> &Repr {
        &self.inner().repr
    }

    /// Returns true when the object's type conforms to `target`, consulting
    /// both the locally known type and (if the domain has since learned it)
    /// the authoritative wire type name.
    pub fn is_a(&self, target: &TypeInfo) -> bool {
        let inner = self.inner();
        if inner.type_info.is_a(target) {
            return true;
        }
        inner
            .ctx
            .types()
            .lookup(&inner.type_name)
            .map(|ti| ti.is_a(target))
            .unwrap_or(false)
    }

    /// Narrows the object to a (usually more derived) type (§6.3), failing
    /// with [`SpringError::TypeMismatch`] when the object does not conform.
    pub fn narrow(&self, target: &'static TypeInfo) -> Result<()> {
        if self.is_a(target) {
            Ok(())
        } else {
            Err(SpringError::TypeMismatch {
                expected: target.name,
                actual: self.inner().type_name.clone(),
            })
        }
    }

    /// Begins a call: creates the call buffer and gives the subcontract its
    /// `invoke_preamble` control point, then writes the operation number.
    /// The stubs marshal arguments into the returned buffer and pass it to
    /// [`SpringObj::invoke`].
    pub fn start_call(&self, op: u32) -> Result<CommBuffer> {
        let mut buf = CommBuffer::pooled();
        let inner = self.inner();
        inner.sc.invoke_preamble(self, &mut buf)?;
        buf.put_u32(op);
        Ok(buf)
    }

    /// Executes the call through the subcontract's `invoke` operation,
    /// returning the result buffer positioned for unmarshalling results.
    ///
    /// This and the other subcontract chokepoints below each record one
    /// latency sample keyed by `(subcontract id, operation)` when tracing is
    /// enabled — the per-subcontract histograms every mechanism shares.
    pub fn invoke(&self, call: CommBuffer) -> Result<CommBuffer> {
        let inner = self.inner();
        let mut span = spring_trace::span_start(
            "invoke",
            inner.ctx.domain().trace_scope(),
            inner.sc.id().raw(),
        );
        let result = inner.sc.invoke(self, call);
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Transmits the object into `buf`, consuming it (§5.1.1).
    pub fn marshal(mut self, buf: &mut CommBuffer) -> Result<()> {
        let inner = self.inner.take().expect("object already consumed");
        let mut span = spring_trace::span_start(
            "marshal",
            inner.ctx.domain().trace_scope(),
            inner.sc.id().raw(),
        );
        let parts = ObjParts {
            type_info: inner.type_info,
            type_name: inner.type_name,
            repr: inner.repr,
        };
        let result = inner.sc.marshal(&inner.ctx, parts, buf);
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Marshals a copy of the object, leaving this object intact (§5.1.5).
    /// Records under the `"marshal"` operation (one histogram covers both
    /// marshal flavours).
    pub fn marshal_copy(&self, buf: &mut CommBuffer) -> Result<()> {
        let inner = self.inner();
        let mut span = spring_trace::span_start(
            "marshal",
            inner.ctx.domain().trace_scope(),
            inner.sc.id().raw(),
        );
        let result = inner.sc.marshal_copy(self, buf);
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Produces a second object sharing the same underlying state (§7).
    pub fn copy(&self) -> Result<SpringObj> {
        let inner = self.inner();
        let mut span = spring_trace::span_start(
            "copy",
            inner.ctx.domain().trace_scope(),
            inner.sc.id().raw(),
        );
        let result = inner.sc.copy(self);
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Deletes the object explicitly, surfacing any error (dropping the
    /// object does the same but swallows failures).
    pub fn consume(mut self) -> Result<()> {
        let inner = self.inner.take().expect("object already consumed");
        let mut span = spring_trace::span_start(
            "consume",
            inner.ctx.domain().trace_scope(),
            inner.sc.id().raw(),
        );
        let parts = ObjParts {
            type_info: inner.type_info,
            type_name: inner.type_name,
            repr: inner.repr,
        };
        let result = inner.sc.consume(&inner.ctx, parts);
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Disassembles the object without running `consume`, for subcontract
    /// implementations that need to repossess the representation (for
    /// example `marshal_copy` optimizations or object adoption).
    pub fn into_parts(mut self) -> (Arc<DomainCtx>, Arc<dyn Subcontract>, ObjParts) {
        let inner = self.inner.take().expect("object already consumed");
        (
            inner.ctx,
            inner.sc,
            ObjParts {
                type_info: inner.type_info,
                type_name: inner.type_name,
                repr: inner.repr,
            },
        )
    }
}

impl Drop for SpringObj {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            let _span = spring_trace::span_start(
                "consume",
                inner.ctx.domain().trace_scope(),
                inner.sc.id().raw(),
            );
            let parts = ObjParts {
                type_info: inner.type_info,
                type_name: inner.type_name,
                repr: inner.repr,
            };
            // Deaths must reach the server even on implicit drop, but a
            // failed consume cannot be reported from a destructor.
            let _ = inner.sc.consume(&inner.ctx, parts);
        }
    }
}

impl fmt::Debug for SpringObj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => write!(
                f,
                "SpringObj({} via {}, {:?})",
                inner.type_name,
                inner.sc.name(),
                inner.repr
            ),
            None => write!(f, "SpringObj(consumed)"),
        }
    }
}
