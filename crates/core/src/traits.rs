//! The subcontract operations vector and related service traits.

use std::sync::Arc;

use spring_buf::CommBuffer;

use crate::ctx::DomainCtx;
use crate::error::{Result, SpringError};
use crate::object::SpringObj;
use crate::repr::Repr;
use crate::scid::ScId;
use crate::server::Dispatch;
use crate::types::TypeInfo;

/// The pieces of a disassembled object, handed to consuming operations.
///
/// `marshal` and `consume` destroy the local object (§5.1.1: marshal
/// "deletes all the local state associated with the object"), so they
/// receive the object's parts rather than a borrowed handle.
pub struct ObjParts {
    /// The object's most-derived locally known type.
    pub type_info: &'static TypeInfo,
    /// The authoritative type name carried on the wire.
    pub type_name: String,
    /// The representation, owned.
    pub repr: Repr,
}

/// The client-side subcontract operations vector (§5.1).
///
/// One instance serves every object using that subcontract in a domain; all
/// per-object state lives in the object's [`Repr`]. Implementations must be
/// cheap to call — the paper counts the two indirect calls from the stubs
/// into the client subcontract as the mechanism's core overhead (§9.3).
pub trait Subcontract: Send + Sync {
    /// The identifier written into every marshalled form (§6.1).
    fn id(&self) -> ScId;

    /// Human-readable subcontract name (`"replicon"`, `"simplex"`, …).
    fn name(&self) -> &'static str;

    /// Called by the stubs before any argument marshalling has begun, so the
    /// subcontract can write control information into the buffer or redirect
    /// the buffer (for example into shared memory) to influence future
    /// marshalling (§5.1.4).
    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        let _ = (obj, call);
        Ok(())
    }

    /// Executes an object call after the stubs have marshalled all the
    /// arguments: takes the argument buffer, returns the result buffer
    /// (§5.1.3). On return the result buffer is positioned after any
    /// subcontract control information, ready for the stubs to unmarshal
    /// results.
    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer>;

    /// Transmits the object: places enough information in `buf` that an
    /// essentially identical object can be unmarshalled in another domain,
    /// then deletes all local state (§5.1.1). Conventionally the first thing
    /// written is the subcontract identifier.
    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()>;

    /// Produces the effect of a copy followed by a marshal, but may optimize
    /// out the intermediate object (§5.1.5). The default implementation is
    /// the unoptimized copy-then-marshal the paper describes replacing.
    fn marshal_copy(&self, obj: &SpringObj, buf: &mut CommBuffer) -> Result<()> {
        let copy = self.copy(obj)?;
        copy.marshal(buf)
    }

    /// Fabricates a fully fledged object from the marshalled form: reads the
    /// subcontract identifier and body from `buf` and plugs together the
    /// subcontract operations vector, type information, and a fresh
    /// representation (§5.1.2).
    ///
    /// Implementations must begin by peeking the subcontract identifier and
    /// re-dispatching through [`crate::redispatch_if_foreign`] when the
    /// buffer holds an object of a *different* subcontract (§6.1).
    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj>;

    /// Produces a second object sharing the same underlying state (§7's
    /// shallow copy). Subcontracts maintaining client/server dialogues use
    /// this control point to notify servers of births.
    fn copy(&self, obj: &SpringObj) -> Result<SpringObj>;

    /// Deletes the object (§7's `consume`): releases the representation's
    /// resources, notifying servers of deaths where the subcontract
    /// maintains a dialogue.
    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()>;
}

/// Server-side subcontract operations (§5.2).
///
/// The paper allows server-side interfaces to "vary considerably between
/// subcontracts", but three elements are typically present: creating a
/// Spring object from a language-level object, processing incoming calls
/// (done internally by door handlers the implementation installs), and
/// revoking an object.
pub trait ServerSubcontract: Send + Sync {
    /// Creates a Spring object from a language-level object (§5.2.1): sets
    /// up a communication endpoint (or a same-address-space fast path) and
    /// fabricates a client-side object whose representation uses it.
    fn export(&self, ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj>;

    /// Revokes an outstanding object (§5.2.3): clients holding the object
    /// keep their identifiers, but every future call fails.
    fn revoke(&self, obj: &SpringObj) -> Result<()> {
        let _ = obj;
        Err(SpringError::Unsupported("revoke"))
    }
}

/// Resolves names to objects.
///
/// Several subcontracts depend on a naming context: reconnectable re-resolves
/// its object name after a crash (§8.3) and caching resolves its cache
/// manager name in a machine-local context (§8.2). The name service itself
/// lives above this crate, so it is injected via this trait.
pub trait Resolver: Send + Sync {
    /// Resolves `name` to an object, at the given expected type.
    fn resolve(&self, name: &str, expected: &'static TypeInfo) -> Result<SpringObj>;
}
