//! The per-domain subcontract registry.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::scid::ScId;
use crate::traits::Subcontract;

/// Maps subcontract identifiers to subcontract implementations within one
/// domain (§6.1: "it calls into a registry to locate the correct code for
/// that subcontract").
///
/// A program is linked with a set of standard subcontracts registered at
/// startup; additional subcontracts arrive at run time through dynamic
/// discovery (§6.2), handled by [`crate::DomainCtx::lookup_subcontract`].
#[derive(Default)]
pub struct SubcontractRegistry {
    by_id: RwLock<HashMap<ScId, Arc<dyn Subcontract>>>,
}

impl SubcontractRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a subcontract under its own identifier. Re-registering the
    /// same identifier replaces the implementation (latest wins).
    pub fn register(&self, sc: Arc<dyn Subcontract>) {
        self.by_id.write().insert(sc.id(), sc);
    }

    /// Looks up a subcontract by identifier.
    pub fn get(&self, id: ScId) -> Option<Arc<dyn Subcontract>> {
        self.by_id.read().get(&id).cloned()
    }

    /// Returns true when the identifier is registered.
    pub fn contains(&self, id: ScId) -> bool {
        self.by_id.read().contains_key(&id)
    }

    /// Number of registered subcontracts.
    pub fn len(&self) -> usize {
        self.by_id.read().len()
    }

    /// Returns true when no subcontracts are registered.
    pub fn is_empty(&self) -> bool {
        self.by_id.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use spring_buf::CommBuffer;

    use super::*;
    use crate::ctx::DomainCtx;
    use crate::error::Result;
    use crate::object::SpringObj;
    use crate::traits::{ObjParts, Subcontract};
    use crate::types::TypeInfo;

    #[derive(Debug)]
    struct Named(&'static str);

    impl Subcontract for Named {
        fn id(&self) -> ScId {
            ScId::from_name(self.0)
        }
        fn name(&self) -> &'static str {
            self.0
        }
        fn invoke(&self, _: &SpringObj, _: CommBuffer) -> Result<CommBuffer> {
            unreachable!("registry test only")
        }
        fn marshal(&self, _: &Arc<DomainCtx>, _: ObjParts, _: &mut CommBuffer) -> Result<()> {
            unreachable!("registry test only")
        }
        fn unmarshal(
            &self,
            _: &Arc<DomainCtx>,
            _: &'static TypeInfo,
            _: &mut CommBuffer,
        ) -> Result<SpringObj> {
            unreachable!("registry test only")
        }
        fn copy(&self, _: &SpringObj) -> Result<SpringObj> {
            unreachable!("registry test only")
        }
        fn consume(&self, _: &Arc<DomainCtx>, _: ObjParts) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn register_lookup_and_replace() {
        let reg = SubcontractRegistry::new();
        assert!(reg.is_empty());
        reg.register(Arc::new(Named("a")));
        reg.register(Arc::new(Named("b")));
        assert_eq!(reg.len(), 2);
        assert!(reg.contains(ScId::from_name("a")));
        assert!(!reg.contains(ScId::from_name("c")));
        assert_eq!(reg.get(ScId::from_name("b")).unwrap().name(), "b");

        // Latest registration wins.
        reg.register(Arc::new(Named("a")));
        assert_eq!(reg.len(), 2);
    }
}
