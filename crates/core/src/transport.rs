//! Object transport between domains.
//!
//! Moving an object between domains means moving a marshalled message —
//! bytes plus door identifiers — and the mechanics differ by distance: on
//! one machine the kernel transfers the identifiers directly, across
//! machines the network servers map them to and from their extended network
//! form (§3.3). Infrastructure that must move objects outside of a door
//! call (the name-service bootstrap, replicon group management, test
//! harnesses) takes a [`Transport`] so the same code works in both settings.

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{Domain, DoorError, Message};

use crate::ctx::DomainCtx;
use crate::error::Result;
use crate::object::SpringObj;
use crate::types::TypeInfo;
use crate::unmarshal::unmarshal_object;

/// Moves raw messages (bytes + door identifiers) between domains.
pub trait Transport: Send + Sync {
    /// Delivers `msg` from `from`'s address space to `to`'s, transferring
    /// every door identifier it carries.
    fn ship(
        &self,
        from: &Domain,
        to: &Domain,
        msg: Message,
    ) -> std::result::Result<Message, DoorError>;
}

/// Same-machine transport: plain kernel transfers.
#[derive(Debug, Default)]
pub struct KernelTransport;

impl Transport for KernelTransport {
    fn ship(
        &self,
        from: &Domain,
        to: &Domain,
        msg: Message,
    ) -> std::result::Result<Message, DoorError> {
        if from.kernel().node_id() != to.kernel().node_id() {
            return Err(DoorError::Comm(
                "kernel transport cannot cross machines; use a network transport".into(),
            ));
        }
        let mut doors = Vec::with_capacity(msg.doors.len());
        for d in msg.doors {
            doors.push(from.transfer_door(d, to)?);
        }
        Ok(Message {
            bytes: msg.bytes,
            doors,
            trace: msg.trace,
            call: msg.call,
        })
    }
}

/// Transmits an object to another domain: marshal, ship, unmarshal.
///
/// The object is consumed (transmission moves it, §3.2). `expected` is the
/// type the receiver handles the object at; pass the object's own type to
/// preserve it when both sides know it.
pub fn ship_object(
    transport: &dyn Transport,
    obj: SpringObj,
    to: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
) -> Result<SpringObj> {
    let from = obj.ctx().domain().clone();
    let mut span = spring_trace::span_start("ship", from.trace_scope(), 0);
    let mut buf = CommBuffer::pooled();
    obj.marshal(&mut buf)?;
    let mut msg = buf.into_message();
    // Stamp the envelope so the transport's far side reattaches under this
    // span (the network transport serializes the context into its wire
    // form).
    if span.ctx().is_some() {
        msg.trace = span.ctx();
    }
    let arrived = match transport.ship(&from, to.domain(), msg) {
        Ok(m) => m,
        Err(e) => {
            span.fail();
            return Err(e.into());
        }
    };
    let mut buf = CommBuffer::from_message(arrived);
    unmarshal_object(to, expected, &mut buf)
}

/// Transmits a copy of the object, leaving the original in place.
pub fn ship_object_copy(
    transport: &dyn Transport,
    obj: &SpringObj,
    to: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
) -> Result<SpringObj> {
    let from = obj.ctx().domain().clone();
    let mut span = spring_trace::span_start("ship", from.trace_scope(), 0);
    let mut buf = CommBuffer::pooled();
    obj.marshal_copy(&mut buf)?;
    let mut msg = buf.into_message();
    if span.ctx().is_some() {
        msg.trace = span.ctx();
    }
    let arrived = match transport.ship(&from, to.domain(), msg) {
        Ok(m) => m,
        Err(e) => {
            span.fail();
            return Err(e.into());
        }
    };
    let mut buf = CommBuffer::from_message(arrived);
    unmarshal_object(to, expected, &mut buf)
}
