//! Subcontract identifiers.

use std::fmt;

/// A subcontract identifier, included in the marshalled form of every object
/// (§6.1) so that receivers can recognize which subcontract produced it.
///
/// Identifiers are derived from the subcontract's name with a 64-bit FNV-1a
/// hash, so third parties can mint identifiers without a central registry —
/// the paper's requirement that new subcontracts be introduced without
/// changing the base system.
///
/// # Examples
///
/// ```
/// use subcontract::ScId;
///
/// const REPLICON: ScId = ScId::from_name("replicon");
/// assert_eq!(REPLICON, ScId::from_name("replicon"));
/// assert_ne!(REPLICON, ScId::from_name("simplex"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScId(u64);

impl ScId {
    /// Derives the identifier for a subcontract name (const, FNV-1a).
    pub const fn from_name(name: &str) -> ScId {
        let bytes = name.as_bytes();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut i = 0;
        while i < bytes.len() {
            hash ^= bytes[i] as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            i += 1;
        }
        ScId(hash)
    }

    /// Rebuilds an identifier from its wire value.
    pub const fn from_raw(raw: u64) -> ScId {
        ScId(raw)
    }

    /// The wire value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ScId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScId({:#018x})", self.0)
    }
}

impl fmt::Display for ScId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let ids = [
            "singleton",
            "simplex",
            "cluster",
            "replicon",
            "caching",
            "reconnectable",
            "shmem",
        ]
        .map(ScId::from_name);
        for (i, a) in ids.iter().enumerate() {
            for (j, b) in ids.iter().enumerate() {
                assert_eq!(i == j, a == b, "collision between ids {i} and {j}");
            }
        }
    }

    #[test]
    fn raw_roundtrip() {
        let id = ScId::from_name("caching");
        assert_eq!(ScId::from_raw(id.raw()), id);
    }

    #[test]
    fn known_fnv_vector() {
        // FNV-1a of the empty string is the offset basis.
        assert_eq!(ScId::from_name("").raw(), 0xcbf2_9ce4_8422_2325);
    }
}
