//! Run-time type information with multiple inheritance.
//!
//! Spring's IDL is object-oriented with multiple interface inheritance
//! (§3.1). Subcontracts affect objects' semantics, and "it is the
//! responsibility of each object implementor to select both a type for their
//! object and a subcontract that meets the semantic commitments of that
//! type" (§6.3). Clients may *narrow* an object at run time to discover
//! richer semantics.

use std::collections::HashMap;
use std::fmt;

use parking_lot::RwLock;

use crate::scid::ScId;

/// Static description of one IDL interface type.
///
/// Instances are normally `static` items produced by the IDL compiler; the
/// inheritance graph is encoded by the `parents` slice.
pub struct TypeInfo {
    /// Fully qualified interface name (for example `"fs::cacheable_file"`).
    pub name: &'static str,
    /// Direct parent interfaces (multiple inheritance allowed).
    pub parents: &'static [&'static TypeInfo],
    /// The subcontract used by default when unmarshalling objects declared
    /// as this type (§6.1: "For each type we can specify a default
    /// subcontract for use when talking to that type").
    pub default_subcontract: ScId,
}

impl TypeInfo {
    /// Returns true when `self` conforms to `other` — it is the same
    /// interface or inherits from it (directly or transitively).
    ///
    /// # Examples
    ///
    /// ```
    /// use subcontract::{ScId, TypeInfo, OBJECT_TYPE};
    ///
    /// static FILE: TypeInfo = TypeInfo {
    ///     name: "file",
    ///     parents: &[&OBJECT_TYPE],
    ///     default_subcontract: ScId::from_name("singleton"),
    /// };
    /// static CACHEABLE: TypeInfo = TypeInfo {
    ///     name: "cacheable_file",
    ///     parents: &[&FILE],
    ///     default_subcontract: ScId::from_name("caching"),
    /// };
    ///
    /// assert!(CACHEABLE.is_a(&FILE));
    /// assert!(CACHEABLE.is_a(&OBJECT_TYPE));
    /// assert!(!FILE.is_a(&CACHEABLE));
    /// ```
    pub fn is_a(&self, other: &TypeInfo) -> bool {
        if self.name == other.name {
            return true;
        }
        self.parents.iter().any(|p| p.is_a(other))
    }
}

impl fmt::Debug for TypeInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeInfo({})", self.name)
    }
}

impl PartialEq for TypeInfo {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
    }
}

impl Eq for TypeInfo {}

/// The universal base interface; every object type conforms to it.
pub static OBJECT_TYPE: TypeInfo = TypeInfo {
    name: "object",
    parents: &[],
    default_subcontract: ScId::from_name("singleton"),
};

/// Per-domain mapping from interface names to their [`TypeInfo`].
///
/// A program only knows the types it was built with; a marshalled object
/// whose actual type is unknown here is handled at its declared (expected)
/// type instead — narrowing to the richer type is then impossible, exactly
/// as in a program not linked with the richer stubs.
pub struct TypeRegistry {
    by_name: RwLock<HashMap<&'static str, &'static TypeInfo>>,
}

impl Default for TypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeRegistry {
    /// Creates a registry pre-populated with [`OBJECT_TYPE`].
    pub fn new() -> Self {
        let reg = TypeRegistry {
            by_name: RwLock::new(HashMap::new()),
        };
        reg.register(&OBJECT_TYPE);
        reg
    }

    /// Registers a type and, transitively, its parents.
    pub fn register(&self, t: &'static TypeInfo) {
        {
            let mut map = self.by_name.write();
            if map.insert(t.name, t).is_some() {
                return; // Already known; parents are too.
            }
        }
        for p in t.parents {
            self.register(p);
        }
    }

    /// Looks up a type by its fully qualified name.
    pub fn lookup(&self, name: &str) -> Option<&'static TypeInfo> {
        self.by_name.read().get(name).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static FILE: TypeInfo = TypeInfo {
        name: "file",
        parents: &[&OBJECT_TYPE],
        default_subcontract: ScId::from_name("singleton"),
    };
    static CACHEABLE_FILE: TypeInfo = TypeInfo {
        name: "cacheable_file",
        parents: &[&FILE],
        default_subcontract: ScId::from_name("caching"),
    };
    static VERSIONED: TypeInfo = TypeInfo {
        name: "versioned",
        parents: &[&OBJECT_TYPE],
        default_subcontract: ScId::from_name("singleton"),
    };
    static VERSIONED_FILE: TypeInfo = TypeInfo {
        name: "versioned_file",
        parents: &[&FILE, &VERSIONED],
        default_subcontract: ScId::from_name("singleton"),
    };

    #[test]
    fn single_inheritance_conformance() {
        assert!(CACHEABLE_FILE.is_a(&FILE));
        assert!(CACHEABLE_FILE.is_a(&OBJECT_TYPE));
        assert!(CACHEABLE_FILE.is_a(&CACHEABLE_FILE));
        assert!(!FILE.is_a(&CACHEABLE_FILE));
    }

    #[test]
    fn multiple_inheritance_conformance() {
        assert!(VERSIONED_FILE.is_a(&FILE));
        assert!(VERSIONED_FILE.is_a(&VERSIONED));
        assert!(VERSIONED_FILE.is_a(&OBJECT_TYPE));
        assert!(!VERSIONED.is_a(&FILE));
    }

    #[test]
    fn registry_registers_parents() {
        let reg = TypeRegistry::new();
        reg.register(&VERSIONED_FILE);
        assert!(reg.lookup("versioned_file").is_some());
        assert!(reg.lookup("file").is_some());
        assert!(reg.lookup("versioned").is_some());
        assert!(reg.lookup("object").is_some());
        assert!(reg.lookup("nope").is_none());
    }

    #[test]
    fn equality_is_by_name() {
        assert_eq!(&FILE, &FILE);
        assert_ne!(&FILE, &CACHEABLE_FILE);
    }
}
