//! Simulated dynamic linking of subcontract libraries (§6.2).
//!
//! At run time a program may encounter objects whose subcontracts were not
//! linked in. The paper's discovery protocol: the unmarshal operation misses
//! in the domain's subcontract registry, a (network) naming context maps the
//! subcontract identifier to a library name (for example `replicon.so`), and
//! the dynamic linker loads that library — but, for security, "the dynamic
//! linker will only load libraries that are on a designated directory
//! search-path of trustworthy locations".
//!
//! Loading real shared objects would add nothing to the mechanism under
//! study, so the "filesystem of installed libraries" is a [`LibraryStore`]
//! and a library's code is a factory function producing its subcontracts.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::ctx::DomainCtx;
use crate::error::{Result, SpringError};
use crate::scid::ScId;
use crate::traits::Subcontract;

/// Factory producing the subcontracts a library exports.
pub type LibraryFactory = Arc<dyn Fn() -> Vec<Arc<dyn Subcontract>> + Send + Sync>;

/// One installed library: where it lives and what it provides.
#[derive(Clone)]
pub struct InstalledLibrary {
    /// The directory the library is installed in (for example
    /// `"/usr/lib/subcontracts"`); trust is decided per directory.
    pub location: String,
    /// The library's code.
    pub factory: LibraryFactory,
}

/// The simulated filesystem of installed subcontract libraries, shared by
/// every domain on a machine.
///
/// Installing a library models the privileged administrator action of
/// placing a `.so` in some directory; whether a given domain will *load* it
/// depends on that domain's trusted search path ([`LibraryLoader`]).
#[derive(Default)]
pub struct LibraryStore {
    libs: RwLock<HashMap<String, InstalledLibrary>>,
}

impl LibraryStore {
    /// Creates an empty store.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Installs (or replaces) a library under `name` at `location`.
    pub fn install(
        &self,
        name: impl Into<String>,
        location: impl Into<String>,
        factory: LibraryFactory,
    ) {
        self.libs.write().insert(
            name.into(),
            InstalledLibrary {
                location: location.into(),
                factory,
            },
        );
    }

    /// Removes a library.
    pub fn uninstall(&self, name: &str) {
        self.libs.write().remove(name);
    }

    /// Looks up a library by name.
    pub fn get(&self, name: &str) -> Option<InstalledLibrary> {
        self.libs.read().get(name).cloned()
    }
}

impl fmt::Debug for LibraryStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LibraryStore({} libraries)", self.libs.read().len())
    }
}

/// Maps subcontract identifiers to library names.
///
/// The paper uses "a network naming context to map the subcontract
/// identifier into a library name"; the name service implements this trait,
/// and tests can use the in-memory [`MapLibraryNames`].
pub trait LibraryNameContext: Send + Sync {
    /// Returns the library name for a subcontract identifier, if known.
    fn library_for(&self, id: ScId) -> Option<String>;
}

/// A simple in-memory [`LibraryNameContext`].
#[derive(Default)]
pub struct MapLibraryNames {
    map: RwLock<HashMap<ScId, String>>,
}

impl MapLibraryNames {
    /// Creates an empty mapping.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Associates a subcontract identifier with a library name.
    pub fn bind(&self, id: ScId, library: impl Into<String>) {
        self.map.write().insert(id, library.into());
    }
}

impl LibraryNameContext for MapLibraryNames {
    fn library_for(&self, id: ScId) -> Option<String> {
        self.map.read().get(&id).cloned()
    }
}

/// A domain's dynamic linker for subcontract libraries.
///
/// Holds the domain's trusted directory search path; loading a library
/// installed anywhere else fails with [`SpringError::UntrustedLibrary`].
pub struct LibraryLoader {
    store: Arc<LibraryStore>,
    search_path: RwLock<Vec<String>>,
}

impl LibraryLoader {
    /// Creates a loader over `store` trusting the given directories.
    pub fn new(store: Arc<LibraryStore>, search_path: Vec<String>) -> Self {
        LibraryLoader {
            store,
            search_path: RwLock::new(search_path),
        }
    }

    /// Replaces the trusted search path (an administrative action).
    pub fn set_search_path(&self, path: Vec<String>) {
        *self.search_path.write() = path;
    }

    /// Loads a library by name, enforcing the trust policy, and registers
    /// everything it provides in the domain's subcontract registry.
    pub fn load(&self, ctx: &Arc<DomainCtx>, name: &str) -> Result<()> {
        let lib = self
            .store
            .get(name)
            .ok_or_else(|| SpringError::ResolveFailed(name.to_owned()))?;
        let trusted = self.search_path.read().contains(&lib.location);
        if !trusted {
            return Err(SpringError::UntrustedLibrary {
                library: name.to_owned(),
                location: lib.location.clone(),
            });
        }
        for sc in (lib.factory)() {
            ctx.registry().register(sc);
        }
        Ok(())
    }
}

impl fmt::Debug for LibraryLoader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LibraryLoader(search path {:?})",
            self.search_path.read()
        )
    }
}
