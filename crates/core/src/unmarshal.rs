//! Compatible-subcontract dispatch (§6.1).
//!
//! Two objects perceived as having the same type may use different
//! subcontracts. The marshalled form of every object therefore begins with
//! a subcontract identifier, and "a typical subcontract unmarshal operation
//! starts by taking a peek at the expected subcontract identifier in the
//! communications buffer. If it contains the expected identifier ... the
//! subcontract goes ahead and unmarshals the object. However if the
//! unmarshal operation sees some other value then it calls into a registry
//! to locate the correct code for that subcontract."

use std::sync::Arc;

use spring_buf::CommBuffer;

use crate::ctx::DomainCtx;
use crate::error::{Result, SpringError};
use crate::object::SpringObj;
use crate::scid::ScId;
use crate::types::TypeInfo;

/// Writes the standard marshalled-object header: the subcontract identifier
/// followed by the object's authoritative type name.
pub fn put_obj_header(buf: &mut CommBuffer, id: ScId, type_name: &str) {
    buf.put_u64(id.raw());
    buf.put_string(type_name);
}

/// Reads the standard marshalled-object header written by
/// [`put_obj_header`], resolving the actual type against the receiving
/// domain's type registry.
///
/// When the receiver knows the actual type, it must conform to `expected`
/// (otherwise the sender lied about the type). When the receiver has never
/// heard of the type — it was not linked with those stubs — the object is
/// handled at its declared type, but the authoritative name is preserved in
/// the object (and in any re-marshalled form) so better-informed receivers
/// downstream can still narrow.
///
/// Returns the subcontract identifier, the wire type name, and the
/// best-known local type information.
pub fn get_obj_header(
    ctx: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
    buf: &mut CommBuffer,
) -> Result<(ScId, String, &'static TypeInfo)> {
    let id = ScId::from_raw(buf.get_u64()?);
    let name = buf.get_string()?;
    let info = match ctx.types().lookup(&name) {
        Some(t) => {
            if !t.is_a(expected) {
                return Err(SpringError::TypeMismatch {
                    expected: expected.name,
                    actual: name,
                });
            }
            t
        }
        None => expected,
    };
    Ok((id, name, info))
}

/// The stub-level entry point for reading an object out of a buffer.
///
/// The stub "must choose both an initial subcontract and an initial method
/// table based on the expected type of the object" (§5.1.2): the initial
/// subcontract is the expected type's default subcontract, which then peeks
/// the identifier and re-dispatches if the buffer actually holds an object
/// of a different subcontract.
pub fn unmarshal_object(
    ctx: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
    buf: &mut CommBuffer,
) -> Result<SpringObj> {
    // The marshalled form leads with the subcontract identifier
    // (put_obj_header), so peeking it here keys the "unmarshal" latency
    // histogram by the subcontract that actually owns the bytes — even when
    // the initial subcontract re-dispatches.
    let mut span = spring_trace::span_start(
        "unmarshal",
        ctx.domain().trace_scope(),
        buf.peek_u64().unwrap_or(0),
    );
    let result = ctx
        .lookup_subcontract(expected.default_subcontract)
        .and_then(|initial| initial.unmarshal(ctx, expected, buf));
    if result.is_err() {
        span.fail();
    }
    result
}

/// The first step of every subcontract's `unmarshal`: peek the identifier
/// and, when the buffer holds an object of a *different* subcontract, locate
/// that subcontract (registry lookup, with dynamic discovery on a miss) and
/// delegate the unmarshalling to it.
///
/// Returns `Ok(None)` when the identifier matches `me` and the caller
/// should proceed with its own unmarshalling.
pub fn redispatch_if_foreign(
    me: ScId,
    ctx: &Arc<DomainCtx>,
    expected: &'static TypeInfo,
    buf: &mut CommBuffer,
) -> Result<Option<SpringObj>> {
    let seen = ScId::from_raw(buf.peek_u64()?);
    if seen == me {
        return Ok(None);
    }
    let sc = ctx.lookup_subcontract(seen)?;
    Ok(Some(sc.unmarshal(ctx, expected, buf)?))
}
