//! Wire conventions shared by generated stubs and skeletons.
//!
//! A call buffer is laid out as `[subcontract control][op: u32][arguments]`;
//! a reply buffer as `[subcontract control][status: u8][payload]`. The
//! control regions belong to the subcontract pair (client writes via
//! `invoke_preamble`/`invoke`, server strips and re-adds them), so stubs and
//! skeletons only ever see the portion starting at `op`/`status` — this is
//! what keeps stubs fully independent of subcontracts (§9.1).

use spring_buf::CommBuffer;

use crate::error::{Result, SpringError};

/// Reply status: the operation succeeded; results follow.
pub const STATUS_OK: u8 = 0;
/// Reply status: a declared user exception follows (name, then fields).
pub const STATUS_USER_EXN: u8 = 1;
/// Reply status: a system-level error string follows.
pub const STATUS_SYSTEM: u8 = 2;
/// Reply status: the operation number was not recognized.
pub const STATUS_UNKNOWN_OP: u8 = 3;
/// Reply status: the server's admission controller shed the call under
/// overload; the measured queue delay (u64 nanoseconds) follows.
pub const STATUS_OVERLOADED: u8 = 4;

/// Decoded reply disposition, produced by [`decode_reply_status`].
#[derive(Debug)]
pub enum ReplyStatus {
    /// Success; the stub should unmarshal results.
    Ok,
    /// A user exception with the given name; the stub should decode the
    /// exception body if it knows the name.
    UserException(String),
}

/// Reads the status byte (and error payloads) from a reply buffer.
///
/// System-level failures are converted to `Err` directly; user exceptions
/// are returned for the generated stub to decode, since only it knows the
/// exception types its operation declares.
pub fn decode_reply_status(reply: &mut CommBuffer) -> Result<ReplyStatus> {
    match reply.get_u8()? {
        STATUS_OK => Ok(ReplyStatus::Ok),
        STATUS_USER_EXN => Ok(ReplyStatus::UserException(reply.get_string()?)),
        STATUS_SYSTEM => Err(SpringError::Remote(reply.get_string()?)),
        STATUS_UNKNOWN_OP => Err(SpringError::UnknownOp(reply.get_u32()?)),
        STATUS_OVERLOADED => Err(SpringError::Overloaded {
            queue_ns: reply.get_u64()?,
        }),
        other => Err(SpringError::Remote(format!("invalid reply status {other}"))),
    }
}

/// Writes a success status; the skeleton marshals results afterwards.
pub fn encode_ok(reply: &mut CommBuffer) {
    reply.put_u8(STATUS_OK);
}

/// Writes a user exception header; the skeleton marshals the exception
/// fields afterwards.
pub fn encode_user_exception(reply: &mut CommBuffer, name: &str) {
    reply.put_u8(STATUS_USER_EXN);
    reply.put_string(name);
}

/// Writes a system-level error reply.
pub fn encode_system_error(reply: &mut CommBuffer, message: &str) {
    reply.put_u8(STATUS_SYSTEM);
    reply.put_string(message);
}

/// Writes an unknown-operation reply.
pub fn encode_unknown_op(reply: &mut CommBuffer, op: u32) {
    reply.put_u8(STATUS_UNKNOWN_OP);
    reply.put_u32(op);
}

/// Writes an overload-shed reply carrying the queue delay the admission
/// controller measured. Every stub decodes it into
/// [`SpringError::Overloaded`] through [`decode_reply_status`], so shedding
/// is typed end to end without per-interface exception declarations.
pub fn encode_overloaded(reply: &mut CommBuffer, queue_ns: u64) {
    reply.put_u8(STATUS_OVERLOADED);
    reply.put_u64(queue_ns);
}

/// Computes the 32-bit operation number for an operation name (FNV-1a).
///
/// The IDL compiler verifies that no two operations of an interface (across
/// its full inherited method set) collide.
///
/// # Examples
///
/// ```
/// use subcontract::op_hash;
///
/// const READ: u32 = op_hash("read");
/// assert_eq!(READ, op_hash("read"));
/// assert_ne!(READ, op_hash("write"));
/// ```
pub const fn op_hash(name: &str) -> u32 {
    let bytes = name.as_bytes();
    let mut hash: u32 = 0x811c_9dc5;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u32;
        hash = hash.wrapping_mul(0x0100_0193);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_roundtrip_ok() {
        let mut reply = CommBuffer::new();
        encode_ok(&mut reply);
        reply.put_u32(7);
        assert!(matches!(
            decode_reply_status(&mut reply).unwrap(),
            ReplyStatus::Ok
        ));
        assert_eq!(reply.get_u32().unwrap(), 7);
    }

    #[test]
    fn status_roundtrip_user_exception() {
        let mut reply = CommBuffer::new();
        encode_user_exception(&mut reply, "io_error");
        reply.put_string("disk on fire");
        match decode_reply_status(&mut reply).unwrap() {
            ReplyStatus::UserException(name) => assert_eq!(name, "io_error"),
            _ => panic!("expected user exception"),
        }
        assert_eq!(reply.get_string().unwrap(), "disk on fire");
    }

    #[test]
    fn status_roundtrip_system() {
        let mut reply = CommBuffer::new();
        encode_system_error(&mut reply, "kaboom");
        assert_eq!(
            decode_reply_status(&mut reply).unwrap_err(),
            SpringError::Remote("kaboom".into())
        );
    }

    #[test]
    fn status_roundtrip_unknown_op() {
        let mut reply = CommBuffer::new();
        encode_unknown_op(&mut reply, 0xDEAD);
        assert_eq!(
            decode_reply_status(&mut reply).unwrap_err(),
            SpringError::UnknownOp(0xDEAD)
        );
    }

    #[test]
    fn status_roundtrip_overloaded() {
        let mut reply = CommBuffer::new();
        encode_overloaded(&mut reply, 123_456);
        assert_eq!(
            decode_reply_status(&mut reply).unwrap_err(),
            SpringError::Overloaded { queue_ns: 123_456 }
        );
    }

    #[test]
    fn overloaded_is_not_a_comm_failure() {
        // Retrying subcontracts must not treat shedding as a link failure
        // and hammer an overloaded server with failover attempts.
        assert!(!SpringError::Overloaded { queue_ns: 1 }.is_comm_failure());
    }

    #[test]
    fn garbage_status_rejected() {
        let mut reply = CommBuffer::new();
        reply.put_u8(99);
        assert!(matches!(
            decode_reply_status(&mut reply).unwrap_err(),
            SpringError::Remote(_)
        ));
    }

    #[test]
    fn op_hash_is_stable_and_distinct() {
        assert_eq!(op_hash("read"), op_hash("read"));
        assert_ne!(op_hash("read"), op_hash("write"));
        assert_ne!(op_hash("size"), op_hash("version"));
    }
}
