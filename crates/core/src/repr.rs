//! Object representations: the client-local private state of an object.

use std::any::Any;
use std::fmt;

use crate::error::{Result, SpringError};

/// State stored in an object's representation.
///
/// Each subcontract defines its own representation type (a set of door
/// identifiers for replicon, a door plus an object name for reconnectable,
/// and so on) and downcasts at the boundary. Representations that mutate
/// under shared access (replicon's failover, reconnectable's rebinding) use
/// interior mutability.
pub trait ReprState: Any + Send + Sync + fmt::Debug {
    /// Upcast to [`Any`] for downcasting by the owning subcontract.
    fn as_any(&self) -> &dyn Any;
}

impl<T: Any + Send + Sync + fmt::Debug> ReprState for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// An object's representation: opaque to everyone except its subcontract.
pub struct Repr(Box<dyn ReprState>);

impl Repr {
    /// Wraps a concrete representation.
    pub fn new<T: ReprState>(state: T) -> Self {
        Repr(Box::new(state))
    }

    /// Downcasts to the subcontract's concrete representation type.
    ///
    /// Fails with [`SpringError::BadRepresentation`] when the representation
    /// was produced by a different subcontract — the composition bug the
    /// paper's conventions are designed to prevent.
    pub fn downcast<T: ReprState>(&self, sc_name: &'static str) -> Result<&T> {
        // Dispatch on the inner `dyn ReprState`, not on the `Box` (which
        // also satisfies the blanket impl and would report its own TypeId).
        (*self.0)
            .as_any()
            .downcast_ref::<T>()
            .ok_or(SpringError::BadRepresentation(sc_name))
    }

    /// Consumes the representation, downcasting to the concrete type.
    pub fn into_downcast<T: ReprState>(self, sc_name: &'static str) -> Result<Box<T>> {
        let any: Box<dyn Any> = self.0;
        any.downcast::<T>()
            .map_err(|_| SpringError::BadRepresentation(sc_name))
    }
}

impl fmt::Debug for Repr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Repr({:?})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct DoorSet(Vec<u32>);

    #[derive(Debug)]
    struct Other;

    #[test]
    fn downcast_matches_concrete_type() {
        let r = Repr::new(DoorSet(vec![1, 2]));
        assert_eq!(r.downcast::<DoorSet>("test").unwrap().0, vec![1, 2]);
        assert_eq!(
            r.downcast::<Other>("test").unwrap_err(),
            SpringError::BadRepresentation("test")
        );
    }

    #[test]
    fn into_downcast_consumes() {
        let r = Repr::new(DoorSet(vec![3]));
        let boxed = r.into_downcast::<DoorSet>("test").unwrap();
        assert_eq!(boxed.0, vec![3]);

        let r = Repr::new(Other);
        assert!(r.into_downcast::<DoorSet>("test").is_err());
    }
}
