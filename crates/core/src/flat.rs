//! The `FlatMessage` fast path: zero-copy unmarshal for fixed-shape types.
//!
//! The copying unmarshal path (`CommBuffer::get_*`) decodes by reading each
//! field out of the byte stream into owned values — strings and byte
//! sequences cost a heap copy each. For *fixed-shape* types (every field a
//! sized primitive, an enum, or a nested fixed-shape struct) the IDL
//! compiler instead emits a flat layout with compile-time constant field
//! offsets, and unmarshal collapses to **one bounds check plus a cast**:
//!
//! 1. [`spring_buf::CommBuffer::flat_remaining`] aligns the cursor and
//!    borrows the rest of the frame — no copy;
//! 2. the type's `validate()` checks the exact footprint and every enum
//!    tag / boolean byte up front — the one chance for a [`WireError`];
//! 3. a borrowing view (the "cast") reads fields in place, infallibly.
//!
//! The copying path remains the fallback for variable-shape messages
//! (strings, sequences) and door-carrying messages (capabilities travel
//! out-of-band and move through kernel translation, so they can never be
//! part of a flat frame).

use spring_buf::CommBuffer;
pub use spring_buf::WireError;

use crate::error::{Result, SpringError};

/// A borrowing view over a validated flat frame.
///
/// Implemented by the IDL compiler's generated `*View` types. The contract:
/// `validate` performs all bounds and tag checking; `view` is validate plus
/// the cast; a view's accessors never fail and never copy payload bytes.
pub trait FlatMessage<'a>: Sized {
    /// Exact encoded size in bytes of this fixed-shape type, measured from
    /// its 8-byte-aligned frame start.
    const FOOTPRINT: usize;

    /// Checks that `bytes` is exactly one well-formed frame of this type.
    fn validate(bytes: &[u8]) -> std::result::Result<(), WireError>;

    /// Validates `bytes` and wraps them without copying.
    fn view(bytes: &'a [u8]) -> std::result::Result<Self, WireError>;
}

/// Decodes the rest of `buf` as one flat frame of type `T`, in place.
///
/// This is the generic entry point for hand-written callers; generated
/// stubs inline the equivalent sequence. The returned view borrows the
/// buffer — no payload bytes are copied.
pub fn decode_flat<'a, T: FlatMessage<'a>>(buf: &'a mut CommBuffer) -> Result<T> {
    let bytes = buf.flat_remaining()?;
    T::view(bytes).map_err(SpringError::Wire)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-rolled flat type standing in for generated code: a `u64`
    /// followed by a boolean (footprint 9).
    #[derive(Debug)]
    struct PairView<'a> {
        bytes: &'a [u8],
    }

    impl<'a> FlatMessage<'a> for PairView<'a> {
        const FOOTPRINT: usize = 9;

        fn validate(bytes: &[u8]) -> std::result::Result<(), WireError> {
            spring_buf::flat::check_len(bytes, Self::FOOTPRINT)?;
            spring_buf::flat::check_bool(bytes, 8)?;
            Ok(())
        }

        fn view(bytes: &'a [u8]) -> std::result::Result<Self, WireError> {
            Self::validate(bytes)?;
            Ok(PairView { bytes })
        }
    }

    impl PairView<'_> {
        fn value(&self) -> u64 {
            spring_buf::flat::get_u64(self.bytes, 0)
        }

        fn flag(&self) -> bool {
            spring_buf::flat::get_bool(self.bytes, 8)
        }
    }

    #[test]
    fn decode_flat_reads_in_place() {
        let mut b = CommBuffer::new();
        b.align8();
        b.put_u64(42);
        b.put_bool(true);
        let mut r = CommBuffer::from_message(b.into_message());
        let copied_before = spring_buf::flat::decode_bytes_copied();
        let v: PairView<'_> = decode_flat(&mut r).unwrap();
        assert_eq!(v.value(), 42);
        assert!(v.flag());
        assert_eq!(spring_buf::flat::decode_bytes_copied(), copied_before);
    }

    #[test]
    fn decode_flat_rejects_malformed() {
        let mut b = CommBuffer::new();
        b.put_u64(42); // Truncated: missing the boolean byte.
        let mut r = CommBuffer::from_message(b.into_message());
        let err = decode_flat::<PairView<'_>>(&mut r).unwrap_err();
        assert_eq!(
            err,
            SpringError::Wire(WireError::Truncated {
                needed: 9,
                actual: 8
            })
        );

        let mut b = CommBuffer::new();
        b.put_u64(42);
        b.put_u8(7); // Not a boolean.
        let mut r = CommBuffer::from_message(b.into_message());
        let err = decode_flat::<PairView<'_>>(&mut r).unwrap_err();
        assert_eq!(
            err,
            SpringError::Wire(WireError::BadBool {
                offset: 8,
                value: 7
            })
        );
    }
}
