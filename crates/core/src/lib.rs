//! The Spring *subcontract* mechanism.
//!
//! This crate is the reproduction of the primary contribution of
//! *Subcontract: A Flexible Base for Distributed Programming* (Hamilton,
//! Powell, Mitchell — SOSP 1993): replaceable modules, called subcontracts,
//! that are given control of the basic mechanisms of object invocation and
//! argument passing, so that new object communication semantics (replication,
//! caching, crash recovery, …) can be introduced without modifying the base
//! RPC system.
//!
//! A Spring object, as perceived by a client, consists of three things (§4):
//!
//! 1. a *method table* — here, the generated stub struct wrapping the object;
//! 2. a *subcontract operations vector* — here, an `Arc<dyn `[`Subcontract`]`>`;
//! 3. client-local private state, the object's *representation* — [`Repr`].
//!
//! [`SpringObj`] plugs the three together. Stubs are completely separated
//! from subcontracts: any generated stub works with any subcontract (§9.1).
//!
//! The crate also implements the paper's subcontract conventions (§6):
//! subcontract identifiers in the marshalled form, *compatible subcontracts*
//! (unmarshal peeks the identifier and re-dispatches through the domain's
//! [`SubcontractRegistry`]), and dynamic discovery of new subcontracts via a
//! library name context plus a trusted-search-path [`LibraryLoader`].
//!
//! Concrete subcontracts (singleton, simplex, cluster, replicon, caching,
//! reconnectable, shmem) live in the `spring-subcontracts` crate.

mod ctx;
mod error;
mod flat;
mod loader;
mod object;
mod registry;
mod repr;
mod scid;
mod server;
mod stub;
mod traits;
mod transport;
mod types;
mod unmarshal;

pub use ctx::DomainCtx;
pub use error::{Result, SpringError};
pub use flat::{decode_flat, FlatMessage, WireError};
pub use loader::{
    InstalledLibrary, LibraryFactory, LibraryLoader, LibraryNameContext, LibraryStore,
    MapLibraryNames,
};
pub use object::SpringObj;
pub use registry::SubcontractRegistry;
pub use repr::{Repr, ReprState};
pub use scid::ScId;
pub use server::{server_dispatch, Dispatch, ServerCtx};
pub use stub::{
    decode_reply_status, encode_ok, encode_overloaded, encode_system_error, encode_unknown_op,
    encode_user_exception, op_hash, ReplyStatus, STATUS_OK, STATUS_OVERLOADED, STATUS_SYSTEM,
    STATUS_UNKNOWN_OP, STATUS_USER_EXN,
};
pub use traits::{ObjParts, Resolver, ServerSubcontract, Subcontract};
pub use transport::{ship_object, ship_object_copy, KernelTransport, Transport};
pub use types::{TypeInfo, TypeRegistry, OBJECT_TYPE};
pub use unmarshal::{get_obj_header, put_obj_header, redispatch_if_foreign, unmarshal_object};
