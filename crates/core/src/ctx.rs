//! Per-domain context tying together the kernel and the subcontract world.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use spring_kernel::Domain;

use crate::error::{Result, SpringError};
use crate::loader::{LibraryLoader, LibraryNameContext, LibraryStore};
use crate::registry::SubcontractRegistry;
use crate::scid::ScId;
use crate::traits::{Resolver, Subcontract};
use crate::types::TypeRegistry;

/// Everything a domain's subcontract machinery needs: the kernel domain
/// handle, the subcontract registry, the type registry, the dynamic linker,
/// and the naming hooks individual subcontracts rely on.
///
/// One `DomainCtx` exists per domain; objects hold an `Arc` to it.
///
/// # Examples
///
/// ```
/// use spring_kernel::Kernel;
/// use subcontract::DomainCtx;
///
/// let kernel = Kernel::new("machine");
/// let ctx = DomainCtx::new(kernel.create_domain("app"));
/// assert!(ctx.registry().is_empty()); // Subcontracts are linked in explicitly.
/// ```
pub struct DomainCtx {
    domain: Domain,
    registry: SubcontractRegistry,
    types: TypeRegistry,
    loader: RwLock<Option<LibraryLoader>>,
    lib_names: RwLock<Option<Arc<dyn LibraryNameContext>>>,
    resolver: RwLock<Option<Arc<dyn Resolver>>>,
}

impl DomainCtx {
    /// Creates a context for a kernel domain.
    pub fn new(domain: Domain) -> Arc<DomainCtx> {
        Arc::new(DomainCtx {
            domain,
            registry: SubcontractRegistry::new(),
            types: TypeRegistry::new(),
            loader: RwLock::new(None),
            lib_names: RwLock::new(None),
            resolver: RwLock::new(None),
        })
    }

    /// The kernel domain this context belongs to.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The domain's subcontract registry.
    pub fn registry(&self) -> &SubcontractRegistry {
        &self.registry
    }

    /// The domain's type registry.
    pub fn types(&self) -> &TypeRegistry {
        &self.types
    }

    /// Registers a subcontract (the program "linking" it in at startup).
    pub fn register_subcontract(&self, sc: Arc<dyn Subcontract>) {
        self.registry.register(sc);
    }

    /// Configures the dynamic linker: the machine's library store plus this
    /// domain's trusted directory search path (§6.2).
    pub fn configure_loader(&self, store: Arc<LibraryStore>, search_path: Vec<String>) {
        *self.loader.write() = Some(LibraryLoader::new(store, search_path));
    }

    /// Sets the naming context that maps subcontract identifiers to library
    /// names during dynamic discovery.
    pub fn set_library_names(&self, names: Arc<dyn LibraryNameContext>) {
        *self.lib_names.write() = Some(names);
    }

    /// Sets the machine-local name resolver used by subcontracts that need
    /// naming (caching's cache manager lookup, reconnectable's re-resolve).
    pub fn set_resolver(&self, resolver: Arc<dyn Resolver>) {
        *self.resolver.write() = Some(resolver);
    }

    /// The machine-local name resolver, if configured.
    pub fn resolver(&self) -> Result<Arc<dyn Resolver>> {
        self.resolver.read().clone().ok_or(SpringError::Unsupported(
            "no resolver configured in this domain",
        ))
    }

    /// Finds the subcontract for an identifier, running the full discovery
    /// protocol of §6.2 on a registry miss:
    ///
    /// 1. hit in the domain's subcontract registry → done;
    /// 2. otherwise map the identifier to a library name via the configured
    ///    naming context;
    /// 3. dynamically link that library (trusted search path enforced) and
    ///    retry the registry.
    pub fn lookup_subcontract(self: &Arc<Self>, id: ScId) -> Result<Arc<dyn Subcontract>> {
        if let Some(sc) = self.registry.get(id) {
            return Ok(sc);
        }
        let lib_name = {
            let names = self.lib_names.read();
            match &*names {
                Some(ctx) => ctx.library_for(id).ok_or(SpringError::UnknownLibrary(id))?,
                None => return Err(SpringError::UnknownSubcontract(id)),
            }
        };
        {
            let loader = self.loader.read();
            match &*loader {
                Some(l) => l.load(self, &lib_name)?,
                None => return Err(SpringError::UnknownSubcontract(id)),
            }
        }
        self.registry
            .get(id)
            .ok_or(SpringError::UnknownSubcontract(id))
    }
}

impl fmt::Debug for DomainCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DomainCtx({:?}, {} subcontracts)",
            self.domain,
            self.registry.len()
        )
    }
}
