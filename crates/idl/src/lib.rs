//! An IDL compiler for the Spring interface definition language.
//!
//! "The unifying principle of Spring is that all the key interfaces are
//! defined in an interface definition language called IDL. This language is
//! object-oriented and includes support for multiple inheritance. It is
//! purely concerned with interface properties and does not provide any
//! implementation information. From the IDL interfaces it is possible to
//! generate language-specific stubs." (§3.1)
//!
//! This crate compiles a practical subset of OMG-style IDL to Rust stubs and
//! skeletons that target the `subcontract` API:
//!
//! * modules, interfaces with **multiple inheritance**, structs, enums,
//!   exceptions, typedefs, and constants;
//! * parameter modes `in`, `out`, `inout`, and the paper's **`copy`** mode
//!   (§5.1.5) for object parameters;
//! * `raises` clauses mapping to typed Rust error enums;
//! * a `[subcontract = name]` interface annotation selecting the type's
//!   default subcontract (§6.1: "For each type we can specify a default
//!   subcontract for use when talking to that type").
//!
//! The generated stubs are fully subcontract-independent: every remote call
//! flows through `start_call` → argument marshalling → `invoke`, and every
//! object argument or result is marshalled by its own subcontract. The
//! method-table numbering is a 32-bit hash of the operation name, checked
//! collision-free across each interface's full inherited method set.
//!
//! # Examples
//!
//! ```
//! let source = r#"
//!     module demo {
//!         interface greeter {
//!             string greet(in string name);
//!         };
//!     };
//! "#;
//! let rust = spring_idl::compile(source).unwrap();
//! assert!(rust.contains("pub struct Greeter"));
//! assert!(rust.contains("pub trait GreeterServant"));
//! ```

mod ast;
mod check;
mod codegen;
mod lexer;
mod parser;

pub use ast::*;
pub use check::{check, CheckedSpec};
pub use codegen::generate;
pub use lexer::{lex, Token, TokenKind};
pub use parser::parse;

use std::fmt;

/// A compilation error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IdlError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl IdlError {
    pub(crate) fn new(line: usize, col: usize, message: impl Into<String>) -> IdlError {
        IdlError {
            line,
            col,
            message: message.into(),
        }
    }
}

impl fmt::Display for IdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for IdlError {}

/// Compiles IDL source text to Rust code (lex → parse → check → generate).
pub fn compile(source: &str) -> Result<String, IdlError> {
    let tokens = lex(source)?;
    let spec = parse(&tokens)?;
    let checked = check(&spec)?;
    Ok(generate(&checked))
}
