//! Rust code generation.
//!
//! For each interface the generator emits, mirroring the IDL module tree:
//!
//! * a `TypeInfo` static encoding the inheritance graph and the default
//!   subcontract chosen by the `[subcontract = ...]` annotation;
//! * an operations module with the 32-bit wire numbers;
//! * a client struct (the "method table" of §4) whose methods run
//!   `start_call` → marshal → `invoke` → unmarshal, fully independent of
//!   the object's subcontract;
//! * a servant trait (inheriting its parents' servant traits) and a
//!   skeleton implementing `subcontract::Dispatch` over the *flattened*
//!   method set;
//! * an error enum per interface covering its declared exceptions plus a
//!   `System` variant.
//!
//! Structs, enums, and exceptions get `idl_encode`/`idl_decode` methods;
//! object-typed parameters and results are marshalled through their own
//! subcontracts (`in` moves, `copy` copies — §5.1.5).

use std::fmt::Write as _;

use crate::ast::*;
use crate::check::{op_hash32, CheckedSpec, InterfaceInfo};

/// Converts `snake_or_lower` to `UpperCamel`.
fn camel(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut upper = true;
    for c in s.chars() {
        if c == '_' {
            upper = true;
        } else if upper {
            out.extend(c.to_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Converts to `UPPER_SNAKE`.
fn upper_snake(s: &str) -> String {
    s.to_uppercase()
}

/// Escapes Rust keywords in value position (parameters, fields).
fn sanitize(s: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
        "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
        "ref", "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe",
        "use", "where", "while", "async", "await", "box", "final", "macro", "override", "priv",
        "try", "typeof", "unsized", "virtual", "yield",
    ];
    if KEYWORDS.contains(&s) {
        format!("{s}_")
    } else {
        s.to_owned()
    }
}

/// Indentation-aware output writer.
struct Out {
    buf: String,
    indent: usize,
}

impl Out {
    fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        if s.is_empty() {
            self.buf.push('\n');
        } else {
            for _ in 0..self.indent {
                self.buf.push_str("    ");
            }
            self.buf.push_str(s);
            self.buf.push('\n');
        }
    }

    fn open(&mut self, s: impl AsRef<str>) {
        self.line(s);
        self.indent += 1;
    }

    fn close(&mut self, s: impl AsRef<str>) {
        self.indent -= 1;
        self.line(s);
    }
}

struct Gen<'a> {
    checked: &'a CheckedSpec,
    out: Out,
    /// Current module path within the generated tree.
    depth: usize,
}

impl Gen<'_> {
    /// Rust path from the current module to the item for `abs`, whose local
    /// Rust name is produced by `name_of`.
    fn path_to(&self, abs: &str, name_of: impl Fn(&str) -> String) -> String {
        let mut segments: Vec<&str> = abs.split("::").collect();
        let leaf = segments.pop().expect("non-empty path");
        let mut path = if self.depth == 0 {
            "self::".to_owned()
        } else {
            "super::".repeat(self.depth)
        };
        for m in segments {
            let _ = write!(path, "{m}::");
        }
        path + &name_of(leaf)
    }

    fn type_info_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}_TYPE", upper_snake(n)))
    }

    fn client_path(&self, abs: &str) -> String {
        self.path_to(abs, camel)
    }

    fn error_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}Error", camel(n)))
    }

    fn exception_path(&self, abs: &str) -> String {
        self.path_to(abs, camel)
    }

    fn servant_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}Servant", camel(n)))
    }

    fn ops_mod_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{n}_ops"))
    }

    /// Resolves a named data type through typedefs to its underlying type.
    fn underlying<'t>(&'t self, ty: &'t Type) -> &'t Type {
        if let Type::Named(n) = ty {
            if let Some(t) = self.checked.typedefs.get(&n.joined()) {
                return self.underlying(t);
            }
        }
        ty
    }

    /// True when the type denotes an object (interface or `object`).
    fn is_object(&self, ty: &Type) -> bool {
        match self.underlying(ty) {
            Type::Object => true,
            Type::Named(n) => self.checked.interfaces.contains_key(&n.joined()),
            _ => false,
        }
    }

    /// The Rust type for values of `ty` (client-facing and servant-facing).
    fn rust_type(&self, ty: &Type) -> String {
        match ty {
            Type::Void => "()".into(),
            Type::Bool => "bool".into(),
            Type::Octet => "u8".into(),
            Type::Short => "i16".into(),
            Type::UShort => "u16".into(),
            Type::Long => "i32".into(),
            Type::ULong => "u32".into(),
            Type::LongLong => "i64".into(),
            Type::ULongLong => "u64".into(),
            Type::Float => "f32".into(),
            Type::Double => "f64".into(),
            Type::Str => "String".into(),
            Type::Object => "::subcontract::SpringObj".into(),
            Type::Sequence(inner) => format!("Vec<{}>", self.rust_type(inner)),
            Type::Named(n) => {
                let abs = n.joined();
                if self.checked.interfaces.contains_key(&abs) {
                    self.client_path(&abs)
                } else if self.checked.typedefs.contains_key(&abs) {
                    self.path_to(&abs, camel)
                } else {
                    // Struct or enum.
                    self.path_to(&abs, camel)
                }
            }
        }
    }

    /// Minimal encoded size of one value of `ty`, for length-prefix guards.
    fn min_size(&self, ty: &Type) -> usize {
        match self.underlying(ty) {
            Type::Void => 0,
            Type::Bool | Type::Octet => 1,
            Type::Short | Type::UShort => 2,
            Type::Long | Type::ULong | Type::Float => 4,
            Type::LongLong | Type::ULongLong | Type::Double => 8,
            Type::Str | Type::Sequence(_) => 4,
            Type::Object | Type::Named(_) => {
                match self.underlying(ty) {
                    Type::Named(n) => {
                        let abs = n.joined();
                        if let Some(s) = self.checked.structs.get(&abs) {
                            s.fields
                                .iter()
                                .map(|f| self.min_size(&f.ty))
                                .sum::<usize>()
                                .max(1)
                        } else if self.checked.enums.contains_key(&abs) {
                            4
                        } else {
                            // Interface: header + door slot, at least.
                            12
                        }
                    }
                    _ => 12,
                }
            }
        }
    }

    /// Emits statements encoding `value` (a data value, not an object) into
    /// the buffer expression `buf` (already `&mut CommBuffer`-compatible).
    fn emit_encode(&mut self, ty: &Type, value: &str, buf: &str) {
        let ty = self.underlying(ty).clone();
        match &ty {
            Type::Void => {}
            Type::Bool => self.out.line(format!("{buf}.put_bool({value});")),
            Type::Octet => self.out.line(format!("{buf}.put_u8({value});")),
            Type::Short => self.out.line(format!("{buf}.put_i16({value});")),
            Type::UShort => self.out.line(format!("{buf}.put_u16({value});")),
            Type::Long => self.out.line(format!("{buf}.put_i32({value});")),
            Type::ULong => self.out.line(format!("{buf}.put_u32({value});")),
            Type::LongLong => self.out.line(format!("{buf}.put_i64({value});")),
            Type::ULongLong => self.out.line(format!("{buf}.put_u64({value});")),
            Type::Float => self.out.line(format!("{buf}.put_f32({value});")),
            Type::Double => self.out.line(format!("{buf}.put_f64({value});")),
            Type::Str => self.out.line(format!("{buf}.put_string(&{value});")),
            Type::Object => unreachable!("objects are handled at op level"),
            Type::Sequence(inner) => {
                if matches!(self.underlying(inner), Type::Octet) {
                    self.out.line(format!("{buf}.put_bytes(&{value});"));
                } else {
                    self.out.line(format!("{buf}.put_seq_len({value}.len());"));
                    self.out.open(format!("for __it in &{value} {{"));
                    self.emit_encode(inner, "(*__it)", buf);
                    self.out.close("}");
                }
            }
            Type::Named(_) => {
                // In argument position the reborrow parens are redundant.
                let arg = buf
                    .strip_prefix('(')
                    .and_then(|b| b.strip_suffix(')'))
                    .unwrap_or(buf);
                self.out.line(format!("({value}).idl_encode({arg});"));
            }
        }
    }

    fn is_copy_prim(&self, ty: &Type) -> bool {
        match self.underlying(ty) {
            Type::Bool
            | Type::Octet
            | Type::Short
            | Type::UShort
            | Type::Long
            | Type::ULong
            | Type::LongLong
            | Type::ULongLong
            | Type::Float
            | Type::Double => true,
            // Enums are `Copy` in the generated code; pass them by value.
            Type::Named(n) => self.checked.enums.contains_key(&n.joined()),
            _ => false,
        }
    }

    /// Expression decoding one data value of `ty` from `buf`.
    fn decode_expr(&self, ty: &Type, buf: &str) -> String {
        match self.underlying(ty).clone() {
            Type::Void => "()".into(),
            Type::Bool => format!("{buf}.get_bool()?"),
            Type::Octet => format!("{buf}.get_u8()?"),
            Type::Short => format!("{buf}.get_i16()?"),
            Type::UShort => format!("{buf}.get_u16()?"),
            Type::Long => format!("{buf}.get_i32()?"),
            Type::ULong => format!("{buf}.get_u32()?"),
            Type::LongLong => format!("{buf}.get_i64()?"),
            Type::ULongLong => format!("{buf}.get_u64()?"),
            Type::Float => format!("{buf}.get_f32()?"),
            Type::Double => format!("{buf}.get_f64()?"),
            Type::Str => format!("{buf}.get_string()?"),
            Type::Object => unreachable!("objects are handled at op level"),
            Type::Sequence(inner) => {
                if matches!(self.underlying(&inner), Type::Octet) {
                    format!("{buf}.get_bytes()?")
                } else {
                    let min = self.min_size(&inner).max(1);
                    let elem = self.decode_expr(&inner, buf);
                    format!(
                        "{{ let __n = {buf}.get_seq_len({min})?; \
                         let mut __v = Vec::with_capacity(__n); \
                         for _ in 0..__n {{ __v.push({elem}); }} __v }}"
                    )
                }
            }
            Type::Named(n) => {
                let abs = n.joined();
                // In argument position the reborrow parens are redundant.
                let arg = buf
                    .strip_prefix('(')
                    .and_then(|b| b.strip_suffix(')'))
                    .unwrap_or(buf);
                format!("{}::idl_decode({arg})?", self.path_to(&abs, camel))
            }
        }
    }

    fn spec(&mut self, defs: &[Definition]) {
        for def in defs {
            match def {
                Definition::Module(m) => {
                    self.out.line("");
                    self.out.open(format!("pub mod {} {{", sanitize(&m.name)));
                    self.depth += 1;
                    self.spec(&m.definitions);
                    self.depth -= 1;
                    self.out.close("}");
                }
                Definition::Interface(i) => self.interface(i),
                Definition::Struct(s) => self.struct_def(&s.name, &s.fields, None),
                Definition::Exception(e) => {
                    self.struct_def(&e.name, &e.fields, Some(&e.name));
                }
                Definition::Enum(e) => self.enum_def(e),
                Definition::Typedef(t) => {
                    let rust = self.rust_type(&t.ty);
                    self.out
                        .line(format!("pub type {} = {};", camel(&t.name), rust));
                }
                Definition::Const(c) => self.const_def(c),
            }
        }
    }

    fn const_def(&mut self, c: &ConstDef) {
        let (ty, value) = match (&c.ty, &c.value) {
            (Type::Str, ConstValue::Str(s)) => ("&str".to_owned(), format!("{s:?}")),
            (Type::Bool, ConstValue::Bool(b)) => ("bool".to_owned(), b.to_string()),
            (t, ConstValue::Int(v)) => (self.rust_type(t), v.to_string()),
            _ => unreachable!("validated by the checker"),
        };
        self.out.line(format!(
            "pub const {}: {} = {};",
            upper_snake(&c.name),
            ty,
            value
        ));
    }

    fn struct_def(&mut self, name: &str, fields: &[Field], _exception: Option<&str>) {
        let rust_name = camel(name);
        self.out.line("");
        self.out.line("#[derive(Clone, Debug, PartialEq)]");
        self.out.open(format!("pub struct {rust_name} {{"));
        for f in fields {
            let field_ty = self.rust_type(&f.ty);
            self.out
                .line(format!("pub {}: {},", sanitize(&f.name), field_ty));
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {rust_name} {{"));
        self.out
            .open("pub fn idl_encode(&self, buf: &mut ::spring_buf::CommBuffer) {");
        for f in fields {
            self.emit_encode(&f.ty.clone(), &format!("self.{}", sanitize(&f.name)), "buf");
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "pub fn idl_decode(buf: &mut ::spring_buf::CommBuffer) \
             -> ::std::result::Result<Self, ::subcontract::SpringError> {",
        );
        self.out.open("Ok(Self {");
        for f in fields {
            let expr = self.decode_expr(&f.ty, "buf");
            self.out.line(format!("{}: {},", sanitize(&f.name), expr));
        }
        self.out.close("})");
        self.out.close("}");
        self.out.close("}");
    }

    fn enum_def(&mut self, e: &EnumDef) {
        let rust_name = camel(&e.name);
        self.out.line("");
        self.out
            .line("#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]");
        self.out.open(format!("pub enum {rust_name} {{"));
        for v in &e.variants {
            self.out.line(format!("{},", camel(v)));
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {rust_name} {{"));
        self.out
            .open("pub fn idl_encode(&self, buf: &mut ::spring_buf::CommBuffer) {");
        self.out.open("buf.put_u32(match self {");
        for (i, v) in e.variants.iter().enumerate() {
            self.out.line(format!("{rust_name}::{} => {i},", camel(v)));
        }
        self.out.close("});");
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "pub fn idl_decode(buf: &mut ::spring_buf::CommBuffer) \
             -> ::std::result::Result<Self, ::subcontract::SpringError> {",
        );
        self.out.open("Ok(match buf.get_u32()? {");
        for (i, v) in e.variants.iter().enumerate() {
            self.out.line(format!("{i} => {rust_name}::{},", camel(v)));
        }
        self.out.line(
            "__tag => return Err(::subcontract::SpringError::Buf(\
             ::spring_buf::BufError::InvalidEnumTag(__tag))),",
        );
        self.out.close("})");
        self.out.close("}");
        self.out.close("}");
    }

    /// The absolute IDL name of an interface declared at the current depth.
    fn abs_of(&self, i: &Interface) -> String {
        // The checker stored interfaces by absolute name; find the matching
        // declaration by identity of name + line.
        self.checked
            .interfaces
            .values()
            .find(|info| info.decl.name == i.name && info.decl.line == i.line)
            .map(|info| info.abs.clone())
            .expect("interface registered by the checker")
    }

    fn interface(&mut self, i: &Interface) {
        let abs = self.abs_of(i);
        let info = self.checked.interfaces[&abs].clone();
        self.type_info_static(&info);
        self.ops_module(&info);
        self.error_enum(&info);
        self.client_struct(&info);
        self.servant_trait(&info);
        self.skeleton(&info);
    }

    fn type_info_static(&mut self, info: &InterfaceInfo) {
        let name = upper_snake(&info.decl.name);
        self.out.line("");
        self.out
            .line(format!("/// Run-time type information for `{}`.", info.abs));
        self.out.open(format!(
            "pub static {name}_TYPE: ::subcontract::TypeInfo = ::subcontract::TypeInfo {{"
        ));
        self.out.line(format!("name: {:?},", info.abs));
        if info.parents.is_empty() {
            self.out.line("parents: &[&::subcontract::OBJECT_TYPE],");
        } else {
            let list: Vec<String> = info
                .parents
                .iter()
                .map(|p| format!("&{}", self.type_info_path(p)))
                .collect();
            self.out.line(format!("parents: &[{}],", list.join(", ")));
        }
        self.out.line(format!(
            "default_subcontract: ::subcontract::ScId::from_name({:?}),",
            info.decl.subcontract
        ));
        self.out.close("};");
    }

    fn ops_module(&mut self, info: &InterfaceInfo) {
        self.out.line("");
        self.out
            .line(format!("/// Operation numbers for `{}`.", info.abs));
        self.out.open(format!("pub mod {}_ops {{", info.decl.name));
        for f in &info.flat_ops {
            self.out.line(format!(
                "pub const {}: u32 = {:#010x};",
                upper_snake(&f.op.name),
                op_hash32(&f.op.name)
            ));
        }
        self.out.close("}");
    }

    fn error_enum(&mut self, info: &InterfaceInfo) {
        let name = format!("{}Error", camel(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Errors raised by `{}`'s own operations.",
            info.abs
        ));
        self.out.line("#[derive(Debug)]");
        self.out.open(format!("pub enum {name} {{"));
        for e in &info.exceptions {
            let variant = camel(e.rsplit("::").next().unwrap());
            self.out
                .line(format!("{variant}({}),", self.exception_path(e)));
        }
        self.out.line("System(::subcontract::SpringError),");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!(
            "impl From<::subcontract::SpringError> for {name} {{"
        ));
        self.out
            .open("fn from(e: ::subcontract::SpringError) -> Self {");
        self.out.line(format!("{name}::System(e)"));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .open(format!("impl From<::spring_buf::BufError> for {name} {{"));
        self.out
            .open("fn from(e: ::spring_buf::BufError) -> Self {");
        self.out.line(format!(
            "{name}::System(::subcontract::SpringError::Buf(e))"
        ));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .open(format!("impl ::std::fmt::Display for {name} {{"));
        self.out
            .open("fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {");
        self.out.open("match self {");
        for e in &info.exceptions {
            let variant = camel(e.rsplit("::").next().unwrap());
            self.out.line(format!(
                "{name}::{variant}(__e) => write!(f, \"{e}: {{:?}}\", __e),"
            ));
        }
        self.out
            .line(format!("{name}::System(__e) => write!(f, \"{{}}\", __e),"));
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .line(format!("impl ::std::error::Error for {name} {{}}"));
    }

    /// Returns the list of values an operation yields, in wire order:
    /// the return value first (when non-void), then out/inout parameters.
    fn op_returns<'o>(&self, op: &'o Operation) -> Vec<(&'o str, &'o Type)> {
        let mut out = Vec::new();
        if op.ret != Type::Void {
            out.push(("__ret", &op.ret));
        }
        for p in &op.params {
            if matches!(p.mode, ParamMode::Out | ParamMode::InOut) {
                out.push((p.name.as_str(), &p.ty));
            }
        }
        out
    }

    fn returns_type(&self, op: &Operation) -> String {
        let rets = self.op_returns(op);
        match rets.len() {
            0 => "()".into(),
            1 => self.rust_type(rets[0].1),
            _ => {
                let list: Vec<String> = rets.iter().map(|(_, t)| self.rust_type(t)).collect();
                format!("({})", list.join(", "))
            }
        }
    }

    fn client_struct(&mut self, info: &InterfaceInfo) {
        let name = camel(&info.decl.name);
        let tinfo = format!("{}_TYPE", upper_snake(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Client stub for `{}` (subcontract-independent).",
            info.abs
        ));
        self.out.line("#[derive(Debug)]");
        self.out.open(format!("pub struct {name} {{"));
        self.out.line("obj: ::subcontract::SpringObj,");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {name} {{"));
        self.out
            .line("/// Wraps an object, verifying its run-time type.");
        self.out.open(
            "pub fn from_obj(obj: ::subcontract::SpringObj) -> ::subcontract::Result<Self> {",
        );
        self.out.line(format!("obj.narrow(&{tinfo})?;"));
        self.out.line(format!("Ok({name} {{ obj }})"));
        self.out.close("}");
        self.out.line("");
        self.out.line("/// The wrapped object.");
        self.out
            .open("pub fn obj(&self) -> &::subcontract::SpringObj {");
        self.out.line("&self.obj");
        self.out.close("}");
        self.out.line("");
        self.out.line("/// Unwraps the object.");
        self.out
            .open("pub fn into_obj(self) -> ::subcontract::SpringObj {");
        self.out.line("self.obj");
        self.out.close("}");
        self.out.line("");
        self.out.line("/// Shallow-copies the object (§7).");
        self.out
            .open("pub fn copy(&self) -> ::subcontract::Result<Self> {");
        self.out
            .line(format!("Ok({name} {{ obj: self.obj.copy()? }})"));
        self.out.close("}");

        for f in info.flat_ops.clone() {
            self.client_method(info, &f.owner, &f.op);
        }
        self.out.close("}");
    }

    fn client_method(&mut self, info: &InterfaceInfo, owner: &str, op: &Operation) {
        let err_ty = self.error_path(owner);
        let ops_mod = self.ops_mod_path(&info.abs);
        let ret_ty = self.returns_type(op);

        let mut sig_params = Vec::new();
        for p in &op.params {
            let pname = sanitize(&p.name);
            let ty = &p.ty;
            match p.mode {
                ParamMode::In | ParamMode::InOut => {
                    if self.is_object(ty) || self.is_copy_prim(ty) {
                        sig_params.push(format!("{pname}: {}", self.rust_type(ty)));
                    } else {
                        sig_params.push(format!("{pname}: {}", self.client_ref_type(ty)));
                    }
                }
                ParamMode::Copy => {
                    sig_params.push(format!("{pname}: &{}", self.rust_type(ty)));
                }
                ParamMode::Out => {}
            }
        }

        self.out.line("");
        self.out.line(format!(
            "/// Invokes `{}::{}` on the remote object.",
            owner, op.name
        ));
        self.out.open(format!(
            "pub fn {}(&self{}{}) -> ::std::result::Result<{ret_ty}, {err_ty}> {{",
            sanitize(&op.name),
            if sig_params.is_empty() { "" } else { ", " },
            sig_params.join(", ")
        ));
        self.out.line(format!(
            "let mut __call = self.obj.start_call({ops_mod}::{})?;",
            upper_snake(&op.name)
        ));
        for p in &op.params {
            let pname = sanitize(&p.name);
            match p.mode {
                ParamMode::Out => {}
                ParamMode::Copy => {
                    if matches!(self.underlying(&p.ty), Type::Object) {
                        self.out
                            .line(format!("{pname}.marshal_copy(&mut __call)?;"));
                    } else {
                        self.out
                            .line(format!("{pname}.obj().marshal_copy(&mut __call)?;"));
                    }
                }
                ParamMode::In | ParamMode::InOut => {
                    if self.is_object(&p.ty) {
                        if matches!(self.underlying(&p.ty), Type::Object) {
                            self.out.line(format!("{pname}.marshal(&mut __call)?;"));
                        } else {
                            self.out
                                .line(format!("{pname}.into_obj().marshal(&mut __call)?;"));
                        }
                    } else {
                        let value = if self.is_copy_prim(&p.ty) {
                            pname.clone()
                        } else {
                            format!("(*{pname})")
                        };
                        self.emit_encode(&p.ty.clone(), &value, "(&mut __call)");
                    }
                }
            }
        }
        self.out.line("let mut __reply = self.obj.invoke(__call)?;");
        self.out
            .open("match ::subcontract::decode_reply_status(&mut __reply)? {");
        self.out.open("::subcontract::ReplyStatus::Ok => {");
        let rets = self.op_returns_owned(op);
        let mut ret_exprs = Vec::new();
        for (idx, (_, ty)) in rets.iter().enumerate() {
            let var = format!("__r{idx}");
            if self.is_object(ty) {
                let expected = match self.underlying(ty) {
                    Type::Object => "&::subcontract::OBJECT_TYPE".to_owned(),
                    Type::Named(n) => format!("&{}", self.type_info_path(&n.joined())),
                    _ => unreachable!(),
                };
                self.out.line(format!(
                    "let {var} = ::subcontract::unmarshal_object(self.obj.ctx(), {expected}, &mut __reply)?;"
                ));
                if !matches!(self.underlying(ty), Type::Object) {
                    let client = self.rust_type(ty);
                    self.out
                        .line(format!("let {var} = {client}::from_obj({var})?;"));
                }
            } else {
                let expr = self.decode_expr(ty, "(&mut __reply)");
                self.out.line(format!("let {var} = {expr};"));
            }
            ret_exprs.push(var);
        }
        match ret_exprs.len() {
            0 => self.out.line("Ok(())"),
            1 => self.out.line(format!("Ok({})", ret_exprs[0])),
            _ => self.out.line(format!("Ok(({}))", ret_exprs.join(", "))),
        }
        self.out.close("}");
        self.out
            .open("::subcontract::ReplyStatus::UserException(__name) => match __name.as_str() {");
        for r in &op.raises {
            let abs = r.joined();
            let variant = camel(abs.rsplit("::").next().unwrap());
            let exn = self.exception_path(&abs);
            self.out.line(format!(
                "{:?} => Err({err_ty}::{variant}({exn}::idl_decode(&mut __reply)?)),",
                abs
            ));
        }
        self.out.line(format!(
            "__other => Err({err_ty}::System(\
             ::subcontract::SpringError::UnknownUserException(__other.to_owned()))),"
        ));
        self.out.close("},");
        self.out.close("}");
        self.out.close("}");
    }

    /// Borrowed client-side parameter type for non-object data: `&str`,
    /// `&[T]`, or `&Struct`.
    fn client_ref_type(&self, ty: &Type) -> String {
        match self.underlying(ty) {
            Type::Str => "&str".to_owned(),
            Type::Sequence(inner) => format!("&[{}]", self.rust_type(inner)),
            other => format!("&{}", self.rust_type(&other.clone())),
        }
    }

    /// Owned variant of [`Gen::op_returns`] (avoids borrow tangles).
    fn op_returns_owned(&self, op: &Operation) -> Vec<(String, Type)> {
        self.op_returns(op)
            .into_iter()
            .map(|(n, t)| (n.to_owned(), t.clone()))
            .collect()
    }

    fn servant_trait(&mut self, info: &InterfaceInfo) {
        let name = format!("{}Servant", camel(&info.decl.name));
        let supertraits = if info.parents.is_empty() {
            "Send + Sync + 'static".to_owned()
        } else {
            info.parents
                .iter()
                .map(|p| self.servant_path(p))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        self.out.line("");
        self.out.line(format!(
            "/// Server application interface for `{}`.",
            info.abs
        ));
        self.out.open(format!("pub trait {name}: {supertraits} {{"));
        for op in info.decl.ops.clone() {
            let err_ty = self.error_path(&info.abs);
            let ret_ty = self.returns_type(&op);
            let mut params = Vec::new();
            for p in &op.params {
                if matches!(p.mode, ParamMode::Out) {
                    continue;
                }
                params.push(format!("{}: {}", sanitize(&p.name), self.rust_type(&p.ty)));
            }
            self.out
                .line(format!("/// Serves `{}::{}`.", info.abs, op.name));
            self.out.line(format!(
                "fn {}(&self{}{}) -> ::std::result::Result<{ret_ty}, {err_ty}>;",
                sanitize(&op.name),
                if params.is_empty() { "" } else { ", " },
                params.join(", ")
            ));
        }
        self.out.close("}");
    }

    fn skeleton(&mut self, info: &InterfaceInfo) {
        let iface = camel(&info.decl.name);
        let name = format!("{iface}Skeleton");
        let servant = format!("{iface}Servant");
        let tinfo = format!("{}_TYPE", upper_snake(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Server-side stub (skeleton) for `{}`: unmarshals arguments \
             and calls into the server application (§4).",
            info.abs
        ));
        self.out.open(format!("pub struct {name}<S: {servant}> {{"));
        self.out.line("servant: ::std::sync::Arc<S>,");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl<S: {servant}> {name}<S> {{"));
        self.out
            .line("/// Wraps a servant for export through any server subcontract.");
        self.out
            .open("pub fn new(servant: ::std::sync::Arc<S>) -> ::std::sync::Arc<Self> {");
        self.out
            .line(format!("::std::sync::Arc::new({name} {{ servant }})"));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!(
            "impl<S: {servant}> ::subcontract::Dispatch for {name}<S> {{"
        ));
        self.out
            .open("fn type_info(&self) -> &'static ::subcontract::TypeInfo {");
        self.out.line(format!("&{tinfo}"));
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "fn dispatch(&self, __sctx: &::subcontract::ServerCtx, __op: u32, \
             __args: &mut ::spring_buf::CommBuffer, __reply: &mut ::spring_buf::CommBuffer) \
             -> ::subcontract::Result<()> {",
        );
        self.out.open("match __op {");
        for f in info.flat_ops.clone() {
            self.skeleton_arm(info, &f.owner, &f.op);
        }
        self.out
            .line("__other => Err(::subcontract::SpringError::UnknownOp(__other)),");
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
    }

    fn skeleton_arm(&mut self, info: &InterfaceInfo, owner: &str, op: &Operation) {
        let ops_mod = self.ops_mod_path(&info.abs);
        let err_ty = self.error_path(owner);
        self.out.open(format!(
            "__x if __x == {ops_mod}::{} => {{",
            upper_snake(&op.name)
        ));

        // Unmarshal in/inout/copy arguments in declaration order.
        let mut call_args = Vec::new();
        for p in &op.params {
            let pname = format!("__a_{}", sanitize(&p.name));
            match p.mode {
                ParamMode::Out => continue,
                _ => {
                    if self.is_object(&p.ty) {
                        let expected = match self.underlying(&p.ty) {
                            Type::Object => "&::subcontract::OBJECT_TYPE".to_owned(),
                            Type::Named(n) => format!("&{}", self.type_info_path(&n.joined())),
                            _ => unreachable!(),
                        };
                        self.out.line(format!(
                            "let {pname} = ::subcontract::unmarshal_object(&__sctx.ctx, {expected}, __args)?;"
                        ));
                        if !matches!(self.underlying(&p.ty), Type::Object) {
                            let client = self.rust_type(&p.ty);
                            self.out
                                .line(format!("let {pname} = {client}::from_obj({pname})?;"));
                        }
                    } else {
                        let expr = self.decode_expr(&p.ty, "__args");
                        self.out.line(format!("let {pname} = {expr};"));
                    }
                    call_args.push(pname);
                }
            }
        }

        let rets = self.op_returns_owned(op);
        let ok_pattern = match rets.len() {
            0 => "Ok(())".to_owned(),
            1 => "Ok(__r0)".to_owned(),
            n => {
                let vars: Vec<String> = (0..n).map(|i| format!("__r{i}")).collect();
                format!("Ok(({}))", vars.join(", "))
            }
        };

        self.out.open(format!(
            "match self.servant.{}({}) {{",
            sanitize(&op.name),
            call_args.join(", ")
        ));
        self.out.open(format!("{ok_pattern} => {{"));
        self.out.line("::subcontract::encode_ok(__reply);");
        for (idx, (_, ty)) in rets.iter().enumerate() {
            let var = format!("__r{idx}");
            if self.is_object(ty) {
                if matches!(self.underlying(ty), Type::Object) {
                    self.out.line(format!("{var}.marshal(__reply)?;"));
                } else {
                    self.out
                        .line(format!("{var}.into_obj().marshal(__reply)?;"));
                }
            } else {
                self.emit_encode(ty, &var, "__reply");
            }
        }
        self.out.close("}");
        for r in &op.raises {
            let abs = r.joined();
            let variant = camel(abs.rsplit("::").next().unwrap());
            self.out
                .open(format!("Err({err_ty}::{variant}(__e)) => {{"));
            self.out.line(format!(
                "::subcontract::encode_user_exception(__reply, {abs:?});"
            ));
            self.out.line("__e.idl_encode(__reply);");
            self.out.close("}");
        }
        self.out
            .line(format!("Err({err_ty}::System(__e)) => return Err(__e),"));
        // Exceptions the operation did not declare are protocol violations;
        // report them as system errors rather than leaking them raw.
        let owner_exn_count = self.checked.interfaces[owner].exceptions.len();
        if op.raises.len() < owner_exn_count {
            self.out.open("Err(__e) => {");
            self.out.line(
                "::subcontract::encode_system_error(__reply, \
                 &::std::string::ToString::to_string(&__e));",
            );
            self.out.close("}");
        }
        self.out.close("}");
        self.out.line("Ok(())");
        self.out.close("}");
    }
}

/// Generates Rust code for a checked spec.
pub fn generate(checked: &CheckedSpec) -> String {
    let mut gen = Gen {
        checked,
        out: Out {
            buf: String::new(),
            indent: 0,
        },
        depth: 0,
    };
    gen.out
        .line("// Generated by idlc (spring-idl). Do not edit.");
    gen.out.line("");
    gen.spec(&checked.spec.definitions);
    gen.out.buf
}
