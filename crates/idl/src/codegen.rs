//! Rust code generation.
//!
//! For each interface the generator emits, mirroring the IDL module tree:
//!
//! * a `TypeInfo` static encoding the inheritance graph and the default
//!   subcontract chosen by the `[subcontract = ...]` annotation;
//! * an operations module with the 32-bit wire numbers;
//! * a client struct (the "method table" of §4) whose methods run
//!   `start_call` → marshal → `invoke` → unmarshal, fully independent of
//!   the object's subcontract;
//! * a servant trait (inheriting its parents' servant traits) and a
//!   skeleton implementing `subcontract::Dispatch` over the *flattened*
//!   method set;
//! * an error enum per interface covering its declared exceptions plus a
//!   `System` variant.
//!
//! Structs, enums, and exceptions get `idl_encode`/`idl_decode` methods;
//! object-typed parameters and results are marshalled through their own
//! subcontracts (`in` moves, `copy` copies — §5.1.5).

use std::fmt::Write as _;

use crate::ast::*;
use crate::check::{op_hash32, CheckedSpec, InterfaceInfo};

/// Converts `snake_or_lower` to `UpperCamel`.
fn camel(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut upper = true;
    for c in s.chars() {
        if c == '_' {
            upper = true;
        } else if upper {
            out.extend(c.to_uppercase());
            upper = false;
        } else {
            out.push(c);
        }
    }
    out
}

/// Converts to `UPPER_SNAKE`.
fn upper_snake(s: &str) -> String {
    s.to_uppercase()
}

/// Byte offset rounded up to `align` (a power of two).
fn align_up(offset: usize, align: usize) -> usize {
    (offset + align - 1) & !(align - 1)
}

/// Escapes Rust keywords in value position (parameters, fields).
fn sanitize(s: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false",
        "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
        "ref", "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe",
        "use", "where", "while", "async", "await", "box", "final", "macro", "override", "priv",
        "try", "typeof", "unsized", "virtual", "yield",
    ];
    if KEYWORDS.contains(&s) {
        format!("{s}_")
    } else {
        s.to_owned()
    }
}

/// A fixed-shape argument record: total footprint plus each parameter's
/// `(offset, name, type)` in declaration order.
type FlatArgs = (usize, Vec<(usize, String, Type)>);

/// Indentation-aware output writer.
struct Out {
    buf: String,
    indent: usize,
}

impl Out {
    fn line(&mut self, s: impl AsRef<str>) {
        let s = s.as_ref();
        if s.is_empty() {
            self.buf.push('\n');
        } else {
            for _ in 0..self.indent {
                self.buf.push_str("    ");
            }
            self.buf.push_str(s);
            self.buf.push('\n');
        }
    }

    fn open(&mut self, s: impl AsRef<str>) {
        self.line(s);
        self.indent += 1;
    }

    fn close(&mut self, s: impl AsRef<str>) {
        self.indent -= 1;
        self.line(s);
    }
}

struct Gen<'a> {
    checked: &'a CheckedSpec,
    out: Out,
    /// Current module path within the generated tree.
    depth: usize,
}

impl Gen<'_> {
    /// Rust path from the current module to the item for `abs`, whose local
    /// Rust name is produced by `name_of`.
    fn path_to(&self, abs: &str, name_of: impl Fn(&str) -> String) -> String {
        let mut segments: Vec<&str> = abs.split("::").collect();
        let leaf = segments.pop().expect("non-empty path");
        let mut path = if self.depth == 0 {
            "self::".to_owned()
        } else {
            "super::".repeat(self.depth)
        };
        for m in segments {
            let _ = write!(path, "{m}::");
        }
        path + &name_of(leaf)
    }

    fn type_info_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}_TYPE", upper_snake(n)))
    }

    fn client_path(&self, abs: &str) -> String {
        self.path_to(abs, camel)
    }

    fn error_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}Error", camel(n)))
    }

    fn exception_path(&self, abs: &str) -> String {
        self.path_to(abs, camel)
    }

    fn servant_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}Servant", camel(n)))
    }

    fn ops_mod_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{n}_ops"))
    }

    /// Resolves a named data type through typedefs to its underlying type.
    fn underlying<'t>(&'t self, ty: &'t Type) -> &'t Type {
        if let Type::Named(n) = ty {
            if let Some(t) = self.checked.typedefs.get(&n.joined()) {
                return self.underlying(t);
            }
        }
        ty
    }

    /// True when the type denotes an object (interface or `object`).
    fn is_object(&self, ty: &Type) -> bool {
        match self.underlying(ty) {
            Type::Object => true,
            Type::Named(n) => self.checked.interfaces.contains_key(&n.joined()),
            _ => false,
        }
    }

    /// The Rust type for values of `ty` (client-facing and servant-facing).
    fn rust_type(&self, ty: &Type) -> String {
        match ty {
            Type::Void => "()".into(),
            Type::Bool => "bool".into(),
            Type::Octet => "u8".into(),
            Type::Short => "i16".into(),
            Type::UShort => "u16".into(),
            Type::Long => "i32".into(),
            Type::ULong => "u32".into(),
            Type::LongLong => "i64".into(),
            Type::ULongLong => "u64".into(),
            Type::Float => "f32".into(),
            Type::Double => "f64".into(),
            Type::Str => "String".into(),
            Type::Object => "::subcontract::SpringObj".into(),
            Type::Sequence(inner) => format!("Vec<{}>", self.rust_type(inner)),
            Type::Named(n) => {
                let abs = n.joined();
                if self.checked.interfaces.contains_key(&abs) {
                    self.client_path(&abs)
                } else if self.checked.typedefs.contains_key(&abs) {
                    self.path_to(&abs, camel)
                } else {
                    // Struct or enum.
                    self.path_to(&abs, camel)
                }
            }
        }
    }

    /// Minimal encoded size of one value of `ty`, for length-prefix guards.
    fn min_size(&self, ty: &Type) -> usize {
        match self.underlying(ty) {
            Type::Void => 0,
            Type::Bool | Type::Octet => 1,
            Type::Short | Type::UShort => 2,
            Type::Long | Type::ULong | Type::Float => 4,
            Type::LongLong | Type::ULongLong | Type::Double => 8,
            Type::Str | Type::Sequence(_) => 4,
            Type::Object | Type::Named(_) => {
                match self.underlying(ty) {
                    Type::Named(n) => {
                        let abs = n.joined();
                        if let Some(s) = self.checked.structs.get(&abs) {
                            s.fields
                                .iter()
                                .map(|f| self.min_size(&f.ty))
                                .sum::<usize>()
                                .max(1)
                        } else if self.checked.enums.contains_key(&abs) {
                            4
                        } else {
                            // Interface: header + door slot, at least.
                            12
                        }
                    }
                    _ => 12,
                }
            }
        }
    }

    /// Emits statements encoding `value` (a data value, not an object) into
    /// the buffer expression `buf` (already `&mut CommBuffer`-compatible).
    fn emit_encode(&mut self, ty: &Type, value: &str, buf: &str) {
        let ty = self.underlying(ty).clone();
        match &ty {
            Type::Void => {}
            Type::Bool => self.out.line(format!("{buf}.put_bool({value});")),
            Type::Octet => self.out.line(format!("{buf}.put_u8({value});")),
            Type::Short => self.out.line(format!("{buf}.put_i16({value});")),
            Type::UShort => self.out.line(format!("{buf}.put_u16({value});")),
            Type::Long => self.out.line(format!("{buf}.put_i32({value});")),
            Type::ULong => self.out.line(format!("{buf}.put_u32({value});")),
            Type::LongLong => self.out.line(format!("{buf}.put_i64({value});")),
            Type::ULongLong => self.out.line(format!("{buf}.put_u64({value});")),
            Type::Float => self.out.line(format!("{buf}.put_f32({value});")),
            Type::Double => self.out.line(format!("{buf}.put_f64({value});")),
            Type::Str => self.out.line(format!("{buf}.put_string(&{value});")),
            Type::Object => unreachable!("objects are handled at op level"),
            Type::Sequence(inner) => {
                if matches!(self.underlying(inner), Type::Octet) {
                    self.out.line(format!("{buf}.put_bytes(&{value});"));
                } else {
                    self.out.line(format!("{buf}.put_seq_len({value}.len());"));
                    self.out.open(format!("for __it in &{value} {{"));
                    self.emit_encode(inner, "(*__it)", buf);
                    self.out.close("}");
                }
            }
            Type::Named(_) => {
                // In argument position the reborrow parens are redundant.
                let arg = buf
                    .strip_prefix('(')
                    .and_then(|b| b.strip_suffix(')'))
                    .unwrap_or(buf);
                self.out.line(format!("({value}).idl_encode({arg});"));
            }
        }
    }

    /// Flat (fixed-shape) encoded size and alignment of `ty`, or `None` when
    /// the type is variable-shape (string, sequence, object) and must take
    /// the copying path. The flat layout rules: every value is aligned to
    /// `min(size, 8)` relative to an 8-aligned frame start, nested structs
    /// are aligned to 8, and enums are a 4-byte tag.
    fn flat_size_align(&self, ty: &Type) -> Option<(usize, usize)> {
        match self.underlying(ty) {
            Type::Bool | Type::Octet => Some((1, 1)),
            Type::Short | Type::UShort => Some((2, 2)),
            Type::Long | Type::ULong | Type::Float => Some((4, 4)),
            Type::LongLong | Type::ULongLong | Type::Double => Some((8, 8)),
            Type::Named(n) => {
                let abs = n.joined();
                if self.checked.enums.contains_key(&abs) {
                    Some((4, 4))
                } else if let Some(s) = self.checked.structs.get(&abs) {
                    let tys: Vec<Type> = s.fields.iter().map(|f| f.ty.clone()).collect();
                    Some((self.flat_layout(&tys)?.0, 8))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Offsets of the members of a flat record laid out from an 8-aligned
    /// frame start; returns `(footprint, offsets)`, or `None` if any member
    /// is variable-shape.
    fn flat_layout(&self, tys: &[Type]) -> Option<(usize, Vec<usize>)> {
        let mut cur = 0usize;
        let mut offsets = Vec::with_capacity(tys.len());
        for ty in tys {
            let (size, align) = self.flat_size_align(ty)?;
            let off = align_up(cur, align);
            offsets.push(off);
            cur = off + size;
        }
        Some((cur, offsets))
    }

    fn flat_view_path(&self, abs: &str) -> String {
        self.path_to(abs, |n| format!("{}View", camel(n)))
    }

    /// Emits the per-member tag/bool/nested-struct checks of a flat record
    /// in `b` (the length check is the caller's). Each emitted line ends in
    /// `?`, so the surrounding function needs a `From<WireError>` error.
    fn emit_flat_checks(&mut self, b: &str, members: &[(usize, Type)]) {
        for (off, ty) in members {
            match self.underlying(ty).clone() {
                Type::Bool => self
                    .out
                    .line(format!("::spring_buf::flat::check_bool({b}, {off})?;")),
                Type::Named(n) => {
                    let abs = n.joined();
                    if let Some(e) = self.checked.enums.get(&abs) {
                        let k = e.variants.len();
                        self.out
                            .line(format!("::spring_buf::flat::check_tag({b}, {off}, {k})?;"));
                    } else {
                        let (size, _) = self
                            .flat_size_align(&Type::Named(n.clone()))
                            .expect("fixed-shape member");
                        let end = off + size;
                        let path = self.path_to(&abs, camel);
                        self.out
                            .line(format!("{path}::validate(&{b}[{off}..{end}])?;"));
                    }
                }
                _ => {}
            }
        }
    }

    /// Expression reading one member of a *validated* flat record in `b` as
    /// an owned value. Infallible: validate already checked every tag.
    fn flat_read_expr(&self, ty: &Type, b: &str, off: usize) -> String {
        match self.underlying(ty) {
            Type::Bool => format!("::spring_buf::flat::get_bool({b}, {off})"),
            Type::Octet => format!("::spring_buf::flat::get_u8({b}, {off})"),
            Type::Short => format!("::spring_buf::flat::get_i16({b}, {off})"),
            Type::UShort => format!("::spring_buf::flat::get_u16({b}, {off})"),
            Type::Long => format!("::spring_buf::flat::get_i32({b}, {off})"),
            Type::ULong => format!("::spring_buf::flat::get_u32({b}, {off})"),
            Type::LongLong => format!("::spring_buf::flat::get_i64({b}, {off})"),
            Type::ULongLong => format!("::spring_buf::flat::get_u64({b}, {off})"),
            Type::Float => format!("::spring_buf::flat::get_f32({b}, {off})"),
            Type::Double => format!("::spring_buf::flat::get_f64({b}, {off})"),
            Type::Named(n) => {
                let abs = n.joined();
                if self.checked.enums.contains_key(&abs) {
                    format!(
                        "{}::from_tag(::spring_buf::flat::get_u32({b}, {off}))",
                        self.path_to(&abs, camel)
                    )
                } else {
                    let (size, _) = self.flat_size_align(ty).expect("fixed-shape member");
                    let end = off + size;
                    format!(
                        "{}::assume_valid(&{b}[{off}..{end}]).to_owned()",
                        self.flat_view_path(&abs)
                    )
                }
            }
            _ => unreachable!("flat members are fixed-shape"),
        }
    }

    /// In/inout parameters as `(footprint, [(offset, name, type)])` when the
    /// whole argument record is fixed-shape (which also rules out `copy`-mode
    /// object parameters); `None` sends the op down the copying path.
    fn flat_args(&self, op: &Operation) -> Option<FlatArgs> {
        if op.params.iter().any(|p| p.mode == ParamMode::Copy) {
            return None;
        }
        let ins: Vec<&Param> = op
            .params
            .iter()
            .filter(|p| matches!(p.mode, ParamMode::In | ParamMode::InOut))
            .collect();
        if ins.is_empty() {
            return None;
        }
        let tys: Vec<Type> = ins.iter().map(|p| p.ty.clone()).collect();
        let (footprint, offsets) = self.flat_layout(&tys)?;
        Some((
            footprint,
            ins.iter()
                .zip(offsets)
                .map(|(p, off)| (off, sanitize(&p.name), p.ty.clone()))
                .collect(),
        ))
    }

    /// Reply values (return value, then out/inout parameters) as one flat
    /// record; `None` when any is variable-shape or there are none.
    fn flat_rets(&self, op: &Operation) -> Option<(usize, Vec<(usize, Type)>)> {
        let rets = self.op_returns_owned(op);
        if rets.is_empty() {
            return None;
        }
        let tys: Vec<Type> = rets.iter().map(|(_, t)| t.clone()).collect();
        let (footprint, offsets) = self.flat_layout(&tys)?;
        Some((footprint, offsets.into_iter().zip(tys).collect()))
    }

    fn is_copy_prim(&self, ty: &Type) -> bool {
        match self.underlying(ty) {
            Type::Bool
            | Type::Octet
            | Type::Short
            | Type::UShort
            | Type::Long
            | Type::ULong
            | Type::LongLong
            | Type::ULongLong
            | Type::Float
            | Type::Double => true,
            // Enums are `Copy` in the generated code; pass them by value.
            Type::Named(n) => self.checked.enums.contains_key(&n.joined()),
            _ => false,
        }
    }

    /// Expression decoding one data value of `ty` from `buf`.
    fn decode_expr(&self, ty: &Type, buf: &str) -> String {
        match self.underlying(ty).clone() {
            Type::Void => "()".into(),
            Type::Bool => format!("{buf}.get_bool()?"),
            Type::Octet => format!("{buf}.get_u8()?"),
            Type::Short => format!("{buf}.get_i16()?"),
            Type::UShort => format!("{buf}.get_u16()?"),
            Type::Long => format!("{buf}.get_i32()?"),
            Type::ULong => format!("{buf}.get_u32()?"),
            Type::LongLong => format!("{buf}.get_i64()?"),
            Type::ULongLong => format!("{buf}.get_u64()?"),
            Type::Float => format!("{buf}.get_f32()?"),
            Type::Double => format!("{buf}.get_f64()?"),
            Type::Str => format!("{buf}.get_string()?"),
            Type::Object => unreachable!("objects are handled at op level"),
            Type::Sequence(inner) => {
                if matches!(self.underlying(&inner), Type::Octet) {
                    format!("{buf}.get_bytes()?")
                } else {
                    let min = self.min_size(&inner).max(1);
                    let elem = self.decode_expr(&inner, buf);
                    format!(
                        "{{ let __n = {buf}.get_seq_len({min})?; \
                         let mut __v = Vec::with_capacity(__n); \
                         for _ in 0..__n {{ __v.push({elem}); }} __v }}"
                    )
                }
            }
            Type::Named(n) => {
                let abs = n.joined();
                // In argument position the reborrow parens are redundant.
                let arg = buf
                    .strip_prefix('(')
                    .and_then(|b| b.strip_suffix(')'))
                    .unwrap_or(buf);
                format!("{}::idl_decode({arg})?", self.path_to(&abs, camel))
            }
        }
    }

    fn spec(&mut self, defs: &[Definition]) {
        for def in defs {
            match def {
                Definition::Module(m) => {
                    self.out.line("");
                    self.out.open(format!("pub mod {} {{", sanitize(&m.name)));
                    self.depth += 1;
                    self.spec(&m.definitions);
                    self.depth -= 1;
                    self.out.close("}");
                }
                Definition::Interface(i) => self.interface(i),
                Definition::Struct(s) => self.struct_def(&s.name, &s.fields, None),
                Definition::Exception(e) => {
                    self.struct_def(&e.name, &e.fields, Some(&e.name));
                }
                Definition::Enum(e) => self.enum_def(e),
                Definition::Typedef(t) => {
                    let rust = self.rust_type(&t.ty);
                    self.out
                        .line(format!("pub type {} = {};", camel(&t.name), rust));
                }
                Definition::Const(c) => self.const_def(c),
            }
        }
    }

    fn const_def(&mut self, c: &ConstDef) {
        let (ty, value) = match (&c.ty, &c.value) {
            (Type::Str, ConstValue::Str(s)) => ("&str".to_owned(), format!("{s:?}")),
            (Type::Bool, ConstValue::Bool(b)) => ("bool".to_owned(), b.to_string()),
            (t, ConstValue::Int(v)) => (self.rust_type(t), v.to_string()),
            _ => unreachable!("validated by the checker"),
        };
        self.out.line(format!(
            "pub const {}: {} = {};",
            upper_snake(&c.name),
            ty,
            value
        ));
    }

    fn struct_def(&mut self, name: &str, fields: &[Field], exception: Option<&str>) {
        let rust_name = camel(name);
        // Fixed-shape structs additionally get a flat layout: footprint,
        // validate, and a zero-copy borrowing view. Exceptions never do —
        // they travel after a variable-length exception name.
        let tys: Vec<Type> = fields.iter().map(|f| f.ty.clone()).collect();
        let flat = if exception.is_none() {
            self.flat_layout(&tys)
        } else {
            None
        };

        self.out.line("");
        self.out.line("#[derive(Clone, Debug, PartialEq)]");
        self.out.open(format!("pub struct {rust_name} {{"));
        for f in fields {
            let field_ty = self.rust_type(&f.ty);
            self.out
                .line(format!("pub {}: {},", sanitize(&f.name), field_ty));
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {rust_name} {{"));
        self.out
            .open("pub fn idl_encode(&self, buf: &mut ::spring_buf::CommBuffer) {");
        // Every struct frame starts 8-aligned so the flat offsets computed
        // relative to the frame start equal the absolute buffer offsets.
        self.out.line("buf.align8();");
        for f in fields {
            self.emit_encode(&f.ty.clone(), &format!("self.{}", sanitize(&f.name)), "buf");
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "pub fn idl_decode(buf: &mut ::spring_buf::CommBuffer) \
             -> ::std::result::Result<Self, ::subcontract::SpringError> {",
        );
        self.out.line("buf.skip_align8()?;");
        self.out.open("Ok(Self {");
        for f in fields {
            let expr = self.decode_expr(&f.ty, "buf");
            self.out.line(format!("{}: {},", sanitize(&f.name), expr));
        }
        self.out.close("})");
        self.out.close("}");
        if let Some((footprint, offsets)) = &flat {
            let members: Vec<(usize, Type)> = offsets.iter().copied().zip(tys.clone()).collect();
            self.out.line("");
            self.out
                .line("/// Exact flat-frame size from an 8-aligned frame start.");
            self.out.open("pub const fn footprint() -> usize {");
            self.out.line(format!("{footprint}"));
            self.out.close("}");
            self.out.line("");
            self.out
                .line("/// Bounds-and-tags check over one flat frame; views and");
            self.out
                .line("/// accessors are infallible afterwards (validate-then-cast).");
            self.out.open(
                "pub fn validate(__b: &[u8]) -> \
                 ::std::result::Result<(), ::spring_buf::WireError> {",
            );
            self.out
                .line(format!("::spring_buf::flat::check_len(__b, {footprint})?;"));
            self.emit_flat_checks("__b", &members);
            self.out.line("Ok(())");
            self.out.close("}");
        }
        self.out.close("}");

        if let Some((footprint, offsets)) = flat {
            self.struct_view(&rust_name, fields, footprint, &offsets);
        }
    }

    /// Emits the zero-copy borrowing view for a fixed-shape struct.
    fn struct_view(
        &mut self,
        rust_name: &str,
        fields: &[Field],
        footprint: usize,
        offsets: &[usize],
    ) {
        self.out.line("");
        self.out.line(format!(
            "/// Zero-copy view over a validated `{rust_name}` flat frame."
        ));
        self.out.line("#[derive(Clone, Copy, Debug)]");
        self.out.open(format!("pub struct {rust_name}View<'a> {{"));
        self.out.line("bytes: &'a [u8],");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl<'a> {rust_name}View<'a> {{"));
        self.out
            .line("/// Validates `bytes` and wraps them without copying.");
        self.out.open(
            "pub fn new(bytes: &'a [u8]) -> \
             ::std::result::Result<Self, ::spring_buf::WireError> {",
        );
        self.out.line(format!("{rust_name}::validate(bytes)?;"));
        self.out.line(format!("Ok({rust_name}View {{ bytes }})"));
        self.out.close("}");
        self.out.line("");
        self.out
            .line("/// Wraps bytes already covered by an enclosing `validate`.");
        self.out.line("#[doc(hidden)]");
        self.out
            .open("pub fn assume_valid(bytes: &'a [u8]) -> Self {");
        self.out.line(format!("{rust_name}View {{ bytes }}"));
        self.out.close("}");
        self.out.line("");
        self.out.line("/// The underlying frame bytes.");
        self.out.open("pub fn as_bytes(&self) -> &'a [u8] {");
        self.out.line("self.bytes");
        self.out.close("}");
        for (f, off) in fields.iter().zip(offsets) {
            let fname = sanitize(&f.name);
            self.out.line("");
            self.out
                .line(format!("/// Reads `{}` in place (offset {off}).", f.name));
            match self.underlying(&f.ty).clone() {
                Type::Named(n) if !self.checked.enums.contains_key(&n.joined()) => {
                    let abs = n.joined();
                    let (size, _) = self.flat_size_align(&f.ty).expect("fixed-shape field");
                    let end = off + size;
                    let view = self.flat_view_path(&abs);
                    self.out
                        .open(format!("pub fn {fname}(&self) -> {view}<'a> {{"));
                    self.out
                        .line(format!("{view}::assume_valid(&self.bytes[{off}..{end}])"));
                    self.out.close("}");
                }
                _ => {
                    let ret = self.rust_type(&f.ty);
                    let expr = self.flat_read_expr(&f.ty, "self.bytes", *off);
                    self.out.open(format!("pub fn {fname}(&self) -> {ret} {{"));
                    self.out.line(expr);
                    self.out.close("}");
                }
            }
        }
        self.out.line("");
        self.out
            .line("/// Copies the view into an owned value (scalar loads only).");
        self.out
            .open(format!("pub fn to_owned(self) -> {rust_name} {{"));
        self.out.open(format!("{rust_name} {{"));
        for f in fields {
            let fname = sanitize(&f.name);
            let expr = match self.underlying(&f.ty) {
                Type::Named(n) if !self.checked.enums.contains_key(&n.joined()) => {
                    format!("self.{fname}().to_owned()")
                }
                _ => format!("self.{fname}()"),
            };
            self.out.line(format!("{fname}: {expr},"));
        }
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!(
            "impl<'a> ::subcontract::FlatMessage<'a> for {rust_name}View<'a> {{"
        ));
        self.out
            .line(format!("const FOOTPRINT: usize = {footprint};"));
        self.out.line("");
        self.out.open(
            "fn validate(__b: &[u8]) -> \
             ::std::result::Result<(), ::spring_buf::WireError> {",
        );
        self.out.line(format!("{rust_name}::validate(__b)"));
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "fn view(__b: &'a [u8]) -> \
             ::std::result::Result<Self, ::spring_buf::WireError> {",
        );
        self.out.line("Self::new(__b)");
        self.out.close("}");
        self.out.close("}");
    }

    fn enum_def(&mut self, e: &EnumDef) {
        let rust_name = camel(&e.name);
        self.out.line("");
        self.out
            .line("#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]");
        self.out.open(format!("pub enum {rust_name} {{"));
        for v in &e.variants {
            self.out.line(format!("{},", camel(v)));
        }
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {rust_name} {{"));
        self.out
            .open("pub fn idl_encode(&self, buf: &mut ::spring_buf::CommBuffer) {");
        self.out.open("buf.put_u32(match self {");
        for (i, v) in e.variants.iter().enumerate() {
            self.out.line(format!("{rust_name}::{} => {i},", camel(v)));
        }
        self.out.close("});");
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "pub fn idl_decode(buf: &mut ::spring_buf::CommBuffer) \
             -> ::std::result::Result<Self, ::subcontract::SpringError> {",
        );
        self.out.open("Ok(match buf.get_u32()? {");
        for (i, v) in e.variants.iter().enumerate() {
            self.out.line(format!("{i} => {rust_name}::{},", camel(v)));
        }
        self.out.line(
            "__tag => return Err(::subcontract::SpringError::Buf(\
             ::spring_buf::BufError::InvalidEnumTag(__tag))),",
        );
        self.out.close("})");
        self.out.close("}");
        self.out.line("");
        self.out
            .line("/// Flat-frame check: a single in-range `u32` tag.");
        self.out.open(
            "pub fn validate(__b: &[u8]) -> \
             ::std::result::Result<(), ::spring_buf::WireError> {",
        );
        self.out.line("::spring_buf::flat::check_len(__b, 4)?;");
        self.out.line(format!(
            "::spring_buf::flat::check_tag(__b, 0, {})?;",
            e.variants.len()
        ));
        self.out.line("Ok(())");
        self.out.close("}");
        self.out.line("");
        self.out
            .line("/// Decodes a tag already range-checked by `validate`.");
        self.out.line("#[doc(hidden)]");
        self.out.open("pub fn from_tag(__tag: u32) -> Self {");
        self.out.open("match __tag {");
        for (i, v) in e.variants.iter().enumerate() {
            self.out.line(format!("{i} => {rust_name}::{},", camel(v)));
        }
        self.out
            .line("__t => unreachable!(\"enum tag {} after validate\", __t),");
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
    }

    /// The absolute IDL name of an interface declared at the current depth.
    fn abs_of(&self, i: &Interface) -> String {
        // The checker stored interfaces by absolute name; find the matching
        // declaration by identity of name + line.
        self.checked
            .interfaces
            .values()
            .find(|info| info.decl.name == i.name && info.decl.line == i.line)
            .map(|info| info.abs.clone())
            .expect("interface registered by the checker")
    }

    fn interface(&mut self, i: &Interface) {
        let abs = self.abs_of(i);
        let info = self.checked.interfaces[&abs].clone();
        self.type_info_static(&info);
        self.ops_module(&info);
        self.error_enum(&info);
        self.client_struct(&info);
        self.servant_trait(&info);
        self.skeleton(&info);
    }

    fn type_info_static(&mut self, info: &InterfaceInfo) {
        let name = upper_snake(&info.decl.name);
        self.out.line("");
        self.out
            .line(format!("/// Run-time type information for `{}`.", info.abs));
        self.out.open(format!(
            "pub static {name}_TYPE: ::subcontract::TypeInfo = ::subcontract::TypeInfo {{"
        ));
        self.out.line(format!("name: {:?},", info.abs));
        if info.parents.is_empty() {
            self.out.line("parents: &[&::subcontract::OBJECT_TYPE],");
        } else {
            let list: Vec<String> = info
                .parents
                .iter()
                .map(|p| format!("&{}", self.type_info_path(p)))
                .collect();
            self.out.line(format!("parents: &[{}],", list.join(", ")));
        }
        self.out.line(format!(
            "default_subcontract: ::subcontract::ScId::from_name({:?}),",
            info.decl.subcontract
        ));
        self.out.close("};");
    }

    fn ops_module(&mut self, info: &InterfaceInfo) {
        self.out.line("");
        self.out
            .line(format!("/// Operation numbers for `{}`.", info.abs));
        self.out.open(format!("pub mod {}_ops {{", info.decl.name));
        for f in &info.flat_ops {
            self.out.line(format!(
                "pub const {}: u32 = {:#010x};",
                upper_snake(&f.op.name),
                op_hash32(&f.op.name)
            ));
        }
        self.out.close("}");
    }

    fn error_enum(&mut self, info: &InterfaceInfo) {
        let name = format!("{}Error", camel(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Errors raised by `{}`'s own operations.",
            info.abs
        ));
        self.out.line("#[derive(Debug)]");
        self.out.open(format!("pub enum {name} {{"));
        for e in &info.exceptions {
            let variant = camel(e.rsplit("::").next().unwrap());
            self.out
                .line(format!("{variant}({}),", self.exception_path(e)));
        }
        self.out.line("System(::subcontract::SpringError),");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!(
            "impl From<::subcontract::SpringError> for {name} {{"
        ));
        self.out
            .open("fn from(e: ::subcontract::SpringError) -> Self {");
        self.out.line(format!("{name}::System(e)"));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .open(format!("impl From<::spring_buf::BufError> for {name} {{"));
        self.out
            .open("fn from(e: ::spring_buf::BufError) -> Self {");
        self.out.line(format!(
            "{name}::System(::subcontract::SpringError::Buf(e))"
        ));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .open(format!("impl From<::spring_buf::WireError> for {name} {{"));
        self.out
            .open("fn from(e: ::spring_buf::WireError) -> Self {");
        self.out.line(format!(
            "{name}::System(::subcontract::SpringError::Wire(e))"
        ));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .open(format!("impl ::std::fmt::Display for {name} {{"));
        self.out
            .open("fn fmt(&self, f: &mut ::std::fmt::Formatter<'_>) -> ::std::fmt::Result {");
        self.out.open("match self {");
        for e in &info.exceptions {
            let variant = camel(e.rsplit("::").next().unwrap());
            self.out.line(format!(
                "{name}::{variant}(__e) => write!(f, \"{e}: {{:?}}\", __e),"
            ));
        }
        self.out
            .line(format!("{name}::System(__e) => write!(f, \"{{}}\", __e),"));
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out
            .line(format!("impl ::std::error::Error for {name} {{}}"));
    }

    /// Returns the list of values an operation yields, in wire order:
    /// the return value first (when non-void), then out/inout parameters.
    fn op_returns<'o>(&self, op: &'o Operation) -> Vec<(&'o str, &'o Type)> {
        let mut out = Vec::new();
        if op.ret != Type::Void {
            out.push(("__ret", &op.ret));
        }
        for p in &op.params {
            if matches!(p.mode, ParamMode::Out | ParamMode::InOut) {
                out.push((p.name.as_str(), &p.ty));
            }
        }
        out
    }

    fn returns_type(&self, op: &Operation) -> String {
        let rets = self.op_returns(op);
        match rets.len() {
            0 => "()".into(),
            1 => self.rust_type(rets[0].1),
            _ => {
                let list: Vec<String> = rets.iter().map(|(_, t)| self.rust_type(t)).collect();
                format!("({})", list.join(", "))
            }
        }
    }

    fn client_struct(&mut self, info: &InterfaceInfo) {
        let name = camel(&info.decl.name);
        let tinfo = format!("{}_TYPE", upper_snake(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Client stub for `{}` (subcontract-independent).",
            info.abs
        ));
        self.out.line("#[derive(Debug)]");
        self.out.open(format!("pub struct {name} {{"));
        self.out.line("obj: ::subcontract::SpringObj,");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl {name} {{"));
        self.out
            .line("/// Wraps an object, verifying its run-time type.");
        self.out.open(
            "pub fn from_obj(obj: ::subcontract::SpringObj) -> ::subcontract::Result<Self> {",
        );
        self.out.line(format!("obj.narrow(&{tinfo})?;"));
        self.out.line(format!("Ok({name} {{ obj }})"));
        self.out.close("}");
        self.out.line("");
        self.out.line("/// The wrapped object.");
        self.out
            .open("pub fn obj(&self) -> &::subcontract::SpringObj {");
        self.out.line("&self.obj");
        self.out.close("}");
        self.out.line("");
        self.out.line("/// Unwraps the object.");
        self.out
            .open("pub fn into_obj(self) -> ::subcontract::SpringObj {");
        self.out.line("self.obj");
        self.out.close("}");
        self.out.line("");
        self.out.line("/// Shallow-copies the object (§7).");
        self.out
            .open("pub fn copy(&self) -> ::subcontract::Result<Self> {");
        self.out
            .line(format!("Ok({name} {{ obj: self.obj.copy()? }})"));
        self.out.close("}");

        for f in info.flat_ops.clone() {
            self.client_method(info, &f.owner, &f.op);
        }
        self.out.close("}");
    }

    fn client_method(&mut self, info: &InterfaceInfo, owner: &str, op: &Operation) {
        let err_ty = self.error_path(owner);
        let ops_mod = self.ops_mod_path(&info.abs);
        let ret_ty = self.returns_type(op);

        let mut sig_params = Vec::new();
        for p in &op.params {
            let pname = sanitize(&p.name);
            let ty = &p.ty;
            match p.mode {
                ParamMode::In | ParamMode::InOut => {
                    if self.is_object(ty) || self.is_copy_prim(ty) {
                        sig_params.push(format!("{pname}: {}", self.rust_type(ty)));
                    } else {
                        sig_params.push(format!("{pname}: {}", self.client_ref_type(ty)));
                    }
                }
                ParamMode::Copy => {
                    sig_params.push(format!("{pname}: &{}", self.rust_type(ty)));
                }
                ParamMode::Out => {}
            }
        }

        self.out.line("");
        self.out.line(format!(
            "/// Invokes `{}::{}` on the remote object.",
            owner, op.name
        ));
        self.out.open(format!(
            "pub fn {}(&self{}{}) -> ::std::result::Result<{ret_ty}, {err_ty}> {{",
            sanitize(&op.name),
            if sig_params.is_empty() { "" } else { ", " },
            sig_params.join(", ")
        ));
        self.out.line(format!(
            "let mut __call = self.obj.start_call({ops_mod}::{})?;",
            upper_snake(&op.name)
        ));
        if self.flat_args(op).is_some() {
            // Start the flat argument record at an 8-aligned buffer offset
            // so its compile-time field offsets hold absolutely; the
            // skeleton's `flat_remaining` skips the same padding.
            self.out.line("__call.align8();");
        }
        for p in &op.params {
            let pname = sanitize(&p.name);
            match p.mode {
                ParamMode::Out => {}
                ParamMode::Copy => {
                    if matches!(self.underlying(&p.ty), Type::Object) {
                        self.out
                            .line(format!("{pname}.marshal_copy(&mut __call)?;"));
                    } else {
                        self.out
                            .line(format!("{pname}.obj().marshal_copy(&mut __call)?;"));
                    }
                }
                ParamMode::In | ParamMode::InOut => {
                    if self.is_object(&p.ty) {
                        if matches!(self.underlying(&p.ty), Type::Object) {
                            self.out.line(format!("{pname}.marshal(&mut __call)?;"));
                        } else {
                            self.out
                                .line(format!("{pname}.into_obj().marshal(&mut __call)?;"));
                        }
                    } else {
                        let value = if self.is_copy_prim(&p.ty) {
                            pname.clone()
                        } else {
                            format!("(*{pname})")
                        };
                        self.emit_encode(&p.ty.clone(), &value, "(&mut __call)");
                    }
                }
            }
        }
        self.out.line("let mut __reply = self.obj.invoke(__call)?;");
        self.out
            .open("match ::subcontract::decode_reply_status(&mut __reply)? {");
        self.out.open("::subcontract::ReplyStatus::Ok => {");
        let rets = self.op_returns_owned(op);
        let mut ret_exprs = Vec::new();
        if let Some((footprint, members)) = self.flat_rets(op) {
            // Zero-copy reply unmarshal: one bounds check, tag checks, then
            // in-place reads at compile-time constant offsets.
            self.out.line("let __flat = __reply.flat_remaining()?;");
            self.out.line(format!(
                "::spring_buf::flat::check_len(__flat, {footprint})?;"
            ));
            self.emit_flat_checks("__flat", &members);
            for (idx, (off, ty)) in members.iter().enumerate() {
                let var = format!("__r{idx}");
                let expr = self.flat_read_expr(ty, "__flat", *off);
                self.out.line(format!("let {var} = {expr};"));
                ret_exprs.push(var);
            }
            match ret_exprs.len() {
                0 => unreachable!("flat_rets is None for void replies"),
                1 => self.out.line(format!("Ok({})", ret_exprs[0])),
                _ => self.out.line(format!("Ok(({}))", ret_exprs.join(", "))),
            }
            self.out.close("}");
            self.client_method_exn_arms(op, &err_ty);
            return;
        }
        for (idx, (_, ty)) in rets.iter().enumerate() {
            let var = format!("__r{idx}");
            if self.is_object(ty) {
                let expected = match self.underlying(ty) {
                    Type::Object => "&::subcontract::OBJECT_TYPE".to_owned(),
                    Type::Named(n) => format!("&{}", self.type_info_path(&n.joined())),
                    _ => unreachable!(),
                };
                self.out.line(format!(
                    "let {var} = ::subcontract::unmarshal_object(self.obj.ctx(), {expected}, &mut __reply)?;"
                ));
                if !matches!(self.underlying(ty), Type::Object) {
                    let client = self.rust_type(ty);
                    self.out
                        .line(format!("let {var} = {client}::from_obj({var})?;"));
                }
            } else {
                let expr = self.decode_expr(ty, "(&mut __reply)");
                self.out.line(format!("let {var} = {expr};"));
            }
            ret_exprs.push(var);
        }
        match ret_exprs.len() {
            0 => self.out.line("Ok(())"),
            1 => self.out.line(format!("Ok({})", ret_exprs[0])),
            _ => self.out.line(format!("Ok(({}))", ret_exprs.join(", "))),
        }
        self.out.close("}");
        self.client_method_exn_arms(op, &err_ty);
    }

    /// Emits the `UserException` arm of a client method's reply match and
    /// closes the match and the method.
    fn client_method_exn_arms(&mut self, op: &Operation, err_ty: &str) {
        self.out
            .open("::subcontract::ReplyStatus::UserException(__name) => match __name.as_str() {");
        for r in &op.raises {
            let abs = r.joined();
            let variant = camel(abs.rsplit("::").next().unwrap());
            let exn = self.exception_path(&abs);
            self.out.line(format!(
                "{:?} => Err({err_ty}::{variant}({exn}::idl_decode(&mut __reply)?)),",
                abs
            ));
        }
        self.out.line(format!(
            "__other => Err({err_ty}::System(\
             ::subcontract::SpringError::UnknownUserException(__other.to_owned()))),"
        ));
        self.out.close("},");
        self.out.close("}");
        self.out.close("}");
    }

    /// Borrowed client-side parameter type for non-object data: `&str`,
    /// `&[T]`, or `&Struct`.
    fn client_ref_type(&self, ty: &Type) -> String {
        match self.underlying(ty) {
            Type::Str => "&str".to_owned(),
            Type::Sequence(inner) => format!("&[{}]", self.rust_type(inner)),
            other => format!("&{}", self.rust_type(&other.clone())),
        }
    }

    /// Owned variant of [`Gen::op_returns`] (avoids borrow tangles).
    fn op_returns_owned(&self, op: &Operation) -> Vec<(String, Type)> {
        self.op_returns(op)
            .into_iter()
            .map(|(n, t)| (n.to_owned(), t.clone()))
            .collect()
    }

    fn servant_trait(&mut self, info: &InterfaceInfo) {
        let name = format!("{}Servant", camel(&info.decl.name));
        let supertraits = if info.parents.is_empty() {
            "Send + Sync + 'static".to_owned()
        } else {
            info.parents
                .iter()
                .map(|p| self.servant_path(p))
                .collect::<Vec<_>>()
                .join(" + ")
        };
        self.out.line("");
        self.out.line(format!(
            "/// Server application interface for `{}`.",
            info.abs
        ));
        self.out.open(format!("pub trait {name}: {supertraits} {{"));
        for op in info.decl.ops.clone() {
            let err_ty = self.error_path(&info.abs);
            let ret_ty = self.returns_type(&op);
            let mut params = Vec::new();
            for p in &op.params {
                if matches!(p.mode, ParamMode::Out) {
                    continue;
                }
                params.push(format!("{}: {}", sanitize(&p.name), self.rust_type(&p.ty)));
            }
            self.out
                .line(format!("/// Serves `{}::{}`.", info.abs, op.name));
            self.out.line(format!(
                "fn {}(&self{}{}) -> ::std::result::Result<{ret_ty}, {err_ty}>;",
                sanitize(&op.name),
                if params.is_empty() { "" } else { ", " },
                params.join(", ")
            ));
        }
        self.out.close("}");
    }

    fn skeleton(&mut self, info: &InterfaceInfo) {
        let iface = camel(&info.decl.name);
        let name = format!("{iface}Skeleton");
        let servant = format!("{iface}Servant");
        let tinfo = format!("{}_TYPE", upper_snake(&info.decl.name));
        self.out.line("");
        self.out.line(format!(
            "/// Server-side stub (skeleton) for `{}`: unmarshals arguments \
             and calls into the server application (§4).",
            info.abs
        ));
        self.out.open(format!("pub struct {name}<S: {servant}> {{"));
        self.out.line("servant: ::std::sync::Arc<S>,");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!("impl<S: {servant}> {name}<S> {{"));
        self.out
            .line("/// Wraps a servant for export through any server subcontract.");
        self.out
            .open("pub fn new(servant: ::std::sync::Arc<S>) -> ::std::sync::Arc<Self> {");
        self.out
            .line(format!("::std::sync::Arc::new({name} {{ servant }})"));
        self.out.close("}");
        self.out.close("}");
        self.out.line("");
        self.out.open(format!(
            "impl<S: {servant}> ::subcontract::Dispatch for {name}<S> {{"
        ));
        self.out
            .open("fn type_info(&self) -> &'static ::subcontract::TypeInfo {");
        self.out.line(format!("&{tinfo}"));
        self.out.close("}");
        self.out.line("");
        self.out.open(
            "fn dispatch(&self, __sctx: &::subcontract::ServerCtx, __op: u32, \
             __args: &mut ::spring_buf::CommBuffer, __reply: &mut ::spring_buf::CommBuffer) \
             -> ::subcontract::Result<()> {",
        );
        self.out.open("match __op {");
        for f in info.flat_ops.clone() {
            self.skeleton_arm(info, &f.owner, &f.op);
        }
        self.out
            .line("__other => Err(::subcontract::SpringError::UnknownOp(__other)),");
        self.out.close("}");
        self.out.close("}");
        self.out.close("}");
    }

    fn skeleton_arm(&mut self, info: &InterfaceInfo, owner: &str, op: &Operation) {
        let ops_mod = self.ops_mod_path(&info.abs);
        self.out.open(format!(
            "__x if __x == {ops_mod}::{} => {{",
            upper_snake(&op.name)
        ));

        // Unmarshal in/inout/copy arguments in declaration order. When the
        // whole argument record is fixed-shape, unmarshal collapses to one
        // bounds check plus in-place reads borrowed straight from the
        // translated (or shared-memory) frame — no payload copies.
        let mut call_args = Vec::new();
        if let Some((footprint, members)) = self.flat_args(op) {
            self.out.line("let __flat = __args.flat_remaining()?;");
            self.out.line(format!(
                "::spring_buf::flat::check_len(__flat, {footprint})?;"
            ));
            let checks: Vec<(usize, Type)> =
                members.iter().map(|(o, _, t)| (*o, t.clone())).collect();
            self.emit_flat_checks("__flat", &checks);
            for (off, pname, ty) in &members {
                let var = format!("__a_{pname}");
                let expr = self.flat_read_expr(ty, "__flat", *off);
                self.out.line(format!("let {var} = {expr};"));
                call_args.push(var);
            }
            self.skeleton_arm_tail(owner, op, &call_args);
            return;
        }
        for p in &op.params {
            let pname = format!("__a_{}", sanitize(&p.name));
            match p.mode {
                ParamMode::Out => continue,
                _ => {
                    if self.is_object(&p.ty) {
                        let expected = match self.underlying(&p.ty) {
                            Type::Object => "&::subcontract::OBJECT_TYPE".to_owned(),
                            Type::Named(n) => format!("&{}", self.type_info_path(&n.joined())),
                            _ => unreachable!(),
                        };
                        self.out.line(format!(
                            "let {pname} = ::subcontract::unmarshal_object(&__sctx.ctx, {expected}, __args)?;"
                        ));
                        if !matches!(self.underlying(&p.ty), Type::Object) {
                            let client = self.rust_type(&p.ty);
                            self.out
                                .line(format!("let {pname} = {client}::from_obj({pname})?;"));
                        }
                    } else {
                        let expr = self.decode_expr(&p.ty, "__args");
                        self.out.line(format!("let {pname} = {expr};"));
                    }
                    call_args.push(pname);
                }
            }
        }
        self.skeleton_arm_tail(owner, op, &call_args);
    }

    /// Emits the servant call and reply marshalling of one skeleton arm,
    /// closing the arm.
    fn skeleton_arm_tail(&mut self, owner: &str, op: &Operation, call_args: &[String]) {
        let err_ty = self.error_path(owner);
        let rets = self.op_returns_owned(op);
        let ok_pattern = match rets.len() {
            0 => "Ok(())".to_owned(),
            1 => "Ok(__r0)".to_owned(),
            n => {
                let vars: Vec<String> = (0..n).map(|i| format!("__r{i}")).collect();
                format!("Ok(({}))", vars.join(", "))
            }
        };

        self.out.open(format!(
            "match self.servant.{}({}) {{",
            sanitize(&op.name),
            call_args.join(", ")
        ));
        self.out.open(format!("{ok_pattern} => {{"));
        self.out.line("::subcontract::encode_ok(__reply);");
        if self.flat_rets(op).is_some() {
            // Start the flat reply record 8-aligned, mirroring the client's
            // `flat_remaining` on decode.
            self.out.line("__reply.align8();");
        }
        for (idx, (_, ty)) in rets.iter().enumerate() {
            let var = format!("__r{idx}");
            if self.is_object(ty) {
                if matches!(self.underlying(ty), Type::Object) {
                    self.out.line(format!("{var}.marshal(__reply)?;"));
                } else {
                    self.out
                        .line(format!("{var}.into_obj().marshal(__reply)?;"));
                }
            } else {
                self.emit_encode(ty, &var, "__reply");
            }
        }
        self.out.close("}");
        for r in &op.raises {
            let abs = r.joined();
            let variant = camel(abs.rsplit("::").next().unwrap());
            self.out
                .open(format!("Err({err_ty}::{variant}(__e)) => {{"));
            self.out.line(format!(
                "::subcontract::encode_user_exception(__reply, {abs:?});"
            ));
            self.out.line("__e.idl_encode(__reply);");
            self.out.close("}");
        }
        self.out
            .line(format!("Err({err_ty}::System(__e)) => return Err(__e),"));
        // Exceptions the operation did not declare are protocol violations;
        // report them as system errors rather than leaking them raw.
        let owner_exn_count = self.checked.interfaces[owner].exceptions.len();
        if op.raises.len() < owner_exn_count {
            self.out.open("Err(__e) => {");
            self.out.line(
                "::subcontract::encode_system_error(__reply, \
                 &::std::string::ToString::to_string(&__e));",
            );
            self.out.close("}");
        }
        self.out.close("}");
        self.out.line("Ok(())");
        self.out.close("}");
    }
}

/// Generates Rust code for a checked spec.
pub fn generate(checked: &CheckedSpec) -> String {
    let mut gen = Gen {
        checked,
        out: Out {
            buf: String::new(),
            indent: 0,
        },
        depth: 0,
    };
    gen.out
        .line("// Generated by idlc (spring-idl). Do not edit.");
    gen.out.line("");
    gen.spec(&checked.spec.definitions);
    gen.out.buf
}
