//! Semantic analysis: name resolution, inheritance, and type rules.
//!
//! The checker normalizes every scoped name to its absolute form (so code
//! generation is purely mechanical), flattens each interface's inherited
//! method set, and enforces the rules that keep the generated stubs sound:
//!
//! * parents must be interfaces, acyclic, and diamond inheritance is
//!   deduplicated;
//! * operation names must be unique across the flattened method set, and
//!   their 32-bit wire hashes must not collide;
//! * `raises` clauses must name exceptions;
//! * `out`/`inout` modes are rejected for object types (an object's
//!   round-trip identity is not well-defined under Spring's move semantics);
//!   `copy` mode is *only* valid for object types (§5.1.5);
//! * structs, exceptions, and sequences may not contain objects — object
//!   arguments and results are handled by subcontracts at the top level.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::ast::*;
use crate::IdlError;

/// One operation of a flattened method set, tagged with the interface that
/// declared it (whose error enum the operation uses).
#[derive(Clone, Debug)]
pub struct FlatOp {
    /// Absolute name of the declaring interface.
    pub owner: String,
    /// The operation.
    pub op: Operation,
}

/// Everything code generation needs about one interface.
#[derive(Clone, Debug)]
pub struct InterfaceInfo {
    /// Absolute name, e.g. `fs::cacheable_file`.
    pub abs: String,
    /// The normalized declaration (absolute scoped names throughout).
    pub decl: Interface,
    /// Direct parents, absolute.
    pub parents: Vec<String>,
    /// All ancestors (no duplicates, depth-first order).
    pub ancestors: Vec<String>,
    /// The full method set: inherited operations first, then own.
    pub flat_ops: Vec<FlatOp>,
    /// Exceptions raised by this interface's *own* operations (the
    /// interface's error enum covers exactly these).
    pub exceptions: Vec<String>,
}

/// The result of semantic analysis, consumed by code generation.
#[derive(Clone, Debug, Default)]
pub struct CheckedSpec {
    /// The normalized syntax tree.
    pub spec: Spec,
    /// Interfaces by absolute name.
    pub interfaces: BTreeMap<String, InterfaceInfo>,
    /// Structs by absolute name.
    pub structs: BTreeMap<String, StructDef>,
    /// Enums by absolute name.
    pub enums: BTreeMap<String, EnumDef>,
    /// Exceptions by absolute name.
    pub exceptions: BTreeMap<String, ExceptionDef>,
    /// Typedefs by absolute name, fully resolved to a non-typedef type.
    pub typedefs: BTreeMap<String, Type>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Interface,
    Struct,
    Enum,
    Exception,
    Typedef,
    Const,
}

struct Checker {
    /// Absolute name -> kind.
    kinds: HashMap<String, Kind>,
    /// Absolute typedef name -> declaration position, for cycle diagnostics.
    typedef_pos: HashMap<String, (usize, usize)>,
    out: CheckedSpec,
}

fn err_at(line: usize, col: usize, message: impl Into<String>) -> IdlError {
    IdlError::new(line, col, message)
}

impl Checker {
    /// Pass 1: collect every definition's absolute name.
    fn collect(&mut self, scope: &[String], defs: &[Definition]) -> Result<(), IdlError> {
        for def in defs {
            let (name, kind, line, col) = match def {
                Definition::Module(m) => {
                    let mut inner = scope.to_vec();
                    inner.push(m.name.clone());
                    self.collect(&inner, &m.definitions)?;
                    continue;
                }
                Definition::Interface(i) => (&i.name, Kind::Interface, i.line, i.col),
                Definition::Struct(s) => (&s.name, Kind::Struct, s.line, s.col),
                Definition::Enum(e) => (&e.name, Kind::Enum, e.line, e.col),
                Definition::Exception(e) => (&e.name, Kind::Exception, e.line, e.col),
                Definition::Typedef(t) => (&t.name, Kind::Typedef, t.line, t.col),
                Definition::Const(c) => (&c.name, Kind::Const, c.line, c.col),
            };
            let abs = abs_name(scope, name);
            if self.kinds.insert(abs.clone(), kind).is_some() {
                return Err(err_at(
                    line,
                    col,
                    format!("duplicate definition of {abs:?}"),
                ));
            }
        }
        Ok(())
    }

    /// Resolves a scoped name from `scope`, innermost first.
    fn resolve(&self, scope: &[String], name: &ScopedName) -> Result<(String, Kind), IdlError> {
        for depth in (0..=scope.len()).rev() {
            let mut candidate = scope[..depth].join("::");
            if !candidate.is_empty() {
                candidate.push_str("::");
            }
            candidate.push_str(&name.joined());
            if let Some(&kind) = self.kinds.get(&candidate) {
                return Ok((candidate, kind));
            }
        }
        Err(err_at(
            name.line,
            name.col,
            format!("unresolved name {:?}", name.joined()),
        ))
    }

    /// Rewrites a type to absolute form and validates its structure. `at` is
    /// the position reported for anonymous types (`object`, `sequence<...>`),
    /// which carry no position of their own.
    fn norm_type(
        &self,
        scope: &[String],
        ty: &Type,
        in_data: bool,
        at: (usize, usize),
    ) -> Result<Type, IdlError> {
        match ty {
            Type::Named(n) => {
                let (abs, kind) = self.resolve(scope, n)?;
                match kind {
                    Kind::Exception => Err(err_at(
                        n.line,
                        n.col,
                        format!("{abs:?} is an exception; use it in a raises clause"),
                    )),
                    Kind::Const => Err(err_at(
                        n.line,
                        n.col,
                        format!("{abs:?} is a constant, not a type"),
                    )),
                    Kind::Interface if in_data => Err(err_at(
                        n.line,
                        n.col,
                        format!("object type {abs:?} cannot appear inside data types"),
                    )),
                    _ => Ok(Type::Named(ScopedName {
                        segments: abs.split("::").map(str::to_owned).collect(),
                        line: n.line,
                        col: n.col,
                    })),
                }
            }
            Type::Object if in_data => Err(err_at(
                at.0,
                at.1,
                "`object` cannot appear inside data types".to_owned(),
            )),
            Type::Sequence(inner) => Ok(Type::Sequence(Box::new(
                self.norm_type(scope, inner, true, at)?,
            ))),
            other => Ok(other.clone()),
        }
    }

    /// True when a (normalized) type is an object type at this use site.
    fn is_object_type(&self, ty: &Type) -> bool {
        match ty {
            Type::Object => true,
            Type::Named(n) => {
                matches!(self.kinds.get(&n.joined()), Some(Kind::Interface))
                    || matches!(
                        self.out.typedefs.get(&n.joined()),
                        Some(t) if self.is_object_type(t)
                    )
            }
            _ => false,
        }
    }

    /// Pass 2: normalize and validate, filling `self.out`.
    fn normalize(
        &mut self,
        scope: &[String],
        defs: &[Definition],
    ) -> Result<Vec<Definition>, IdlError> {
        let mut out = Vec::with_capacity(defs.len());
        for def in defs {
            out.push(match def {
                Definition::Module(m) => {
                    let mut inner = scope.to_vec();
                    inner.push(m.name.clone());
                    Definition::Module(Module {
                        name: m.name.clone(),
                        definitions: self.normalize(&inner, &m.definitions)?,
                    })
                }
                Definition::Struct(s) => {
                    let fields = self.norm_fields(scope, &s.fields)?;
                    let normalized = StructDef {
                        name: s.name.clone(),
                        fields,
                        line: s.line,
                        col: s.col,
                    };
                    self.out
                        .structs
                        .insert(abs_name(scope, &s.name), normalized.clone());
                    Definition::Struct(normalized)
                }
                Definition::Exception(e) => {
                    let fields = self.norm_fields(scope, &e.fields)?;
                    let normalized = ExceptionDef {
                        name: e.name.clone(),
                        fields,
                        line: e.line,
                        col: e.col,
                    };
                    self.out
                        .exceptions
                        .insert(abs_name(scope, &e.name), normalized.clone());
                    Definition::Exception(normalized)
                }
                Definition::Enum(e) => {
                    let mut seen = HashSet::new();
                    for v in &e.variants {
                        if !seen.insert(v) {
                            return Err(err_at(
                                e.line,
                                e.col,
                                format!("duplicate enum variant {v:?}"),
                            ));
                        }
                    }
                    self.out.enums.insert(abs_name(scope, &e.name), e.clone());
                    Definition::Enum(e.clone())
                }
                Definition::Typedef(t) => {
                    let ty = self.norm_type(scope, &t.ty, false, (t.line, t.col))?;
                    let abs = abs_name(scope, &t.name);
                    self.typedef_pos.insert(abs.clone(), (t.line, t.col));
                    self.out.typedefs.insert(abs, ty.clone());
                    Definition::Typedef(Typedef {
                        name: t.name.clone(),
                        ty,
                        line: t.line,
                        col: t.col,
                    })
                }
                Definition::Const(c) => {
                    let ty = self.norm_type(scope, &c.ty, true, (c.line, c.col))?;
                    let ok = matches!(
                        (&ty, &c.value),
                        (
                            Type::Short
                                | Type::UShort
                                | Type::Long
                                | Type::ULong
                                | Type::LongLong
                                | Type::ULongLong
                                | Type::Octet,
                            ConstValue::Int(_)
                        ) | (Type::Str, ConstValue::Str(_))
                            | (Type::Bool, ConstValue::Bool(_))
                    );
                    if !ok {
                        return Err(err_at(
                            c.line,
                            c.col,
                            format!("constant {:?} has a value of the wrong type", c.name),
                        ));
                    }
                    Definition::Const(ConstDef {
                        name: c.name.clone(),
                        ty,
                        value: c.value.clone(),
                        line: c.line,
                        col: c.col,
                    })
                }
                Definition::Interface(i) => Definition::Interface(self.norm_interface(scope, i)?),
            });
        }
        Ok(out)
    }

    fn norm_fields(&self, scope: &[String], fields: &[Field]) -> Result<Vec<Field>, IdlError> {
        let mut seen = HashSet::new();
        fields
            .iter()
            .map(|f| {
                if !seen.insert(&f.name) {
                    return Err(err_at(
                        f.line,
                        f.col,
                        format!("duplicate field {:?}", f.name),
                    ));
                }
                Ok(Field {
                    ty: self.norm_type(scope, &f.ty, true, (f.line, f.col))?,
                    name: f.name.clone(),
                    line: f.line,
                    col: f.col,
                })
            })
            .collect()
    }

    fn norm_interface(&mut self, scope: &[String], i: &Interface) -> Result<Interface, IdlError> {
        let abs = abs_name(scope, &i.name);
        let mut parents = Vec::new();
        for p in &i.parents {
            let (p_abs, kind) = self.resolve(scope, p)?;
            if kind != Kind::Interface {
                return Err(err_at(
                    p.line,
                    p.col,
                    format!("parent {p_abs:?} is not an interface"),
                ));
            }
            if p_abs == abs {
                return Err(err_at(
                    p.line,
                    p.col,
                    format!("interface {abs:?} inherits from itself"),
                ));
            }
            parents.push(ScopedName {
                segments: p_abs.split("::").map(str::to_owned).collect(),
                line: p.line,
                col: p.col,
            });
        }

        let mut ops = Vec::new();
        for op in &i.ops {
            let ret = self.norm_type(scope, &op.ret, false, (op.line, op.col))?;
            let mut params = Vec::new();
            let mut seen = HashSet::new();
            for p in &op.params {
                if !seen.insert(&p.name) {
                    return Err(err_at(
                        op.line,
                        op.col,
                        format!("duplicate parameter {:?}", p.name),
                    ));
                }
                let ty = self.norm_type(scope, &p.ty, false, (op.line, op.col))?;
                let is_obj = self.is_object_type(&ty) || matches!(ty, Type::Object);
                match p.mode {
                    ParamMode::Copy if !is_obj => {
                        return Err(err_at(
                            op.line,
                            op.col,
                            format!(
                                "`copy` mode requires an object type (parameter {:?})",
                                p.name
                            ),
                        ))
                    }
                    ParamMode::Out | ParamMode::InOut if is_obj => {
                        return Err(err_at(
                            op.line,
                            op.col,
                            format!(
                                "object parameters cannot be out/inout (parameter {:?})",
                                p.name
                            ),
                        ))
                    }
                    _ => {}
                }
                params.push(Param {
                    mode: p.mode,
                    ty,
                    name: p.name.clone(),
                });
            }
            let mut raises = Vec::new();
            for r in &op.raises {
                let (r_abs, kind) = self.resolve(scope, r)?;
                if kind != Kind::Exception {
                    return Err(err_at(
                        r.line,
                        r.col,
                        format!("{r_abs:?} in raises is not an exception"),
                    ));
                }
                raises.push(ScopedName {
                    segments: r_abs.split("::").map(str::to_owned).collect(),
                    line: r.line,
                    col: r.col,
                });
            }
            ops.push(Operation {
                name: op.name.clone(),
                ret,
                params,
                raises,
                line: op.line,
                col: op.col,
            });
        }

        Ok(Interface {
            name: i.name.clone(),
            parents,
            ops,
            subcontract: i.subcontract.clone(),
            line: i.line,
            col: i.col,
        })
    }

    /// Pass 3: flatten inheritance for every interface.
    fn flatten(&mut self) -> Result<(), IdlError> {
        // Index normalized interfaces by absolute name.
        let mut decls: BTreeMap<String, Interface> = BTreeMap::new();
        collect_interfaces(
            &self.out.spec.definitions.clone(),
            &mut Vec::new(),
            &mut decls,
        );

        for (abs, decl) in &decls {
            let mut ancestors = Vec::new();
            let mut visiting = HashSet::new();
            ancestry(abs, &decls, &mut ancestors, &mut visiting).map_err(|cycle| {
                err_at(
                    decl.line,
                    decl.col,
                    format!("inheritance cycle through {cycle:?}"),
                )
            })?;
            // `ancestry` puts `abs` itself last; drop it.
            ancestors.pop();

            let mut flat_ops = Vec::new();
            let mut op_names = HashSet::new();
            let mut op_hashes: HashMap<u32, String> = HashMap::new();
            let mut exceptions = Vec::new();
            for owner in ancestors.iter().chain(std::iter::once(abs)) {
                let owner_decl = &decls[owner];
                for op in &owner_decl.ops {
                    if !op_names.insert(op.name.clone()) {
                        return Err(err_at(
                            op.line,
                            op.col,
                            format!(
                                "operation {:?} declared more than once in the method set of {abs:?}",
                                op.name
                            ),
                        ));
                    }
                    let hash = op_hash32(&op.name);
                    if let Some(prev) = op_hashes.insert(hash, op.name.clone()) {
                        return Err(err_at(
                            op.line,
                            op.col,
                            format!(
                                "operation hash collision between {:?} and {:?} in {abs:?}; rename one",
                                prev, op.name
                            ),
                        ));
                    }
                    if owner == abs {
                        for r in &op.raises {
                            let r = r.joined();
                            if !exceptions.contains(&r) {
                                exceptions.push(r);
                            }
                        }
                    }
                    flat_ops.push(FlatOp {
                        owner: owner.clone(),
                        op: op.clone(),
                    });
                }
            }

            self.out.interfaces.insert(
                abs.clone(),
                InterfaceInfo {
                    abs: abs.clone(),
                    decl: decl.clone(),
                    parents: decl.parents.iter().map(ScopedName::joined).collect(),
                    ancestors,
                    flat_ops,
                    exceptions,
                },
            );
        }
        Ok(())
    }
}

/// Depth-first ancestor collection with cycle detection. Appends each
/// ancestor once (first visit wins), ending with `abs` itself.
fn ancestry(
    abs: &str,
    decls: &BTreeMap<String, Interface>,
    out: &mut Vec<String>,
    visiting: &mut HashSet<String>,
) -> Result<(), String> {
    if out.iter().any(|a| a == abs) {
        return Ok(());
    }
    if !visiting.insert(abs.to_owned()) {
        return Err(abs.to_owned());
    }
    if let Some(decl) = decls.get(abs) {
        for p in &decl.parents {
            ancestry(&p.joined(), decls, out, visiting)?;
        }
    }
    visiting.remove(abs);
    out.push(abs.to_owned());
    Ok(())
}

fn collect_interfaces(
    defs: &[Definition],
    scope: &mut Vec<String>,
    out: &mut BTreeMap<String, Interface>,
) {
    for def in defs {
        match def {
            Definition::Module(m) => {
                scope.push(m.name.clone());
                collect_interfaces(&m.definitions, scope, out);
                scope.pop();
            }
            Definition::Interface(i) => {
                out.insert(abs_name(scope, &i.name), i.clone());
            }
            _ => {}
        }
    }
}

fn abs_name(scope: &[String], name: &str) -> String {
    if scope.is_empty() {
        name.to_owned()
    } else {
        format!("{}::{}", scope.join("::"), name)
    }
}

/// The same FNV-1a hash the runtime uses for operation numbers.
pub(crate) fn op_hash32(name: &str) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for b in name.as_bytes() {
        hash ^= *b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Runs semantic analysis over a parsed spec.
pub fn check(spec: &Spec) -> Result<CheckedSpec, IdlError> {
    let mut checker = Checker {
        kinds: HashMap::new(),
        typedef_pos: HashMap::new(),
        out: CheckedSpec::default(),
    };
    checker.collect(&[], &spec.definitions)?;
    let definitions = checker.normalize(&[], &spec.definitions)?;
    checker.out.spec = Spec { definitions };

    // Resolve typedef chains (and reject cycles).
    let raw: BTreeMap<String, Type> = checker.out.typedefs.clone();
    for (name, _) in raw.iter() {
        let mut seen = HashSet::new();
        let mut cur = name.clone();
        loop {
            if !seen.insert(cur.clone()) {
                let (line, col) = checker.typedef_pos.get(name).copied().unwrap_or((0, 0));
                return Err(err_at(line, col, format!("typedef cycle through {name:?}")));
            }
            match raw.get(&cur) {
                Some(Type::Named(n)) if raw.contains_key(&n.joined()) => cur = n.joined(),
                Some(t) => {
                    checker.out.typedefs.insert(name.clone(), t.clone());
                    break;
                }
                None => break,
            }
        }
    }

    checker.flatten()?;
    Ok(checker.out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn checked(src: &str) -> Result<CheckedSpec, IdlError> {
        check(&parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn flattening_includes_inherited_ops() {
        let c = checked(
            r#"
            interface base { void ping(); };
            interface mid : base { void pong(); };
            interface leaf : mid { void peng(); };
            "#,
        )
        .unwrap();
        let leaf = &c.interfaces["leaf"];
        let names: Vec<&str> = leaf.flat_ops.iter().map(|o| o.op.name.as_str()).collect();
        assert_eq!(names, vec!["ping", "pong", "peng"]);
        assert_eq!(leaf.ancestors, vec!["base".to_owned(), "mid".to_owned()]);
    }

    #[test]
    fn diamond_inheritance_dedups() {
        let c = checked(
            r#"
            interface a { void fa(); };
            interface b : a { void fb(); };
            interface cc : a { void fc(); };
            interface d : b, cc { void fd(); };
            "#,
        )
        .unwrap();
        let d = &c.interfaces["d"];
        let names: Vec<&str> = d.flat_ops.iter().map(|o| o.op.name.as_str()).collect();
        assert_eq!(names, vec!["fa", "fb", "fc", "fd"]);
    }

    #[test]
    fn inheritance_cycle_rejected() {
        let err = checked(
            r#"
            interface a : b { };
            interface b : a { };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn duplicate_op_across_parents_rejected() {
        let err = checked(
            r#"
            interface a { void f(); };
            interface b { void f(); };
            interface c : a, b { };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("more than once"));
    }

    #[test]
    fn scoped_resolution_walks_outward() {
        let c = checked(
            r#"
            struct point { double x; };
            module m {
                interface uses_outer { point get(); };
                struct point { long y; };
                interface uses_inner { point get(); };
            };
            "#,
        )
        .unwrap();
        let outer = &c.interfaces["m::uses_outer"];
        // Declared before m::point exists in scope? Both resolve innermost
        // first: m::point shadows the global point for both interfaces.
        let Type::Named(n) = &outer.flat_ops[0].op.ret else {
            panic!()
        };
        assert_eq!(n.joined(), "m::point");
        let inner = &c.interfaces["m::uses_inner"];
        let Type::Named(n) = &inner.flat_ops[0].op.ret else {
            panic!()
        };
        assert_eq!(n.joined(), "m::point");
    }

    #[test]
    fn copy_mode_requires_object_type() {
        let err = checked("interface x { void f(copy long v); };").unwrap_err();
        assert!(err.message.contains("copy"));
        // And it works for interfaces and `object`.
        checked(
            r#"
            interface y { };
            interface x { void f(copy y v); void g(copy object o); };
            "#,
        )
        .unwrap();
    }

    #[test]
    fn object_out_params_rejected() {
        let err = checked(
            r#"
            interface y { };
            interface x { void f(out y v); };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("out/inout"));
    }

    #[test]
    fn objects_inside_data_rejected() {
        let err = checked(
            r#"
            interface y { };
            struct s { y field; };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("inside data"));
        let err = checked("interface x { void f(in sequence<object> os); };").unwrap_err();
        assert!(err.message.contains("inside data"));
    }

    #[test]
    fn raises_must_name_exceptions() {
        let err = checked(
            r#"
            struct s { long x; };
            interface x { void f() raises (s); };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("not an exception"));
    }

    #[test]
    fn typedef_chains_resolve() {
        let c = checked(
            r#"
            typedef sequence<long> longs;
            typedef longs more_longs;
            "#,
        )
        .unwrap();
        assert_eq!(
            c.typedefs["more_longs"],
            Type::Sequence(Box::new(Type::Long))
        );
    }

    #[test]
    fn typedef_cycle_rejected() {
        let err = checked(
            r#"
            typedef b a;
            typedef a b;
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("cycle"));
    }

    #[test]
    fn duplicate_constants_rejected() {
        let err = checked(
            r#"
            const long x = 1;
            const long x = 2;
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn constant_used_as_type_rejected() {
        let err = checked(
            r#"
            const long limit = 1;
            interface x { limit f(); };
            "#,
        )
        .unwrap_err();
        assert!(err.message.contains("constant"));
    }

    #[test]
    fn unresolved_names_error() {
        let err = checked("interface x : ghost { };").unwrap_err();
        assert!(err.message.contains("unresolved"));
    }

    #[test]
    fn diagnostics_carry_exact_positions() {
        // Pin the full rendered form — line AND column — so span regressions
        // (reverting to the old `line:0` placeholders) fail loudly.
        let err = checked(r#"struct p { long x; long x; };"#).unwrap_err();
        assert_eq!(err.to_string(), r#"1:20: duplicate field "x""#);

        let err = checked(r#"interface x : ghost { };"#).unwrap_err();
        assert_eq!(err.to_string(), r#"1:15: unresolved name "ghost""#);
    }

    #[test]
    fn subcontract_annotation_flows_through() {
        let c = checked("[subcontract = caching] interface f { };").unwrap();
        assert_eq!(c.interfaces["f"].decl.subcontract, "caching");
    }
}
