//! Abstract syntax for the IDL subset.

/// A whole compilation unit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Spec {
    /// Top-level definitions.
    pub definitions: Vec<Definition>,
}

/// One top-level or module-scoped definition.
#[derive(Clone, Debug, PartialEq)]
pub enum Definition {
    /// `module name { ... };`
    Module(Module),
    /// `interface name : parents { ... };`
    Interface(Interface),
    /// `struct name { ... };`
    Struct(StructDef),
    /// `enum name { ... };`
    Enum(EnumDef),
    /// `exception name { ... };`
    Exception(ExceptionDef),
    /// `typedef type name;`
    Typedef(Typedef),
    /// `const type name = value;`
    Const(ConstDef),
}

/// A named scope of definitions.
#[derive(Clone, Debug, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Nested definitions.
    pub definitions: Vec<Definition>,
}

/// An object interface.
#[derive(Clone, Debug, PartialEq)]
pub struct Interface {
    /// Interface name.
    pub name: String,
    /// Direct parents (scoped names), in declaration order.
    pub parents: Vec<ScopedName>,
    /// Operations declared directly on this interface.
    pub ops: Vec<Operation>,
    /// Default subcontract from a `[subcontract = name]` annotation;
    /// `"singleton"` when unannotated.
    pub subcontract: String,
    /// Source line of the declaration (for diagnostics).
    pub line: usize,
    /// Source column of the declaration (for diagnostics).
    pub col: usize,
}

/// One operation.
#[derive(Clone, Debug, PartialEq)]
pub struct Operation {
    /// Operation name.
    pub name: String,
    /// Return type (`Type::Void` for `void`).
    pub ret: Type,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Exceptions from the `raises(...)` clause.
    pub raises: Vec<ScopedName>,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// Parameter passing modes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParamMode {
    /// Caller → callee. For object types this *transmits* the object (the
    /// caller ceases to have it, §3.2).
    In,
    /// Callee → caller (an extra result).
    Out,
    /// Both directions.
    InOut,
    /// The paper's `copy` mode (§5.1.5): a copy of the argument object is
    /// transmitted while the caller retains the original.
    Copy,
}

/// One parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Passing mode.
    pub mode: ParamMode,
    /// Declared type.
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

/// A (possibly qualified) reference to a named definition.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScopedName {
    /// Path segments, e.g. `["fs", "file"]` for `fs::file`.
    pub segments: Vec<String>,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

impl ScopedName {
    /// The segments joined with `::`.
    pub fn joined(&self) -> String {
        self.segments.join("::")
    }
}

/// A type expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Type {
    /// `void` (return position only).
    Void,
    /// `boolean`.
    Bool,
    /// `octet`.
    Octet,
    /// `short` / `unsigned short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `long`.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long`.
    LongLong,
    /// `unsigned long long`.
    ULongLong,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `string`.
    Str,
    /// `object` — any Spring object, at the universal base type.
    Object,
    /// `sequence<T>`.
    Sequence(Box<Type>),
    /// A named type: struct, enum, typedef, or interface.
    Named(ScopedName),
}

/// `struct` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// A struct or exception field.
#[derive(Clone, Debug, PartialEq)]
pub struct Field {
    /// Field type.
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// `enum` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variants in declaration order (wire form is the index).
    pub variants: Vec<String>,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// `exception` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct ExceptionDef {
    /// Exception name (also its wire name).
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<Field>,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// `typedef` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct Typedef {
    /// New name.
    pub name: String,
    /// Aliased type.
    pub ty: Type,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// `const` definition.
#[derive(Clone, Debug, PartialEq)]
pub struct ConstDef {
    /// Constant name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Literal value.
    pub value: ConstValue,
    /// Source line (for diagnostics).
    pub line: usize,
    /// Source column (for diagnostics).
    pub col: usize,
}

/// Literal values for constants.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstValue {
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal (`TRUE` / `FALSE`).
    Bool(bool),
}
