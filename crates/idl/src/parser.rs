//! Recursive-descent parser for the IDL subset.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::IdlError;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &'a Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> &'a Token {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> IdlError {
        let t = self.peek();
        IdlError::new(t.line, t.col, message)
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<&'a Token, IdlError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek().kind)))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, IdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    /// Consumes a keyword (an identifier with a fixed spelling).
    fn keyword(&mut self, kw: &str) -> Result<(), IdlError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn spec(&mut self) -> Result<Spec, IdlError> {
        let mut definitions = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            definitions.push(self.definition()?);
        }
        Ok(Spec { definitions })
    }

    fn definition(&mut self) -> Result<Definition, IdlError> {
        match &self.peek().kind {
            TokenKind::LBracket => self.interface().map(Definition::Interface),
            TokenKind::Ident(kw) => match kw.as_str() {
                "module" => self.module().map(Definition::Module),
                "interface" => self.interface().map(Definition::Interface),
                "struct" => self.struct_def().map(Definition::Struct),
                "enum" => self.enum_def().map(Definition::Enum),
                "exception" => self.exception().map(Definition::Exception),
                "typedef" => self.typedef().map(Definition::Typedef),
                "const" => self.const_def().map(Definition::Const),
                other => Err(self.err(format!("expected a definition, found `{other}`"))),
            },
            other => Err(self.err(format!("expected a definition, found {other:?}"))),
        }
    }

    fn module(&mut self) -> Result<Module, IdlError> {
        self.keyword("module")?;
        let name = self.ident("module name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut definitions = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.err("unterminated module"));
            }
            definitions.push(self.definition()?);
        }
        self.eat(&TokenKind::Semi);
        Ok(Module { name, definitions })
    }

    fn interface(&mut self) -> Result<Interface, IdlError> {
        // Optional `[subcontract = name]` annotation.
        let mut subcontract = "singleton".to_owned();
        if self.eat(&TokenKind::LBracket) {
            self.keyword("subcontract")?;
            self.expect(&TokenKind::Eq, "`=`")?;
            subcontract = match &self.peek().kind {
                TokenKind::Ident(s) => {
                    let s = s.clone();
                    self.bump();
                    s
                }
                TokenKind::Str(s) => {
                    let s = s.clone();
                    self.bump();
                    s
                }
                other => {
                    return Err(self.err(format!("expected subcontract name, found {other:?}")))
                }
            };
            self.expect(&TokenKind::RBracket, "`]`")?;
        }

        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("interface")?;
        let name = self.ident("interface name")?;

        let mut parents = Vec::new();
        if self.eat(&TokenKind::Colon) {
            loop {
                parents.push(self.scoped_name()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut ops = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.err("unterminated interface"));
            }
            if self.at_keyword("attribute") || self.at_keyword("readonly") {
                self.attribute(&mut ops)?;
            } else {
                ops.push(self.operation()?);
            }
        }
        self.eat(&TokenKind::Semi);
        Ok(Interface {
            name,
            parents,
            ops,
            subcontract,
            line,
            col,
        })
    }

    /// Parses an attribute declaration, desugaring it into accessor
    /// operations: `attribute T x;` becomes `T get_x()` and
    /// `void set_x(in T v)`; `readonly` omits the setter. Name collisions
    /// with explicit operations are caught by the checker like any other
    /// duplicate.
    fn attribute(&mut self, ops: &mut Vec<Operation>) -> Result<(), IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        let readonly = self.at_keyword("readonly");
        if readonly {
            self.bump();
        }
        self.keyword("attribute")?;
        let ty = self.type_spec(false)?;
        loop {
            let name = self.ident("attribute name")?;
            ops.push(Operation {
                name: format!("get_{name}"),
                ret: ty.clone(),
                params: Vec::new(),
                raises: Vec::new(),
                line,
                col,
            });
            if !readonly {
                ops.push(Operation {
                    name: format!("set_{name}"),
                    ret: Type::Void,
                    params: vec![Param {
                        mode: ParamMode::In,
                        ty: ty.clone(),
                        name: "value".to_owned(),
                    }],
                    raises: Vec::new(),
                    line,
                    col,
                });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(())
    }

    fn operation(&mut self) -> Result<Operation, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        let ret = self.type_spec(true)?;
        let name = self.ident("operation name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.param()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,` or `)`")?;
            }
        }
        let mut raises = Vec::new();
        if self.at_keyword("raises") {
            self.bump();
            self.expect(&TokenKind::LParen, "`(`")?;
            loop {
                raises.push(self.scoped_name()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma, "`,` or `)`")?;
            }
        }
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Operation {
            name,
            ret,
            params,
            raises,
            line,
            col,
        })
    }

    fn param(&mut self) -> Result<Param, IdlError> {
        let mode = match &self.peek().kind {
            TokenKind::Ident(s) => match s.as_str() {
                "in" => ParamMode::In,
                "out" => ParamMode::Out,
                "inout" => ParamMode::InOut,
                "copy" => ParamMode::Copy,
                other => {
                    return Err(self.err(format!(
                        "expected parameter mode (in/out/inout/copy), found `{other}`"
                    )))
                }
            },
            other => return Err(self.err(format!("expected parameter mode, found {other:?}"))),
        };
        self.bump();
        let ty = self.type_spec(false)?;
        let name = self.ident("parameter name")?;
        Ok(Param { mode, ty, name })
    }

    fn type_spec(&mut self, allow_void: bool) -> Result<Type, IdlError> {
        let t = match &self.peek().kind {
            TokenKind::Ident(s) => s.clone(),
            other => return Err(self.err(format!("expected a type, found {other:?}"))),
        };
        match t.as_str() {
            "void" if allow_void => {
                self.bump();
                Ok(Type::Void)
            }
            "void" => Err(self.err("`void` is only valid as a return type")),
            "boolean" => {
                self.bump();
                Ok(Type::Bool)
            }
            "octet" => {
                self.bump();
                Ok(Type::Octet)
            }
            "short" => {
                self.bump();
                Ok(Type::Short)
            }
            "float" => {
                self.bump();
                Ok(Type::Float)
            }
            "double" => {
                self.bump();
                Ok(Type::Double)
            }
            "string" => {
                self.bump();
                Ok(Type::Str)
            }
            "object" => {
                self.bump();
                Ok(Type::Object)
            }
            "long" => {
                self.bump();
                if self.at_keyword("long") {
                    self.bump();
                    Ok(Type::LongLong)
                } else {
                    Ok(Type::Long)
                }
            }
            "unsigned" => {
                self.bump();
                if self.at_keyword("short") {
                    self.bump();
                    Ok(Type::UShort)
                } else if self.at_keyword("long") {
                    self.bump();
                    if self.at_keyword("long") {
                        self.bump();
                        Ok(Type::ULongLong)
                    } else {
                        Ok(Type::ULong)
                    }
                } else {
                    Err(self.err("expected `short` or `long` after `unsigned`"))
                }
            }
            "sequence" => {
                self.bump();
                self.expect(&TokenKind::Lt, "`<`")?;
                let inner = self.type_spec(false)?;
                self.expect(&TokenKind::Gt, "`>`")?;
                Ok(Type::Sequence(Box::new(inner)))
            }
            _ => Ok(Type::Named(self.scoped_name()?)),
        }
    }

    fn scoped_name(&mut self) -> Result<ScopedName, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        let mut segments = vec![self.ident("name")?];
        while self.eat(&TokenKind::ColonColon) {
            segments.push(self.ident("name segment")?);
        }
        Ok(ScopedName {
            segments,
            line,
            col,
        })
    }

    fn struct_def(&mut self) -> Result<StructDef, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("struct")?;
        let name = self.ident("struct name")?;
        let fields = self.field_block()?;
        Ok(StructDef {
            name,
            fields,
            line,
            col,
        })
    }

    fn exception(&mut self) -> Result<ExceptionDef, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("exception")?;
        let name = self.ident("exception name")?;
        let fields = self.field_block()?;
        Ok(ExceptionDef {
            name,
            fields,
            line,
            col,
        })
    }

    fn field_block(&mut self) -> Result<Vec<Field>, IdlError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if self.peek().kind == TokenKind::Eof {
                return Err(self.err("unterminated block"));
            }
            let (line, col) = (self.peek().line, self.peek().col);
            let ty = self.type_spec(false)?;
            let name = self.ident("field name")?;
            self.expect(&TokenKind::Semi, "`;`")?;
            fields.push(Field {
                ty,
                name,
                line,
                col,
            });
        }
        self.eat(&TokenKind::Semi);
        Ok(fields)
    }

    fn enum_def(&mut self) -> Result<EnumDef, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("enum")?;
        let name = self.ident("enum name")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut variants = Vec::new();
        loop {
            variants.push(self.ident("enum variant")?);
            if self.eat(&TokenKind::RBrace) {
                break;
            }
            self.expect(&TokenKind::Comma, "`,` or `}`")?;
            // Allow a trailing comma.
            if self.eat(&TokenKind::RBrace) {
                break;
            }
        }
        self.eat(&TokenKind::Semi);
        Ok(EnumDef {
            name,
            variants,
            line,
            col,
        })
    }

    fn typedef(&mut self) -> Result<Typedef, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("typedef")?;
        let ty = self.type_spec(false)?;
        let name = self.ident("typedef name")?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(Typedef {
            name,
            ty,
            line,
            col,
        })
    }

    fn const_def(&mut self) -> Result<ConstDef, IdlError> {
        let (line, col) = (self.peek().line, self.peek().col);
        self.keyword("const")?;
        let ty = self.type_spec(false)?;
        let name = self.ident("constant name")?;
        self.expect(&TokenKind::Eq, "`=`")?;
        let value = match &self.peek().kind {
            TokenKind::Int(v) => {
                let v = *v;
                self.bump();
                ConstValue::Int(v)
            }
            TokenKind::Str(s) => {
                let s = s.clone();
                self.bump();
                ConstValue::Str(s)
            }
            TokenKind::Ident(s) if s == "TRUE" => {
                self.bump();
                ConstValue::Bool(true)
            }
            TokenKind::Ident(s) if s == "FALSE" => {
                self.bump();
                ConstValue::Bool(false)
            }
            other => return Err(self.err(format!("expected a literal, found {other:?}"))),
        };
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(ConstDef {
            name,
            ty,
            value,
            line,
            col,
        })
    }
}

/// Parses a token stream into a [`Spec`].
pub fn parse(tokens: &[Token]) -> Result<Spec, IdlError> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.spec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Spec, IdlError> {
        parse(&lex(src).unwrap())
    }

    #[test]
    fn minimal_interface() {
        let spec = parse_src("interface empty { };").unwrap();
        match &spec.definitions[0] {
            Definition::Interface(i) => {
                assert_eq!(i.name, "empty");
                assert!(i.parents.is_empty());
                assert!(i.ops.is_empty());
                assert_eq!(i.subcontract, "singleton");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn interface_with_everything() {
        let src = r#"
            module fs {
                exception io_error { string reason; };
                [subcontract = caching]
                interface cacheable_file : file, versioned {
                    sequence<octet> read(in long long offset, in long long count)
                        raises (io_error);
                    void share(copy file f, out string token);
                };
            };
        "#;
        let spec = parse_src(src).unwrap();
        let Definition::Module(m) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(m.name, "fs");
        let Definition::Interface(i) = &m.definitions[1] else {
            panic!()
        };
        assert_eq!(i.subcontract, "caching");
        assert_eq!(i.parents.len(), 2);
        assert_eq!(i.ops.len(), 2);
        assert_eq!(i.ops[0].raises[0].joined(), "io_error");
        assert_eq!(i.ops[1].params[0].mode, ParamMode::Copy);
        assert_eq!(i.ops[1].params[1].mode, ParamMode::Out);
    }

    #[test]
    fn numeric_types() {
        let src = r#"
            interface nums {
                unsigned long long big(in unsigned short a, in long long b, in unsigned long c);
            };
        "#;
        let spec = parse_src(src).unwrap();
        let Definition::Interface(i) = &spec.definitions[0] else {
            panic!()
        };
        assert_eq!(i.ops[0].ret, Type::ULongLong);
        assert_eq!(i.ops[0].params[0].ty, Type::UShort);
        assert_eq!(i.ops[0].params[1].ty, Type::LongLong);
        assert_eq!(i.ops[0].params[2].ty, Type::ULong);
    }

    #[test]
    fn structs_enums_typedefs_consts() {
        let src = r#"
            struct point { double x; double y; };
            enum color { red, green, blue, };
            typedef sequence<point> path;
            const long max_points = 128;
            const string banner = "hello";
            const boolean flag = TRUE;
        "#;
        let spec = parse_src(src).unwrap();
        assert_eq!(spec.definitions.len(), 6);
        let Definition::Enum(e) = &spec.definitions[1] else {
            panic!()
        };
        assert_eq!(e.variants, vec!["red", "green", "blue"]);
        let Definition::Const(c) = &spec.definitions[5] else {
            panic!()
        };
        assert_eq!(c.value, ConstValue::Bool(true));
    }

    #[test]
    fn errors_are_helpful() {
        assert!(parse_src("interface x {")
            .unwrap_err()
            .message
            .contains("unterminated"));
        assert!(parse_src("interface x { void f(bad t); };")
            .unwrap_err()
            .message
            .contains("parameter mode"));
        assert!(parse_src("module m { zebra; };")
            .unwrap_err()
            .message
            .contains("definition"));
        assert!(parse_src("interface x { void f(in void v); };")
            .unwrap_err()
            .message
            .contains("void"));
    }

    #[test]
    fn attributes_desugar_to_accessors() {
        let spec = parse_src(
            r#"
            interface thing {
                readonly attribute long long size;
                attribute string label, tag;
            };
            "#,
        )
        .unwrap();
        let Definition::Interface(i) = &spec.definitions[0] else {
            panic!()
        };
        let names: Vec<&str> = i.ops.iter().map(|o| o.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["get_size", "get_label", "set_label", "get_tag", "set_tag"]
        );
        assert_eq!(i.ops[0].ret, Type::LongLong);
        assert_eq!(i.ops[2].params[0].mode, ParamMode::In);
        assert_eq!(i.ops[2].params[0].ty, Type::Str);
    }

    #[test]
    fn nested_modules() {
        let spec = parse_src("module a { module b { interface c {}; }; };").unwrap();
        let Definition::Module(a) = &spec.definitions[0] else {
            panic!()
        };
        let Definition::Module(b) = &a.definitions[0] else {
            panic!()
        };
        assert!(matches!(&b.definitions[0], Definition::Interface(i) if i.name == "c"));
    }
}
