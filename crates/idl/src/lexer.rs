//! Tokenizer for the IDL subset.

use crate::IdlError;

/// Token kinds produced by the lexer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are recognized by the parser).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A double-quoted string literal (unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `=`
    Eq,
    /// End of input (always the final token).
    Eof,
}

/// One token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor<'_> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn err(&self, message: impl Into<String>) -> IdlError {
        IdlError::new(self.line, self.col, message)
    }
}

/// Tokenizes IDL source. Comments (`//` and `/* */`) are skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, IdlError> {
    let mut cur = Cursor {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();

    loop {
        // Skip whitespace and comments.
        loop {
            match cur.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    cur.bump();
                }
                Some(b'/') if cur.peek2() == Some(b'/') => {
                    while let Some(b) = cur.bump() {
                        if b == b'\n' {
                            break;
                        }
                    }
                }
                Some(b'/') if cur.peek2() == Some(b'*') => {
                    let (line, col) = (cur.line, cur.col);
                    cur.bump();
                    cur.bump();
                    let mut closed = false;
                    while let Some(b) = cur.bump() {
                        if b == b'*' && cur.peek() == Some(b'/') {
                            cur.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(IdlError::new(line, col, "unterminated block comment"));
                    }
                }
                _ => break,
            }
        }

        let (line, col) = (cur.line, cur.col);
        let Some(b) = cur.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                line,
                col,
            });
            return Ok(out);
        };

        let kind = match b {
            b'{' => {
                cur.bump();
                TokenKind::LBrace
            }
            b'}' => {
                cur.bump();
                TokenKind::RBrace
            }
            b'(' => {
                cur.bump();
                TokenKind::LParen
            }
            b')' => {
                cur.bump();
                TokenKind::RParen
            }
            b'<' => {
                cur.bump();
                TokenKind::Lt
            }
            b'>' => {
                cur.bump();
                TokenKind::Gt
            }
            b'[' => {
                cur.bump();
                TokenKind::LBracket
            }
            b']' => {
                cur.bump();
                TokenKind::RBracket
            }
            b';' => {
                cur.bump();
                TokenKind::Semi
            }
            b',' => {
                cur.bump();
                TokenKind::Comma
            }
            b'=' => {
                cur.bump();
                TokenKind::Eq
            }
            b':' => {
                cur.bump();
                if cur.peek() == Some(b':') {
                    cur.bump();
                    TokenKind::ColonColon
                } else {
                    TokenKind::Colon
                }
            }
            b'"' => {
                cur.bump();
                let mut s = String::new();
                loop {
                    match cur.bump() {
                        Some(b'"') => break,
                        Some(b'\n') | None => {
                            return Err(IdlError::new(line, col, "unterminated string literal"))
                        }
                        Some(c) => s.push(c as char),
                    }
                }
                TokenKind::Str(s)
            }
            b'-' | b'0'..=b'9' => {
                let mut text = String::new();
                if b == b'-' {
                    text.push('-');
                    cur.bump();
                }
                while let Some(d) = cur.peek() {
                    if d.is_ascii_digit() {
                        text.push(d as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                if text == "-" || text.is_empty() {
                    return Err(IdlError::new(line, col, "malformed integer literal"));
                }
                let value: i64 = text.parse().map_err(|_| {
                    IdlError::new(line, col, format!("integer {text} out of range"))
                })?;
                TokenKind::Int(value)
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let mut s = String::new();
                while let Some(c) = cur.peek() {
                    if c.is_ascii_alphanumeric() || c == b'_' {
                        s.push(c as char);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Ident(s)
            }
            other => return Err(cur.err(format!("unexpected character {:?}", other as char))),
        };
        out.push(Token { kind, line, col });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        use TokenKind::*;
        assert_eq!(
            kinds("interface foo : a::b { };"),
            vec![
                Ident("interface".into()),
                Ident("foo".into()),
                Colon,
                Ident("a".into()),
                ColonColon,
                Ident("b".into()),
                LBrace,
                RBrace,
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // line\n /* block\n over lines */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"const long x = -42; "hi""#),
            vec![
                Ident("const".into()),
                Ident("long".into()),
                Ident("x".into()),
                Eq,
                Int(-42),
                Semi,
                Str("hi".into()),
                Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_are_positioned() {
        let err = lex("ok $").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.col, 4);

        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
        assert!(lex("- ").is_err());
    }
}
