//! `idlc` — the IDL compiler command line.
//!
//! Usage: `idlc INPUT.idl [-o OUTPUT.rs]`
//!
//! Compiles a Spring IDL file to Rust stubs and skeletons. With no `-o`, the
//! generated code is written to standard output.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input = None;
    let mut output = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "-o" => {
                if i + 1 >= args.len() {
                    eprintln!("idlc: -o requires an argument");
                    return ExitCode::from(2);
                }
                output = Some(args[i + 1].clone());
                i += 2;
            }
            "-h" | "--help" => {
                println!("usage: idlc INPUT.idl [-o OUTPUT.rs]");
                return ExitCode::SUCCESS;
            }
            other if input.is_none() => {
                input = Some(other.to_owned());
                i += 1;
            }
            other => {
                eprintln!("idlc: unexpected argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }

    let Some(input) = input else {
        eprintln!("usage: idlc INPUT.idl [-o OUTPUT.rs]");
        return ExitCode::from(2);
    };

    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("idlc: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match spring_idl::compile(&source) {
        Ok(rust) => {
            if let Some(path) = output {
                if let Err(e) = std::fs::write(&path, rust) {
                    eprintln!("idlc: cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            } else {
                print!("{rust}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{input}:{e}");
            ExitCode::FAILURE
        }
    }
}
