//! Golden-file test: the Rust generated for `golden/fixture.idl` must match
//! the committed snapshot byte-for-byte, pinning the full shape of the
//! emitted code — flat layout offsets, validate bodies, views, and the
//! copying fallback. Bless intentional changes with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p spring-idl --test golden
//! ```

use spring_idl::compile;

#[test]
fn generated_code_matches_golden() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let src = std::fs::read_to_string(dir.join("fixture.idl")).unwrap();
    let generated = compile(&src).unwrap();
    let golden_path = dir.join("fixture.rs");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden_path, &generated).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_default();
    assert_eq!(
        generated,
        golden,
        "generated code drifted from {}; rerun with UPDATE_GOLDEN=1 to bless",
        golden_path.display()
    );
}
