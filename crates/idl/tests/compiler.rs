//! End-to-end IDL compiler tests: generated-code snapshots, the `idlc`
//! command line, and parser robustness properties.

use proptest::prelude::*;
use spring_idl::compile;

const FS_LIKE: &str = r#"
module demo {
    exception oops { string why; long code; };
    struct pair { double x; double y; };
    enum mode { read_only, read_write };
    typedef sequence<pair> path;
    const long max_len = 64;
    const string banner = "demo";

    interface shape {
        double area() raises (oops);
        void translate(in pair delta);
        path outline();
        mode access_mode();
    };

    [subcontract = caching]
    interface named_shape : shape {
        string name();
        void rename(in string name, out string old_name) raises (oops);
    };

    interface registry {
        void put(in string key, copy shape s) raises (oops);
        shape get(in string key) raises (oops);
        sequence<string> keys();
    };
};
"#;

#[test]
fn generates_all_expected_items() {
    let code = compile(FS_LIKE).unwrap();
    for expected in [
        // Types and constants.
        "pub struct Pair",
        "pub enum Mode",
        "pub struct Oops",
        "pub type Path = Vec<",
        "pub const MAX_LEN: i32 = 64;",
        "pub const BANNER: &str = \"demo\";",
        // Interface machinery.
        "pub static SHAPE_TYPE",
        "pub static NAMED_SHAPE_TYPE",
        "pub mod shape_ops",
        "pub struct Shape",
        "pub trait ShapeServant",
        "pub struct ShapeSkeleton",
        "pub enum ShapeError",
        // Inheritance: the derived servant trait extends the base's, and
        // the derived stub re-exposes inherited operations.
        "pub trait NamedShapeServant:",
        "ShapeServant",
        // The subcontract annotation flows into the TypeInfo.
        "ScId::from_name(\"caching\")",
        "ScId::from_name(\"singleton\")",
        // Copy-mode object parameter marshals via marshal_copy.
        "marshal_copy(&mut __call)",
        // Object-returning op unmarshals through the subcontract machinery.
        "unmarshal_object",
    ] {
        assert!(
            code.contains(expected),
            "generated code lacks {expected:?}\n---\n{code}"
        );
    }
}

#[test]
fn inherited_ops_appear_in_derived_stub_and_skeleton() {
    let code = compile(FS_LIKE).unwrap();
    // The derived client has the base method; the derived ops module
    // carries the base operation number.
    let named_section = code
        .split("pub struct NamedShape")
        .nth(1)
        .expect("NamedShape emitted");
    assert!(named_section.contains("pub fn area("));
    assert!(named_section.contains("pub fn rename("));
    assert!(code.contains("pub mod named_shape_ops"));
    let ops_section = code.split("pub mod named_shape_ops").nth(1).unwrap();
    let ops_block = &ops_section[..ops_section.find('}').unwrap()];
    assert!(ops_block.contains("AREA"));
    assert!(ops_block.contains("RENAME"));
}

#[test]
fn out_param_becomes_extra_return() {
    let code = compile(FS_LIKE).unwrap();
    // rename(in name, out old_name) -> Result<String, ...> with the out
    // value as the (single) return.
    assert!(code.contains("pub fn rename(&self, name: &str) -> ::std::result::Result<String"));
}

#[test]
fn idlc_cli_roundtrip() {
    let dir = std::env::temp_dir().join(format!("idlc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let input = dir.join("demo.idl");
    let output = dir.join("demo.rs");
    std::fs::write(&input, FS_LIKE).unwrap();

    let status = std::process::Command::new(env!("CARGO_BIN_EXE_idlc"))
        .arg(&input)
        .arg("-o")
        .arg(&output)
        .status()
        .unwrap();
    assert!(status.success());
    let generated = std::fs::read_to_string(&output).unwrap();
    assert!(generated.contains("pub struct Shape"));

    // Bad input: a helpful positioned error and a failing exit code.
    std::fs::write(&input, "interface broken {").unwrap();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_idlc"))
        .arg(&input)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unterminated"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hash_collision_is_rejected_with_advice() {
    // Manufacture a collision is impractical; instead check duplicate names
    // across multiple inheritance, which uses the same guard path.
    let err = compile(
        r#"
        interface a { void f(); };
        interface b { void f(); };
        interface c : a, b { };
        "#,
    )
    .unwrap_err();
    assert!(err.message.contains("more than once"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compiler_never_panics_on_arbitrary_input(src in ".{0,200}") {
        let _ = compile(&src);
    }

    #[test]
    fn compiler_never_panics_on_idl_shaped_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("interface".to_owned()),
                Just("module".to_owned()),
                Just("struct".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(";".to_owned()),
                Just(":".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("in".to_owned()),
                Just("void".to_owned()),
                Just("long".to_owned()),
                Just("sequence".to_owned()),
                Just("<".to_owned()),
                Just(">".to_owned()),
                "[a-z]{1,6}",
            ],
            0..60,
        )
    ) {
        let src = tokens.join(" ");
        let _ = compile(&src);
    }
}
