//! Network-server tests: door extension across nodes, proxy fabrication,
//! identifier home-coming, partitions, and loss injection.

use std::sync::Arc;
use std::time::Duration;

use spring_kernel::{CallCtx, DoorError, DoorHandler, Message};
use spring_net::{NetConfig, Network};

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

struct Adder;

impl DoorHandler for Adder {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let sum: u32 = msg.bytes.iter().map(|b| *b as u32).sum();
        Ok(Message::from_bytes(sum.to_le_bytes().to_vec()))
    }
}

#[test]
fn cross_node_call_through_proxy() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Adder)).unwrap();

    // Ship the identifier from node B to node A; the client receives a
    // proxy door indistinguishable from a local one.
    let msg = Message {
        bytes: vec![],
        doors: vec![door],
        ..Message::default()
    };
    let arrived = net.ship_message(&server, &client, msg).unwrap();
    let proxy = arrived.doors[0];
    assert_eq!(proxy.owner(), client.id());

    let reply = client
        .call(proxy, Message::from_bytes(vec![1, 2, 3]))
        .unwrap();
    assert_eq!(u32::from_le_bytes(reply.bytes.try_into().unwrap()), 6);
    assert_eq!(net.stats().calls_forwarded, 1);
    assert_eq!(net.stats().proxies_created, 1);
}

#[test]
fn identifier_coming_home_is_local_again() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let other = b.kernel().create_domain("other");
    let door = server.create_door(Arc::new(Echo)).unwrap();

    // B -> A -> B: the identifier that lands back on node B must reach the
    // real door without a proxy hop through A.
    let msg = Message {
        bytes: vec![],
        doors: vec![door],
        ..Message::default()
    };
    let at_a = net.ship_message(&server, &client, msg).unwrap();
    let back = net.ship_message(&client, &other, at_a).unwrap();
    let id = back.doors[0];

    let before = net.stats();
    let reply = other.call(id, Message::from_bytes(vec![9])).unwrap();
    assert_eq!(reply.bytes, vec![9]);
    // The call was local to node B: nothing was forwarded.
    assert_eq!(net.stats().since(&before).calls_forwarded, 0);
}

#[test]
fn third_party_node_gets_chained_route() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");
    let c = net.add_node("c");

    let server = a.kernel().create_domain("server");
    let via = b.kernel().create_domain("via");
    let client = c.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Adder)).unwrap();

    // A -> B -> C: node C's proxy targets node A directly (the network form
    // carries the origin, not the forwarding path).
    let msg = Message {
        bytes: vec![],
        doors: vec![door],
        ..Message::default()
    };
    let at_b = net.ship_message(&server, &via, msg).unwrap();
    let at_c = net.ship_message(&via, &client, at_b).unwrap();

    let reply = client
        .call(at_c.doors[0], Message::from_bytes(vec![5, 5]))
        .unwrap();
    assert_eq!(u32::from_le_bytes(reply.bytes.try_into().unwrap()), 10);
    // Exactly one forward: C -> A, no bounce through B.
    assert_eq!(net.stats().calls_forwarded, 1);
}

#[test]
fn replies_can_carry_doors_back_across_the_net() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");

    struct Minter;
    impl DoorHandler for Minter {
        fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
            let fresh = ctx.server.create_door(Arc::new(Echo))?;
            Ok(Message {
                bytes: vec![],
                doors: vec![fresh],
                ..Message::default()
            })
        }
    }

    let mint = server.create_door(Arc::new(Minter)).unwrap();
    let msg = Message {
        bytes: vec![],
        doors: vec![mint],
        ..Message::default()
    };
    let arrived = net.ship_message(&server, &client, msg).unwrap();

    let reply = client.call(arrived.doors[0], Message::new()).unwrap();
    assert_eq!(reply.doors.len(), 1);
    // The minted door lives on node B; calling it from A forwards again.
    let echo = client
        .call(reply.doors[0], Message::from_bytes(vec![4]))
        .unwrap();
    assert_eq!(echo.bytes, vec![4]);
}

#[test]
fn partitions_cut_calls_and_heal() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                bytes: vec![],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let proxy = arrived.doors[0];

    net.partition(a.id(), b.id());
    match client.call(proxy, Message::new()).unwrap_err() {
        DoorError::Comm(why) => assert!(why.contains("partition")),
        other => panic!("expected comm error, got {other:?}"),
    }

    net.heal(a.id(), b.id());
    assert!(client.call(proxy, Message::new()).is_ok());
}

#[test]
fn loss_injection_fails_calls_probabilistically() {
    let net = Network::new(NetConfig {
        drop_prob: 1.0,
        ..Default::default()
    });
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    // Object transfer is reliable even at drop_prob 1.0.
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                bytes: vec![],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();

    match client.call(arrived.doors[0], Message::new()).unwrap_err() {
        DoorError::Comm(why) => assert!(why.contains("lost")),
        other => panic!("expected loss, got {other:?}"),
    }
    assert!(net.stats().drops >= 1);

    // Turning loss off restores service.
    net.set_config(NetConfig::default());
    assert!(client.call(arrived.doors[0], Message::new()).is_ok());
}

#[test]
fn latency_is_actually_paid() {
    let net = Network::new(NetConfig::with_latency(Duration::from_millis(5)));
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                bytes: vec![],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();

    let start = std::time::Instant::now();
    client.call(arrived.doors[0], Message::new()).unwrap();
    // Two hops (call + reply) at 5 ms each.
    assert!(start.elapsed() >= Duration::from_millis(10));
}

#[test]
fn same_node_ship_is_a_plain_transfer() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let d1 = a.kernel().create_domain("d1");
    let d2 = a.kernel().create_domain("d2");
    let door = d1.create_door(Arc::new(Echo)).unwrap();

    let before = net.stats();
    let arrived = net
        .ship_message(
            &d1,
            &d2,
            Message {
                bytes: vec![7],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    assert_eq!(net.stats().since(&before).messages, 0);
    let reply = d2
        .call(arrived.doors[0], Message::from_bytes(vec![8]))
        .unwrap();
    assert_eq!(reply.bytes, vec![8]);
}

#[test]
fn proxy_reuse_for_repeated_imports() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");

    let server = b.kernel().create_domain("server");
    let c1 = a.kernel().create_domain("c1");
    let c2 = a.kernel().create_domain("c2");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let dup = server.copy_door(door).unwrap();

    let m1 = net
        .ship_message(
            &server,
            &c1,
            Message {
                bytes: vec![],
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let m2 = net
        .ship_message(
            &server,
            &c2,
            Message {
                bytes: vec![],
                doors: vec![dup],
                ..Message::default()
            },
        )
        .unwrap();

    // Same underlying door: node A fabricates the proxy once.
    assert_eq!(net.stats().proxies_created, 1);
    assert!(c1.call(m1.doors[0], Message::new()).is_ok());
    assert!(c2.call(m2.doors[0], Message::new()).is_ok());
}

/// Live identifier count for one kernel: issued minus deleted. Leak
/// regressions assert this returns to its pre-failure baseline.
fn live_ids(kernel: &spring_kernel::Kernel) -> u64 {
    let s = kernel.stats();
    s.ids_issued - s.ids_deleted
}

/// Mints a fresh door into every reply — the shape of call whose lost
/// reply used to strand an export-table pin on the serving node.
struct DoorMaker;

impl DoorHandler for DoorMaker {
    fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
        let d = ctx.server.create_door(Arc::new(Echo))?;
        Ok(Message {
            doors: vec![d],
            ..Message::default()
        })
    }
}

#[test]
fn failed_same_node_ship_releases_every_identifier() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let from = a.kernel().create_domain("from");
    let to = a.kernel().create_domain("to");
    let d1 = from.create_door(Arc::new(Echo)).unwrap();
    let d2 = from.create_door(Arc::new(Echo)).unwrap();

    let before = live_ids(a.kernel());
    // Mid-stream failure: a valid identifier lands in the receiver, then a
    // stale one fails the transfer, leaving a third still unsent. Nothing
    // from the lost message may stay behind in either domain.
    let ok1 = from.copy_door(d1).unwrap();
    let stale = from.copy_door(d1).unwrap();
    from.delete_door(stale).unwrap();
    let ok2 = from.copy_door(d2).unwrap();
    let msg = Message {
        doors: vec![ok1, stale, ok2],
        ..Message::default()
    };
    assert!(net.ship_message(&from, &to, msg).is_err());
    assert_eq!(
        live_ids(a.kernel()),
        before,
        "a failed same-node ship must release both landed and unsent identifiers",
    );
}

#[test]
fn lost_call_attempts_do_not_pin_argument_exports() {
    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");
    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let proxy = arrived.doors[0];

    let before = live_ids(a.kernel());
    net.set_config(NetConfig {
        drop_prob: 1.0,
        ..NetConfig::default()
    });
    // Every attempt carries a door argument; every attempt is lost before
    // leaving the node. Each one exports (pins) the argument door in the
    // network server — the rollback must release it again.
    for _ in 0..8 {
        let arg = client.create_door(Arc::new(Echo)).unwrap();
        let msg = Message {
            bytes: vec![1],
            doors: vec![arg],
            ..Message::default()
        };
        assert!(client.call(proxy, msg).is_err());
    }
    net.set_config(NetConfig::default());
    assert_eq!(
        live_ids(a.kernel()),
        before,
        "every lost call attempt must release the argument exports it pinned",
    );
}

#[test]
fn lost_reply_does_not_pin_reply_exports() {
    // The network RNG is rolled once per lossy hop, call hop first. Scan
    // for a seed whose first roll survives and whose second drops, so
    // exactly the reply is lost — deterministically.
    let mut seed = 0u64;
    loop {
        let mut rng = spring_kernel::FaultRng::seed_from_u64(seed);
        if rng.unit_f64() >= 0.5 && rng.unit_f64() < 0.5 {
            break;
        }
        seed += 1;
    }

    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");
    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(DoorMaker)).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let proxy = arrived.doors[0];

    let before = live_ids(b.kernel());
    net.reseed(seed);
    net.set_config(NetConfig {
        drop_prob: 0.5,
        ..NetConfig::default()
    });
    // The call executes (mints a reply door) and the reply is dropped on
    // the wire: the serving node must release the export it just pinned,
    // which also destroys the now-unreferenced reply door.
    assert!(client.call(proxy, Message::new()).is_err());
    net.set_config(NetConfig::default());
    assert_eq!(
        live_ids(b.kernel()),
        before,
        "a reply lost on the wire must not strand its exported doors",
    );
}

#[test]
fn partition_during_execution_does_not_strand_reply_doors() {
    /// Cuts the network mid-call, so the reply finds its link gone.
    struct Partitioner {
        net: Arc<Network>,
        a: spring_kernel::NodeId,
        b: spring_kernel::NodeId,
    }

    impl DoorHandler for Partitioner {
        fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
            self.net.partition(self.a, self.b);
            let d = ctx.server.create_door(Arc::new(Echo))?;
            Ok(Message {
                doors: vec![d],
                ..Message::default()
            })
        }
    }

    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");
    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server
        .create_door(Arc::new(Partitioner {
            net: net.clone(),
            a: a.id(),
            b: b.id(),
        }))
        .unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let proxy = arrived.doors[0];

    let before = live_ids(b.kernel());
    assert!(client.call(proxy, Message::new()).is_err());
    assert_eq!(
        live_ids(b.kernel()),
        before,
        "a reply blocked by a partition must release its identifiers",
    );
}
