//! Socket transport tests: two independent `Network` instances in one test
//! process stand in for two OS processes — they share no state except the
//! socket between them, exactly like separate processes do (the true
//! multi-process proof, with release binaries, lives in the bench crate's
//! `multi_process` test). Raw hand-crafted frames play the byzantine peer.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spring_kernel::{CallCtx, DoorError, DoorHandler, Message, NodeId};
use spring_net::{NetConfig, Network};

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

/// Invokes the first door in the message (a callback through whatever
/// proxy chain delivered it) and returns that door's reply bytes.
struct CallsBack;

impl DoorHandler for CallsBack {
    fn invoke(&self, ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let mut doors = msg.doors.into_iter();
        let target = doors.next().ok_or(DoorError::InvalidDoor)?;
        let nested = ctx.server.call(
            target,
            Message {
                bytes: msg.bytes,
                ..Message::default()
            },
        )?;
        Ok(Message {
            bytes: nested.bytes,
            ..Message::default()
        })
    }
}

/// Live identifier count for one kernel: issued minus deleted. Leak
/// regressions assert this returns to its pre-failure baseline.
fn live_ids(kernel: &spring_kernel::Kernel) -> u64 {
    let s = kernel.stats();
    s.ids_issued - s.ids_deleted
}

/// Spins until `cond` holds, for assertions on counters bumped by the
/// connection's own threads slightly after the failing call returns.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    for _ in 0..500 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for {what}");
}

fn temp_sock(tag: &str) -> String {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("spring-{}-{}-{n}.sock", std::process::id(), tag))
        .to_string_lossy()
        .into_owned()
}

/// One simulated "process": its own network, one node, an echo bootstrap.
fn echo_process(node: u64) -> (Arc<Network>, spring_net::Node) {
    let net = Network::new(NetConfig::default());
    let n = net.add_node_with_id(format!("proc-{node}"), node);
    let domain = n.kernel().create_domain("servants");
    let door = domain.create_door(Arc::new(Echo)).unwrap();
    net.set_bootstrap(n.id(), &domain, door).unwrap();
    (net, n)
}

fn roundtrip(client: &spring_kernel::Domain, door: spring_kernel::DoorId, payload: &[u8]) {
    let reply = client
        .call(
            door,
            Message {
                bytes: payload.to_vec(),
                ..Message::default()
            },
        )
        .unwrap();
    assert_eq!(reply.bytes, payload);
}

#[test]
fn door_calls_over_uds() {
    let (server_net, server_node) = echo_process(101);
    let path = temp_sock("uds");
    let _listener = server_net.listen_uds(server_node.id(), &path).unwrap();

    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 102);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_uds(client_node.id(), &path).unwrap();
    assert_eq!(peer.remote_node(), Some(NodeId::from_raw(101)));
    assert_eq!(peer.remote_name().as_deref(), Some("proc-101"));

    let door = peer.bootstrap_door(&client).unwrap();
    for i in 0..32u8 {
        roundtrip(&client, door, &[i, i ^ 0xff]);
    }

    let sent = client_net.socket_stats();
    assert!(sent.frames_sent >= 32);
    assert!(sent.frames_received >= 32);
    assert!(sent.bytes_sent > 0);
    let served = server_net.socket_stats();
    assert!(served.frames_received >= 32);
}

#[test]
fn door_calls_over_tcp() {
    let (server_net, server_node) = echo_process(111);
    let listener = server_net
        .listen_tcp(server_node.id(), "127.0.0.1:0")
        .unwrap();

    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 112);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net
        .connect_tcp(client_node.id(), listener.local_addr())
        .unwrap();

    let door = peer.bootstrap_door(&client).unwrap();
    roundtrip(&client, door, b"over tcp");
    roundtrip(&client, door, &[]);
}

/// A door identifier sent through the socket becomes a proxy on the far
/// side, and invoking it calls *back* across the same connection — the
/// nested call must not deadlock the link's reader.
#[test]
fn callback_across_the_same_connection() {
    let net_b = Network::new(NetConfig::default());
    let node_b = net_b.add_node_with_id("proc-b", 121);
    let domain_b = node_b.kernel().create_domain("servants");
    let caller = domain_b.create_door(Arc::new(CallsBack)).unwrap();
    net_b.set_bootstrap(node_b.id(), &domain_b, caller).unwrap();
    let path = temp_sock("callback");
    let _listener = net_b.listen_uds(node_b.id(), &path).unwrap();

    let net_a = Network::new(NetConfig::default());
    let node_a = net_a.add_node_with_id("proc-a", 122);
    let domain_a = node_a.kernel().create_domain("app");
    let peer = net_a.connect_uds(node_a.id(), &path).unwrap();
    let remote = peer.bootstrap_door(&domain_a).unwrap();

    // Send our own echo door along; the servant invokes it re-entrantly.
    let echo = domain_a.create_door(Arc::new(Echo)).unwrap();
    let reply = domain_a
        .call(
            remote,
            Message {
                bytes: b"boomerang".to_vec(),
                doors: vec![echo],
                ..Message::default()
            },
        )
        .unwrap();
    assert_eq!(reply.bytes, b"boomerang");
}

/// Satellite regression: a send that fails mid-frame must release every
/// export freshly pinned for the frame — and the next call must redial and
/// succeed, re-pinning from scratch.
#[test]
fn send_failure_releases_pinned_exports_and_redials() {
    let (server_net, server_node) = echo_process(131);
    let path = temp_sock("sendfail");
    let _listener = server_net.listen_uds(server_node.id(), &path).unwrap();

    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 132);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_uds(client_node.id(), &path).unwrap();
    let remote = peer.bootstrap_door(&client).unwrap();
    roundtrip(&client, remote, b"warm");

    let baseline = live_ids(client_node.kernel());
    peer.inject_write_faults(1);
    let payload = client.create_door(Arc::new(Echo)).unwrap();
    let carried = client.copy_door(payload).unwrap();
    let err = client
        .call(
            remote,
            Message {
                doors: vec![carried],
                ..Message::default()
            },
        )
        .unwrap_err();
    assert!(err.is_comm_failure(), "expected Comm, got {err:?}");
    // The carried copy was consumed by the call and the export pinned for
    // it rolled back: only `payload` itself may remain.
    assert_eq!(live_ids(client_node.kernel()), baseline + 1);
    wait_until("client disconnect count", || {
        client_net.socket_stats().disconnects == 1
    });

    // The connection died with the injected fault; the next call redials.
    let reply = client
        .call(
            remote,
            Message {
                doors: vec![payload],
                ..Message::default()
            },
        )
        .unwrap();
    assert_eq!(reply.doors.len(), 1);
    // The successful send leaves exactly two identifiers above baseline:
    // the export-table pin for the shipped door and the returned copy that
    // came home in the echo — and crucially not a third from the failed
    // attempt.
    assert_eq!(live_ids(client_node.kernel()), baseline + 2);
}

/// Satellite regression: a *reply* frame lost on the wire must release the
/// exports the serving side pinned while staging it (the identifiers a
/// servant minted into the reply), while the caller sees `Comm`.
#[test]
fn lost_reply_releases_server_side_reply_exports() {
    struct DoorMaker;
    impl DoorHandler for DoorMaker {
        fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
            let fresh = ctx.server.create_door(Arc::new(Echo))?;
            Ok(Message {
                doors: vec![fresh],
                ..Message::default()
            })
        }
    }

    let server_net = Network::new(NetConfig::default());
    let server_node = server_net.add_node_with_id("proc-maker", 161);
    let domain = server_node.kernel().create_domain("servants");
    let door = domain.create_door(Arc::new(DoorMaker)).unwrap();
    server_net
        .set_bootstrap(server_node.id(), &domain, door)
        .unwrap();
    let path = temp_sock("replyloss");
    let listener = server_net.listen_uds(server_node.id(), &path).unwrap();

    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 162);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_uds(client_node.id(), &path).unwrap();
    let remote = peer.bootstrap_door(&client).unwrap();

    // Warm call: the reply delivers a freshly minted door as a proxy.
    let warm = client.call(remote, Message::new()).unwrap();
    assert_eq!(warm.doors.len(), 1);
    let server_baseline = live_ids(server_node.kernel());

    // The next reply frame dies in the server's writer: the servant minted
    // and pinned a door for it, and both must be released.
    listener.inject_write_faults(1);
    let err = client.call(remote, Message::new()).unwrap_err();
    assert!(err.is_comm_failure(), "expected Comm, got {err:?}");
    wait_until("server reply exports released", || {
        live_ids(server_node.kernel()) == server_baseline
    });

    // The client redials and the service keeps working.
    let again = client.call(remote, Message::new()).unwrap();
    assert_eq!(again.doors.len(), 1);
}

// ---------------------------------------------------------------------------
// Hand-crafted frames: the byzantine peer.
// ---------------------------------------------------------------------------

fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// A wire-format HELLO: `[kind=1][u64 node][u8 has_boot][u64 boot][u16
/// name_len][name]`.
fn hello_payload(node: u64, boot: Option<u64>) -> Vec<u8> {
    let mut p = vec![1u8];
    p.extend_from_slice(&node.to_le_bytes());
    p.push(boot.is_some() as u8);
    p.extend_from_slice(&boot.unwrap_or(0).to_le_bytes());
    p.extend_from_slice(&0u16.to_le_bytes());
    p
}

/// Reads one length-prefixed frame off a raw socket.
fn read_raw_frame(s: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut prefix = [0u8; 4];
    s.read_exact(&mut prefix)?;
    let mut payload = vec![0u8; u32::from_le_bytes(prefix) as usize];
    s.read_exact(&mut payload)?;
    Ok(payload)
}

/// Satellite regression: frames whose declared counts or lengths disagree
/// with the bytes received are rejected with a typed error — the serving
/// process neither panics nor hangs, and keeps accepting fresh
/// connections.
#[test]
fn malformed_frames_are_rejected_not_trusted() {
    let (server_net, server_node) = echo_process(141);
    let listener = server_net
        .listen_tcp(server_node.id(), "127.0.0.1:0")
        .unwrap();
    let addr = listener.local_addr().to_string();

    // Byzantine frames, each tried on a fresh connection after a valid
    // handshake: a request whose cap count lies far past the frame end, a
    // request cut off mid-payload, trailing garbage past the declared
    // counts, an unknown frame kind, and a length prefix promising bytes
    // that never arrive.
    let lying_caps = {
        let mut p = vec![2u8];
        p.extend_from_slice(&1u64.to_le_bytes()); // frame id
        p.extend_from_slice(&1u32.to_le_bytes()); // one call
        p.extend_from_slice(&1u64.to_le_bytes()); // export
        p.extend_from_slice(&[0u8; 36]); // call id + trace
        p.extend_from_slice(&u32::MAX.to_le_bytes()); // ncaps: a lie
        p
    };
    let truncated = {
        let mut p = vec![2u8];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&1u32.to_le_bytes());
        p.truncate(9); // cut mid-header
        p
    };
    let trailing = {
        let mut p = vec![2u8];
        p.extend_from_slice(&1u64.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes()); // zero calls...
        p.push(0xEE); // ...but one stray byte
        p
    };
    let bad_kind = vec![9u8, 0, 0, 0];
    for payload in [&lying_caps, &truncated, &trailing, &bad_kind] {
        let mut s = TcpStream::connect(&addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let mut bytes = Vec::new();
        put_frame(&mut bytes, &hello_payload(999, None));
        put_frame(&mut bytes, payload);
        s.write_all(&bytes).unwrap();
        let _their_hello = read_raw_frame(&mut s).unwrap();
        // The server must tear the connection down (typed rejection), never
        // hang on it: EOF, not a timeout.
        let mut rest = Vec::new();
        s.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "server sent {} stray bytes", rest.len());
    }

    // A length prefix that promises more than arrives, then EOF: the
    // reader reports the truncation rather than waiting forever.
    {
        let mut s = TcpStream::connect(&addr).unwrap();
        let mut bytes = Vec::new();
        put_frame(&mut bytes, &hello_payload(999, None));
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&[7u8; 10]); // 10 of the promised 100
        s.write_all(&bytes).unwrap();
        drop(s);
    }

    // The server survived it all and still serves real peers.
    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 142);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_tcp(client_node.id(), &addr).unwrap();
    let door = peer.bootstrap_door(&client).unwrap();
    roundtrip(&client, door, b"still alive");
    assert!(server_net.socket_stats().disconnects >= 4);
}

/// Satellite regression: a peer that disconnects mid-call fails the
/// in-flight calls with `Comm` and releases every export pinned for the
/// frame — nothing hangs, nothing leaks.
#[test]
fn peer_disconnect_mid_call_fails_with_comm_and_releases_pins() {
    // A byzantine peer that completes the handshake, reads one request,
    // and vanishes without replying.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let fake = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().unwrap();
        let _client_hello = read_raw_frame(&mut s).unwrap();
        let mut hello = Vec::new();
        put_frame(&mut hello, &hello_payload(901, Some(7)));
        s.write_all(&hello).unwrap();
        let _request = read_raw_frame(&mut s).unwrap();
        // Vanish with the call in flight.
        drop(s);
    });

    let client_net = Network::new(NetConfig::default());
    let client_node = client_net.add_node_with_id("client", 151);
    let client = client_node.kernel().create_domain("app");
    let peer = client_net.connect_tcp(client_node.id(), &addr).unwrap();
    let remote = peer.bootstrap_door(&client).unwrap();

    let baseline = live_ids(client_node.kernel());
    let carried = client.create_door(Arc::new(Echo)).unwrap();
    let err = client
        .call(
            remote,
            Message {
                doors: vec![carried],
                ..Message::default()
            },
        )
        .unwrap_err();
    assert!(err.is_comm_failure(), "expected Comm, got {err:?}");
    assert_eq!(live_ids(client_node.kernel()), baseline);
    fake.join().unwrap();

    // With the peer gone for good, later calls keep failing with `Comm`
    // (the redial finds nobody listening) rather than wedging.
    let err = client.call(remote, Message::new()).unwrap_err();
    assert!(err.is_comm_failure(), "expected Comm, got {err:?}");
}
