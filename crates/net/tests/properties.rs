//! Property-based tests for the network layer: random topologies and hop
//! sequences preserve reachability and never corrupt identifier routing.

use std::sync::Arc;

use proptest::prelude::*;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, Message};
use spring_net::{NetConfig, Network};

struct Tag(u8);

impl DoorHandler for Tag {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let mut bytes = msg.bytes;
        bytes.push(self.0);
        Ok(Message {
            bytes,
            doors: msg.doors,
            ..Message::default()
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ship a door identifier through an arbitrary sequence of domains on an
    /// arbitrary set of machines; calling it afterwards must still reach the
    /// original handler, and the reply identity (the tag byte) must match.
    #[test]
    fn identifier_reaches_home_after_any_route(
        nodes in 1usize..4,
        route in proptest::collection::vec((0usize..4, 0usize..3), 1..10),
        tag in any::<u8>(),
    ) {
        let net = Network::new(NetConfig::default());
        let machines: Vec<_> = (0..nodes).map(|i| net.add_node(format!("m{i}"))).collect();
        // Three domains per machine.
        let domains: Vec<Vec<Domain>> = machines
            .iter()
            .map(|m| (0..3).map(|i| m.kernel().create_domain(format!("d{i}"))).collect())
            .collect();

        let home = &domains[0][0];
        let door = home.create_door(Arc::new(Tag(tag))).unwrap();

        let mut holder = home.clone();
        let mut id = door;
        for (m, d) in route {
            let next = &domains[m % nodes][d];
            let moved = net
                .ship_message(&holder, next, Message { bytes: vec![], doors: vec![id], ..Message::default() })
                .unwrap();
            id = moved.doors[0];
            holder = next.clone();
        }

        let reply = holder.call(id, Message::from_bytes(vec![1, 2])).unwrap();
        prop_assert_eq!(reply.bytes, vec![1, 2, tag]);
    }

    /// Partitions only ever produce clean communication errors, and healing
    /// restores service.
    #[test]
    fn partitions_fail_cleanly_and_heal(
        cut_pairs in proptest::collection::vec((0usize..3, 0usize..3), 0..4),
    ) {
        let net = Network::new(NetConfig::default());
        let machines: Vec<_> = (0..3).map(|i| net.add_node(format!("m{i}"))).collect();
        let server = machines[0].kernel().create_domain("server");
        let clients: Vec<Domain> = machines
            .iter()
            .map(|m| m.kernel().create_domain("client"))
            .collect();

        let mut ids = Vec::new();
        for c in &clients {
            let d = server.create_door(Arc::new(Tag(9))).unwrap();
            let moved = net
                .ship_message(&server, c, Message { bytes: vec![], doors: vec![d], ..Message::default() })
                .unwrap();
            ids.push(moved.doors[0]);
        }

        for (a, b) in &cut_pairs {
            net.partition(machines[*a].id(), machines[*b].id());
        }
        // Calls either succeed or fail with a Comm error; nothing panics,
        // nothing reports a capability violation.
        for (c, id) in clients.iter().zip(&ids) {
            match c.call(*id, Message::new()) {
                Ok(_) => {}
                Err(DoorError::Comm(_)) => {}
                Err(other) => return Err(TestCaseError::fail(format!("unexpected {other:?}"))),
            }
        }
        net.heal_all();
        for (c, id) in clients.iter().zip(&ids) {
            prop_assert!(c.call(*id, Message::new()).is_ok());
        }
    }

    /// Stats are monotone and consistent under arbitrary traffic.
    #[test]
    fn stats_are_monotone(calls in 1usize..30) {
        let net = Network::new(NetConfig::default());
        let a = net.add_node("a");
        let b = net.add_node("b");
        let server = b.kernel().create_domain("server");
        let client = a.kernel().create_domain("client");
        let door = server.create_door(Arc::new(Tag(0))).unwrap();
        let moved = net
            .ship_message(&server, &client, Message { bytes: vec![], doors: vec![door], ..Message::default() })
            .unwrap();

        let mut last = net.stats();
        for _ in 0..calls {
            client.call(moved.doors[0], Message::from_bytes(vec![0; 16])).unwrap();
            let now = net.stats();
            prop_assert!(now.messages >= last.messages + 2); // Call + reply.
            prop_assert!(now.bytes >= last.bytes);
            prop_assert!(now.calls_forwarded == last.calls_forwarded + 1);
            last = now;
        }
    }
}
