//! Per-link batching under concurrency and faults.
//!
//! Concurrent callers on one (source, destination) link coalesce into
//! shared wire frames. These tests prove the three properties the batcher
//! must not trade away: every call still completes and is counted exactly
//! once (stress), a request frame lost on the wire releases the export
//! pins of *every* call aboard (not just the leader's), and a lost reply
//! frame releases every reply-door export the serving node just pinned.
//!
//! The fault tests append their seeds to `target/pipeline-seeds.txt` so a
//! CI failure reports exactly which RNG seeds were exercised.

use std::io::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use spring_kernel::{batching, CallCtx, DoorError, DoorHandler, FaultRng, Message};
use spring_net::{NetConfig, Network};

/// The announced-call count is process-global, so tests that raise it must
/// not overlap (a parallel test's single calls would wait out the linger).
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

/// Mints a fresh door into every reply — the call shape whose lost reply
/// would strand an export-table pin on the serving node.
struct DoorMaker;

impl DoorHandler for DoorMaker {
    fn invoke(&self, ctx: &CallCtx, _msg: Message) -> Result<Message, DoorError> {
        let d = ctx.server.create_door(Arc::new(Echo))?;
        Ok(Message {
            doors: vec![d],
            ..Message::default()
        })
    }
}

/// Live identifier count for one kernel: issued minus deleted.
fn live_ids(kernel: &spring_kernel::Kernel) -> u64 {
    let s = kernel.stats();
    s.ids_issued - s.ids_deleted
}

/// Records the seeds a fault sweep ran, for CI to upload on failure.
fn record_seeds(suite: &str, drop_prob: f64, seeds: &[u64]) {
    // Tests run with the package dir as cwd; aim at the workspace-level
    // target/ so CI's artifact upload finds the file.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target");
    let _ = std::fs::create_dir_all(&dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("pipeline-seeds.txt"))
    {
        let list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
        let _ = writeln!(f, "{suite}: drop_prob={drop_prob} seeds={}", list.join(","));
    }
}

/// Ships a door served by `handler` from a fresh server domain on
/// `server_node` into a fresh client domain on `client_node`, returning
/// (client domain, proxy door).
fn echo_proxy(
    net: &Network,
    server_node: &spring_net::Node,
    client_node: &spring_net::Node,
    handler: Arc<dyn DoorHandler>,
) -> (spring_kernel::Domain, spring_kernel::DoorId) {
    let server = server_node.kernel().create_domain("server");
    let client = client_node.kernel().create_domain("client");
    let door = server.create_door(handler).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    (client, arrived.doors[0])
}

/// Eight threads hammer one link concurrently, each announcing itself so
/// the batcher actually coalesces. Every call must succeed, and the
/// batched/unbatched counters must account for every forwarded call
/// exactly once.
#[test]
fn concurrent_callers_all_complete_and_are_counted_once() {
    let _gate = gate();
    const THREADS: usize = 8;
    const CALLS_PER_THREAD: usize = 50;

    // A generous linger (vs the 200 µs default) so that on a single-core
    // host a waiting leader reliably yields to the follower threads
    // instead of timing out before they are ever scheduled.
    let net = Network::new(NetConfig {
        batch_linger: Duration::from_millis(10),
        ..NetConfig::default()
    });
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (client, proxy) = echo_proxy(&net, &b, &a, Arc::new(Echo));
    let client = Arc::new(client);

    let before = net.stats();
    let start = std::sync::Barrier::new(THREADS);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let client = Arc::clone(&client);
            let start = &start;
            s.spawn(move || {
                // Announce one in-flight call for the thread's whole run, so
                // leaders hold frames open for the other threads; the barrier
                // makes every announcement visible before the first call, so
                // early frames cannot flush as singletons just because the
                // scheduler ran one thread's whole loop first.
                let _announced = batching::announce_scope();
                start.wait();
                for i in 0..CALLS_PER_THREAD {
                    let payload = vec![t as u8, i as u8];
                    let reply = client
                        .call(proxy, Message::from_bytes(payload.clone()))
                        .unwrap();
                    assert_eq!(reply.bytes, payload, "echo must round-trip per call");
                }
            });
        }
    });
    let delta = net.stats().since(&before);

    let total = (THREADS * CALLS_PER_THREAD) as u64;
    assert_eq!(delta.calls_forwarded, total);
    assert_eq!(
        delta.calls_batched + delta.calls_unbatched,
        total,
        "every forwarded call must be counted as batched or unbatched, once",
    );
    assert!(
        delta.calls_batched > 0,
        "eight announced concurrent callers must share at least one frame",
    );
    assert!(
        delta.batch_flushes < total,
        "coalescing must produce fewer flushes than calls",
    );
}

/// A request frame lost on the wire fails every call aboard and releases
/// every export pin — the batch generalization of
/// `lost_call_attempts_do_not_pin_argument_exports`.
#[test]
fn lost_request_frame_releases_every_callers_exports() {
    let _gate = gate();
    const CALLERS: usize = 6;

    let net = Network::new(NetConfig {
        // A linger far above the test's runtime: the frame must flush
        // because all announced calls arrived, not because time passed.
        batch_linger: Duration::from_secs(5),
        ..NetConfig::default()
    });
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (client, proxy) = echo_proxy(&net, &b, &a, Arc::new(Echo));
    let client = Arc::new(client);

    let baseline = live_ids(a.kernel());
    net.set_config(NetConfig {
        drop_prob: 1.0,
        batch_linger: Duration::from_secs(5),
        ..NetConfig::default()
    });

    // Announce all callers up front so the leader holds the frame open
    // until every one of them is aboard — one frame, one loss, six losers.
    for _ in 0..CALLERS {
        batching::announce();
    }
    std::thread::scope(|s| {
        for _ in 0..CALLERS {
            let client = Arc::clone(&client);
            s.spawn(move || {
                // Every call pins a door-argument export before the frame
                // ships; the frame-wide rollback must release it.
                let arg = client.create_door(Arc::new(Echo)).unwrap();
                let msg = Message {
                    bytes: vec![1],
                    doors: vec![arg],
                    ..Message::default()
                };
                match client.call(proxy, msg).unwrap_err() {
                    DoorError::Comm(why) => assert!(why.contains("lost"), "{why}"),
                    other => panic!("expected loss, got {other:?}"),
                }
            });
        }
    });
    for _ in 0..CALLERS {
        batching::retract();
    }

    net.set_config(NetConfig::default());
    assert_eq!(
        live_ids(a.kernel()),
        baseline,
        "a lost batch frame must release the pinned exports of all {CALLERS} calls",
    );
}

/// A reply frame lost on the wire releases the reply-door exports of every
/// call aboard. Seeded so exactly the reply roll drops: the batcher rolls
/// the RNG once per frame per direction, request first.
#[test]
fn lost_reply_frame_releases_every_reply_export() {
    let _gate = gate();
    const CALLERS: usize = 4;
    const DROP: f64 = 0.5;

    // Find a seed whose first roll survives and whose second drops.
    let mut seed = 0u64;
    loop {
        let mut rng = FaultRng::seed_from_u64(seed);
        if rng.unit_f64() >= DROP && rng.unit_f64() < DROP {
            break;
        }
        seed += 1;
    }
    record_seeds("lost_reply_frame", DROP, &[seed]);

    let net = Network::new(NetConfig {
        batch_linger: Duration::from_secs(5),
        ..NetConfig::default()
    });
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (client, proxy) = echo_proxy(&net, &b, &a, Arc::new(DoorMaker));
    let client = Arc::new(client);

    let baseline = live_ids(b.kernel());
    net.reseed(seed);
    net.set_config(NetConfig {
        drop_prob: DROP,
        batch_linger: Duration::from_secs(5),
        ..NetConfig::default()
    });

    for _ in 0..CALLERS {
        batching::announce();
    }
    std::thread::scope(|s| {
        for _ in 0..CALLERS {
            let client = Arc::clone(&client);
            s.spawn(move || {
                // The handler executes and mints a reply door; the reply
                // frame is then dropped, so the call fails and the serving
                // node must unpin (and thereby destroy) the minted door.
                assert!(client.call(proxy, Message::new()).is_err());
            });
        }
    });
    for _ in 0..CALLERS {
        batching::retract();
    }

    net.set_config(NetConfig::default());
    assert_eq!(
        live_ids(b.kernel()),
        baseline,
        "a lost reply frame must release every reply-door export it carried",
    );
}

/// Rejects the poisoned payload, echoes everything else — one bad call in
/// an otherwise healthy frame.
struct Picky;

impl DoorHandler for Picky {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        if msg.bytes == [0xFF] {
            return Err(DoorError::Handler("poisoned".into()));
        }
        Ok(msg)
    }
}

/// Batching keeps per-call failure isolation: a frame with one failing
/// call aboard fails only that call; its seatmates land normally.
#[test]
fn one_bad_call_does_not_fail_its_seatmates() {
    let _gate = gate();
    const GOOD: usize = 3;

    let net = Network::new(NetConfig {
        batch_linger: Duration::from_secs(5),
        ..NetConfig::default()
    });
    let a = net.add_node("a");
    let b = net.add_node("b");
    let (client, proxy) = echo_proxy(&net, &b, &a, Arc::new(Picky));
    let client = Arc::new(client);

    // All four callers announced: they ride one frame together.
    for _ in 0..GOOD + 1 {
        batching::announce();
    }
    let good_results: Vec<bool> = std::thread::scope(|s| {
        let bad = {
            let client = Arc::clone(&client);
            s.spawn(move || client.call(proxy, Message::from_bytes(vec![0xFF])).is_err())
        };
        let goods: Vec<_> = (0..GOOD)
            .map(|i| {
                let client = Arc::clone(&client);
                s.spawn(move || {
                    let reply = client.call(proxy, Message::from_bytes(vec![i as u8]));
                    reply.is_ok_and(|r| r.bytes == vec![i as u8])
                })
            })
            .collect();
        assert!(bad.join().unwrap(), "the poisoned call must fail");
        goods.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for _ in 0..GOOD + 1 {
        batching::retract();
    }
    assert!(
        good_results.iter().all(|&ok| ok),
        "calls sharing a frame with a failing one must still succeed: {good_results:?}",
    );
}
