//! The steady-state forwarded-call fast path must not allocate.
//!
//! This binary installs a counting global allocator (which is why the test
//! lives alone in its own integration-test file). A byte-only cross-node
//! call moves its payload through the wire boundary — `to_wire` and
//! `from_wire` transfer the backing storage, they never copy it — and the
//! batching layer recycles its frame vectors and call slots, so after
//! warmup a forwarded call performs zero heap allocations even though it
//! now passes through the link batcher.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_kernel::{pool, CallCtx, DoorError, DoorHandler, Message};
use spring_net::{NetConfig, Network};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Count only the measuring thread's allocations. The libtest harness's
    // main thread lazily initializes its mpsc receiver context at an
    // arbitrary moment, which a process-wide count would misattribute to
    // the call path. The whole forwarded call runs synchronously on the
    // calling thread, so a per-thread count loses nothing. Const-init TLS
    // lives in .tdata and never allocates on access.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn count() {
    if COUNTING.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

struct Echo;

impl DoorHandler for Echo {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        Ok(msg)
    }
}

#[test]
fn steady_state_forwarded_call_does_not_allocate() {
    assert!(!spring_trace::enabled());

    let net = Network::new(NetConfig::default());
    let a = net.add_node("a");
    let b = net.add_node("b");
    let server = b.kernel().create_domain("server");
    let client = a.kernel().create_domain("client");
    let door = server.create_door(Arc::new(Echo)).unwrap();
    let arrived = net
        .ship_message(
            &server,
            &client,
            Message {
                doors: vec![door],
                ..Message::default()
            },
        )
        .unwrap();
    let proxy = arrived.doors[0];

    let forwarded_call = || {
        let mut bytes = pool::take(8);
        bytes.extend_from_slice(&7u64.to_le_bytes());
        let reply = client.call(proxy, Message::from_bytes(bytes)).unwrap();
        assert_eq!(reply.bytes.len(), 8);
        pool::give(reply.bytes);
    };

    // Warm the buffer pool, the batcher's recycled frame storage, and the
    // call-slot pool.
    for _ in 0..100 {
        forwarded_call();
    }

    COUNTING.set(true);
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..1_000 {
        forwarded_call();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    COUNTING.set(false);
    assert_eq!(
        after - before,
        0,
        "steady-state forwarded calls allocated {} times",
        after - before
    );
}
