//! The socket backend: doors over TCP and Unix-domain sockets between real
//! OS processes.
//!
//! One connection carries symmetric, bidirectional traffic: either side may
//! send request frames (so callbacks — a servant invoking a proxy door that
//! points back at its caller's process — just work), and replies are
//! correlated by per-sender frame id. Each connection owns two threads:
//!
//! * a **writer**, draining a channel of encoded frames through one
//!   `BufWriter` (one flush per frame). A frame that fails to reach the
//!   wire runs its `on_fail` cleanup — the partial-failure hook that keeps
//!   export tables leak-free when a send dies mid-frame — and every frame
//!   queued behind the failure is cleaned up the same way.
//! * a **reader**, decoding inbound frames. Request frames are dispatched
//!   on a fresh thread (never inline, so nested calls over the same link
//!   cannot deadlock it); reply frames settle the waiter registered under
//!   their id. A malformed frame — declared counts or lengths disagreeing
//!   with the bytes received — tears the connection down with a typed
//!   error rather than panicking or hanging.
//!
//! Failure mapping: everything transient (dial failure, peer EOF, write
//! error, stale export on a restarted peer) surfaces as
//! [`DoorError::Comm`], so the replicon/reconnectable retry machinery and
//! at-most-once deduplication work unchanged over sockets. A dialing peer
//! redials automatically on the next ship after its connection dies;
//! accepted peers cannot redial (the server can't call a client back into
//! existence), so their ships fail with `Comm` until the client returns.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex as StdMutex, Weak};
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;
use spring_kernel::framing::{self, FrameReadError};
use spring_kernel::{Domain, DoorError, DoorId, NodeId};
use spring_trace::keys;

use crate::batch::PendingEntry;
use crate::network::NetworkInner;
use crate::server::{NetServer, WireCap, WireMessage};
use crate::transport::{
    decode_hello, decode_reply, decode_request, encode_hello, encode_reply, encode_request,
    frame_kind, Hello, ReplyFrame, ReplyOutcome, RequestFrame, Transport, KIND_REPLY, KIND_REQUEST,
};

/// How long the two-frame HELLO exchange may take before the connection is
/// abandoned (a peer that connects and goes silent must not wedge the
/// dialer or the accept loop forever).
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

/// Poll interval of the non-blocking accept loop.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

fn comm(e: impl std::fmt::Display) -> DoorError {
    DoorError::Comm(e.to_string())
}

// ---------------------------------------------------------------------------
// Stream: one abstraction over the two socket families.
// ---------------------------------------------------------------------------

enum Stream {
    Tcp(TcpStream),
    Uds(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            Stream::Uds(s) => Stream::Uds(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            Stream::Uds(s) => s.set_read_timeout(t),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Uds(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Uds(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Uds(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------------
// Waiter: a one-shot rendezvous between a shipper and the reader thread.
// ---------------------------------------------------------------------------

struct Waiter {
    slot: StdMutex<Option<Result<ReplyFrame, DoorError>>>,
    cv: Condvar,
}

impl Waiter {
    fn new() -> Arc<Waiter> {
        Arc::new(Waiter {
            slot: StdMutex::new(None),
            cv: Condvar::new(),
        })
    }

    /// First write wins: a reply racing the connection's death settles the
    /// waiter exactly once.
    fn fulfill(&self, outcome: Result<ReplyFrame, DoorError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }

    fn wait(&self) -> Result<ReplyFrame, DoorError> {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

/// An encoded frame queued for the writer thread.
struct OutFrame {
    bytes: Vec<u8>,
    /// Run if the frame never reaches the wire (write failure, or queued
    /// behind one): the partial-failure cleanup for whatever the frame
    /// carried — failing a request's waiter, releasing a reply's freshly
    /// pinned exports.
    on_fail: Option<Box<dyn FnOnce() + Send>>,
}

/// Consumes one injected write fault, if any are armed.
fn take_injected_fault(inject: &AtomicU64) -> bool {
    inject
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
        .is_ok()
}

// ---------------------------------------------------------------------------
// Conn: one established, handshaken connection.
// ---------------------------------------------------------------------------

struct Conn {
    net: Weak<NetworkInner>,
    kind: &'static str,
    /// The local node whose network server serves requests arriving here.
    local: u64,
    /// What the peer declared in its HELLO.
    remote: Hello,
    /// Kept for `die`'s shutdown; the reader and writer threads own clones.
    stream: Stream,
    tx: mpsc::Sender<OutFrame>,
    /// Frame id -> the shipper waiting for that frame's reply.
    waiters: Mutex<HashMap<u64, Arc<Waiter>>>,
    next_frame: AtomicU64,
    dead: AtomicBool,
}

impl Conn {
    fn dial(
        net: &Arc<NetworkInner>,
        local: NodeId,
        addr: &Addr,
        kind: &'static str,
        inject: Arc<AtomicU64>,
    ) -> Result<Arc<Conn>, DoorError> {
        let stream = match addr {
            Addr::Tcp(a) => {
                Stream::Tcp(TcpStream::connect(a).map_err(|e| comm(format!("connect {a}: {e}")))?)
            }
            Addr::Uds(p) => Stream::Uds(
                UnixStream::connect(p)
                    .map_err(|e| comm(format!("connect {}: {e}", p.display())))?,
            ),
        };
        Conn::establish(net, local, stream, true, kind, inject)
    }

    /// Runs the HELLO exchange on a fresh stream and spins up the
    /// connection's writer and reader threads. The dialer speaks first.
    fn establish(
        net: &Arc<NetworkInner>,
        local: NodeId,
        mut stream: Stream,
        dialer: bool,
        kind: &'static str,
        inject: Arc<AtomicU64>,
    ) -> Result<Arc<Conn>, DoorError> {
        let server = net.server(local.raw())?;
        if let Stream::Tcp(s) = &stream {
            // Frames are latency-sensitive RPCs; never Nagle them.
            let _ = s.set_nodelay(true);
        }
        let hello = Hello {
            node: local.raw(),
            name: server.domain.kernel().name().to_owned(),
            bootstrap: server.bootstrap_export(),
        };
        stream
            .set_read_timeout(Some(HANDSHAKE_TIMEOUT))
            .map_err(comm)?;
        let mut buf = Vec::new();
        let remote = if dialer {
            framing::write_frame(&mut stream, &encode_hello(&hello)).map_err(comm)?;
            let n = framing::read_frame(&mut stream, &mut buf).map_err(comm)?;
            decode_hello(&buf[..n]).map_err(|e| comm(format!("bad handshake: {e}")))?
        } else {
            let n = framing::read_frame(&mut stream, &mut buf).map_err(comm)?;
            let h = decode_hello(&buf[..n]).map_err(|e| comm(format!("bad handshake: {e}")))?;
            framing::write_frame(&mut stream, &encode_hello(&hello)).map_err(comm)?;
            h
        };
        stream.set_read_timeout(None).map_err(comm)?;
        if remote.node == local.raw() {
            return Err(comm(format!(
                "peer claims our own node id {}: processes sharing a network must be \
                 assigned distinct node ids (Network::add_node_with_id)",
                remote.node
            )));
        }

        let (tx, rx) = mpsc::channel::<OutFrame>();
        let writer_stream = stream.try_clone().map_err(comm)?;
        let reader_stream = stream.try_clone().map_err(comm)?;
        let conn = Arc::new(Conn {
            net: Arc::downgrade(net),
            kind,
            local: local.raw(),
            remote,
            stream,
            tx,
            waiters: Mutex::new(HashMap::new()),
            next_frame: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        {
            let conn = conn.clone();
            thread::Builder::new()
                .name(format!("spring-sock-w-{}", conn.remote.node))
                .spawn(move || writer_loop(&conn, &rx, writer_stream, &inject))
                .map_err(comm)?;
        }
        {
            let conn = conn.clone();
            thread::Builder::new()
                .name(format!("spring-sock-r-{}", conn.remote.node))
                .spawn(move || reader_loop(&conn, reader_stream))
                .map_err(comm)?;
        }
        Ok(conn)
    }

    /// Queues a frame for the writer; if the connection is already dead (or
    /// dies before the writer drains it), the frame's `on_fail` cleanup
    /// runs instead of the write.
    fn send(&self, frame: OutFrame) {
        if self.dead.load(Ordering::SeqCst) {
            if let Some(f) = frame.on_fail {
                f();
            }
            return;
        }
        if let Err(mpsc::SendError(mut lost)) = self.tx.send(frame) {
            if let Some(f) = lost.on_fail.take() {
                f();
            }
        }
    }

    /// Tears the connection down once: shuts the socket, fails every
    /// in-flight waiter with `reason` (so a peer disconnect mid-call fails
    /// the call with `Comm` instead of hanging it), and counts the
    /// disconnect.
    fn die(&self, reason: DoorError) {
        if self.dead.swap(true, Ordering::SeqCst) {
            return;
        }
        self.stream.shutdown();
        let waiters: Vec<Arc<Waiter>> = self.waiters.lock().drain().map(|(_, w)| w).collect();
        for w in waiters {
            w.fulfill(Err(reason.clone()));
        }
        if let Some(net) = self.net.upgrade() {
            net.count_socket_disconnect();
        }
    }
}

fn writer_loop(
    conn: &Arc<Conn>,
    rx: &mpsc::Receiver<OutFrame>,
    stream: Stream,
    inject: &AtomicU64,
) {
    let mut w = BufWriter::new(stream);
    for mut frame in rx.iter() {
        let result = if take_injected_fault(inject) {
            Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "injected write fault",
            ))
        } else {
            framing::write_frame(&mut w, &frame.bytes).and_then(|()| w.flush())
        };
        match result {
            Ok(()) => {
                if let Some(net) = conn.net.upgrade() {
                    net.count_socket_send(frame.bytes.len());
                }
            }
            Err(e) => {
                // This frame never reached the wire, and neither will
                // anything queued behind it: run every cleanup so no
                // export stays pinned and no caller stays parked.
                if let Some(f) = frame.on_fail.take() {
                    f();
                }
                conn.die(comm(format!("send on {} link failed: {e}", conn.kind)));
                for mut late in rx.iter() {
                    if let Some(f) = late.on_fail.take() {
                        f();
                    }
                }
                return;
            }
        }
    }
}

fn reader_loop(conn: &Arc<Conn>, stream: Stream) {
    let mut r = BufReader::new(stream);
    let mut buf = Vec::new();
    loop {
        let n = match framing::read_frame(&mut r, &mut buf) {
            Ok(n) => n,
            Err(FrameReadError::Closed) => {
                conn.die(comm(format!("{} peer disconnected", conn.kind)));
                return;
            }
            Err(e) => {
                // Includes `Truncated` (stream ended short of the declared
                // length) and `Oversized` (a garbage prefix): typed
                // rejection, never a hang on bytes that will not arrive.
                conn.die(comm(format!("{} link read failed: {e}", conn.kind)));
                return;
            }
        };
        let Some(net) = conn.net.upgrade() else {
            conn.die(comm("network shut down"));
            return;
        };
        net.count_socket_receive(n);
        let frame = &buf[..n];
        match frame_kind(frame) {
            Ok(KIND_REQUEST) => match decode_request(frame) {
                Ok(req) => {
                    // Never dispatch inline: a servant that calls back
                    // through a proxy door on this very connection needs
                    // the reader free to deliver the nested reply.
                    let conn2 = conn.clone();
                    let spawned = thread::Builder::new()
                        .name("spring-sock-dispatch".into())
                        .spawn(move || dispatch_request(&conn2, req));
                    if spawned.is_err() {
                        conn.die(comm("dispatch thread spawn failed"));
                        return;
                    }
                }
                Err(e) => {
                    // A frame whose declared counts or lengths disagree
                    // with the bytes received: reject it with the typed
                    // error and tear the link down — the peer's framing is
                    // not trustworthy, and its in-flight calls must fail
                    // with `Comm` rather than hang.
                    conn.die(comm(format!("malformed {} frame: {e}", conn.kind)));
                    return;
                }
            },
            Ok(KIND_REPLY) => match decode_reply(frame) {
                Ok(reply) => {
                    // An unknown id is a late reply for a ship that
                    // already failed; drop it.
                    let waiter = conn.waiters.lock().remove(&reply.id);
                    if let Some(w) = waiter {
                        w.fulfill(Ok(reply));
                    }
                }
                Err(e) => {
                    conn.die(comm(format!("malformed {} frame: {e}", conn.kind)));
                    return;
                }
            },
            _ => {
                conn.die(comm(format!("unexpected {} frame kind", conn.kind)));
                return;
            }
        }
    }
}

/// Serves one inbound request frame: delivery and execution per call, in
/// submission order, mirroring the simulated backend's per-call
/// partial-failure discipline, then one reply frame back.
fn dispatch_request(conn: &Arc<Conn>, req: RequestFrame) {
    let Some(net) = conn.net.upgrade() else {
        return;
    };
    let server = match net.server(conn.local) {
        Ok(s) => s,
        Err(e) => {
            // The serving node is gone: every call aboard is undeliverable,
            // and the sender must release what it pinned for them.
            let outcomes: Vec<ReplyOutcome> = req
                .calls
                .iter()
                .map(|_| ReplyOutcome::NotDelivered(e.clone()))
                .collect();
            conn.send(OutFrame {
                bytes: encode_reply(req.id, &outcomes),
                on_fail: None,
            });
            return;
        }
    };

    let calls = req.calls.len() as u64;
    let mut span = spring_trace::span_start(keys::NET_BATCH, server.domain.trace_scope(), calls);
    let mut outcomes = Vec::with_capacity(req.calls.len());
    // Exports freshly pinned by the staged replies, released as one batch
    // if the reply frame never reaches the wire (the lost-reply-frame
    // discipline: the calls executed, these replies will not be re-sent).
    let mut reply_fresh: Vec<u64> = Vec::new();
    for call in req.calls {
        let door = match server.export_target(call.export) {
            Ok(d) => d,
            Err(e) => {
                outcomes.push(ReplyOutcome::NotDelivered(e));
                continue;
            }
        };
        let delivered = match server.from_wire(call.wire) {
            Ok(m) => m,
            Err(e) => {
                outcomes.push(ReplyOutcome::NotDelivered(e));
                continue;
            }
        };
        // Snapshot the landed identifiers: if the kernel call fails before
        // moving them into the serving domain they would be dropped
        // undeleted (same backstop as the simulated backend).
        let delivered_doors = delivered.doors.clone();
        let reply = match server.domain.call(door, delivered) {
            Ok(r) => r,
            Err(e) => {
                for d in delivered_doors {
                    let _ = server.domain.delete_door(d);
                }
                outcomes.push(ReplyOutcome::Failed(e));
                continue;
            }
        };
        match server.to_wire_tracked(reply) {
            Ok((wire, fresh)) => {
                reply_fresh.extend(fresh);
                outcomes.push(ReplyOutcome::Ok(wire));
            }
            Err(e) => outcomes.push(ReplyOutcome::Failed(e)),
        }
    }
    if outcomes.iter().any(|o| !matches!(o, ReplyOutcome::Ok(_))) {
        span.fail();
    }

    let bytes = encode_reply(req.id, &outcomes);
    let on_fail: Option<Box<dyn FnOnce() + Send>> = if reply_fresh.is_empty() {
        None
    } else {
        let server = server.clone();
        Some(Box::new(move || server.unexport(&reply_fresh)))
    };
    conn.send(OutFrame { bytes, on_fail });
}

// ---------------------------------------------------------------------------
// SocketPeer: the Transport reaching one remote process.
// ---------------------------------------------------------------------------

enum Addr {
    Tcp(String),
    Uds(PathBuf),
}

/// A connection to one remote OS process, registered as the [`Transport`]
/// for that process's node.
///
/// Obtained from [`crate::Network::connect_tcp`] /
/// [`crate::Network::connect_uds`] (dialing side, redials on failure) or
/// fabricated by a [`SocketListener`]'s accept loop (accepting side, fails
/// with `Comm` once the client goes away).
pub struct SocketPeer {
    net: Weak<NetworkInner>,
    local: NodeId,
    kind: &'static str,
    /// Where to redial when the connection dies; `None` on accepted peers.
    redial: Option<Addr>,
    conn: Mutex<Option<Arc<Conn>>>,
    /// Self-reference for re-registering under a restarted peer's new node
    /// id; set immediately after construction.
    me: Mutex<Weak<SocketPeer>>,
    /// Armed write faults: each one makes the writer thread fail one frame
    /// as if the kernel returned an I/O error, exercising the real
    /// send-failure cleanup path deterministically.
    inject: Arc<AtomicU64>,
}

impl SocketPeer {
    pub(crate) fn connect_tcp(
        net: &Arc<NetworkInner>,
        node: NodeId,
        addr: &str,
    ) -> Result<Arc<SocketPeer>, DoorError> {
        Self::connect(net, node, Addr::Tcp(addr.to_string()), "tcp")
    }

    pub(crate) fn connect_uds(
        net: &Arc<NetworkInner>,
        node: NodeId,
        path: &str,
    ) -> Result<Arc<SocketPeer>, DoorError> {
        Self::connect(net, node, Addr::Uds(PathBuf::from(path)), "uds")
    }

    fn connect(
        net: &Arc<NetworkInner>,
        node: NodeId,
        addr: Addr,
        kind: &'static str,
    ) -> Result<Arc<SocketPeer>, DoorError> {
        let inject = Arc::new(AtomicU64::new(0));
        let conn = Conn::dial(net, node, &addr, kind, inject.clone())?;
        let peer = Arc::new(SocketPeer {
            net: Arc::downgrade(net),
            local: node,
            kind,
            redial: Some(addr),
            conn: Mutex::new(Some(conn.clone())),
            me: Mutex::new(Weak::new()),
            inject,
        });
        *peer.me.lock() = Arc::downgrade(&peer);
        net.register_transport(conn.remote.node, peer.clone());
        Ok(peer)
    }

    fn accepted(
        net: &Arc<NetworkInner>,
        node: NodeId,
        conn: Arc<Conn>,
        kind: &'static str,
        inject: Arc<AtomicU64>,
    ) -> Arc<SocketPeer> {
        let peer = Arc::new(SocketPeer {
            net: Arc::downgrade(net),
            local: node,
            kind,
            redial: None,
            conn: Mutex::new(Some(conn.clone())),
            me: Mutex::new(Weak::new()),
            inject,
        });
        *peer.me.lock() = Arc::downgrade(&peer);
        net.register_transport(conn.remote.node, peer.clone());
        peer
    }

    /// The live connection, redialling if the previous one died (dialing
    /// side only).
    fn live_conn(&self, net: &Arc<NetworkInner>) -> Result<Arc<Conn>, DoorError> {
        let mut guard = self.conn.lock();
        if let Some(c) = guard.as_ref() {
            if !c.dead.load(Ordering::SeqCst) {
                return Ok(c.clone());
            }
        }
        let addr = self
            .redial
            .as_ref()
            .ok_or_else(|| comm(format!("{} peer disconnected", self.kind)))?;
        let prior = guard.as_ref().map(|c| c.remote.node);
        let conn = Conn::dial(net, self.local, addr, self.kind, self.inject.clone())?;
        if prior.is_some() && prior != Some(conn.remote.node) {
            // The peer restarted under a different node id: its new
            // identity routes through this link too. (The old id's entry
            // stays and fails with "stale export", which is accurate.)
            if let Some(me) = self.me.lock().upgrade() {
                net.register_transport(conn.remote.node, me);
            }
        }
        *guard = Some(conn.clone());
        Ok(conn)
    }

    /// The remote process's node id, as declared in its HELLO.
    pub fn remote_node(&self) -> Option<NodeId> {
        self.conn
            .lock()
            .as_ref()
            .map(|c| NodeId::from_raw(c.remote.node))
    }

    /// The remote process's machine name, as declared in its HELLO.
    pub fn remote_name(&self) -> Option<String> {
        self.conn.lock().as_ref().map(|c| c.remote.name.clone())
    }

    /// Imports the peer's advertised bootstrap door as a proxy door owned
    /// by `into` — the first identifier a freshly connected process holds,
    /// from which all further doors are exchanged by ordinary calls.
    pub fn bootstrap_door(&self, into: &Domain) -> Result<DoorId, DoorError> {
        let net = self
            .net
            .upgrade()
            .ok_or_else(|| comm("network shut down"))?;
        let conn = self.live_conn(&net)?;
        let boot = conn
            .remote
            .bootstrap
            .ok_or_else(|| comm("peer published no bootstrap door"))?;
        let server = net.server(self.local.raw())?;
        let door = server.import_cap(WireCap {
            origin: conn.remote.node,
            export: boot,
        })?;
        server.domain.transfer_door(door, into)
    }

    /// Arms `n` injected write faults: the next `n` frames queued on this
    /// peer's connection fail as if the socket write returned an error,
    /// killing the connection exactly like a real mid-send failure.
    pub fn inject_write_faults(&self, n: u64) {
        self.inject.store(n, Ordering::Relaxed);
    }

    fn ship_inner(
        &self,
        from: &Arc<NetServer>,
        frame: &mut [PendingEntry],
    ) -> Result<(), DoorError> {
        let net = self
            .net
            .upgrade()
            .ok_or_else(|| comm("network shut down"))?;
        let conn = self.live_conn(&net)?;

        let mut sent = Vec::with_capacity(frame.len());
        let mut wires = Vec::with_capacity(frame.len());
        for (i, entry) in frame.iter_mut().enumerate() {
            if let Some(wire) = entry.wire.take() {
                sent.push(i);
                wires.push((entry.export, wire));
            }
        }
        let borrowed: Vec<(u64, &WireMessage)> = wires.iter().map(|(e, w)| (*e, w)).collect();
        let id = conn.next_frame.fetch_add(1, Ordering::Relaxed);
        let bytes = encode_request(id, &borrowed);
        drop(borrowed);

        let waiter = Waiter::new();
        conn.waiters.lock().insert(id, waiter.clone());
        if conn.dead.load(Ordering::SeqCst) {
            // The connection died between `live_conn` and here; `die` may
            // have drained the waiter map before our insert.
            conn.waiters.lock().remove(&id);
            return Err(comm(format!("{} peer disconnected", self.kind)));
        }
        let fail_waiter = waiter.clone();
        let fkind = self.kind;
        conn.send(OutFrame {
            bytes,
            on_fail: Some(Box::new(move || {
                fail_waiter.fulfill(Err(comm(format!("send on {fkind} link failed"))));
            })),
        });

        let reply = match waiter.wait() {
            Ok(r) => r,
            Err(e) => {
                conn.waiters.lock().remove(&id);
                return Err(e);
            }
        };
        if reply.outcomes.len() != sent.len() {
            let e = comm(format!(
                "protocol violation: {} outcomes for {} calls",
                reply.outcomes.len(),
                sent.len()
            ));
            conn.die(e.clone());
            return Err(e);
        }
        for (i, outcome) in sent.into_iter().zip(reply.outcomes) {
            let entry = &mut frame[i];
            match outcome {
                ReplyOutcome::Ok(wire) => {
                    let landed = from.from_wire(wire);
                    entry.slot.fulfill(landed);
                }
                ReplyOutcome::NotDelivered(e) => {
                    // The call never reached its serving domain: nothing
                    // can ever reference the exports pinned for it.
                    from.unexport(&entry.fresh);
                    entry.slot.fulfill(Err(e));
                }
                ReplyOutcome::Failed(e) => {
                    // Delivered but failed in execution: the pins stay, as
                    // the peer's proxy table may reference them.
                    entry.slot.fulfill(Err(e));
                }
            }
        }
        Ok(())
    }
}

impl Transport for SocketPeer {
    fn kind(&self) -> &'static str {
        self.kind
    }

    fn ship(&self, from: &Arc<NetServer>, frame: &mut [PendingEntry]) {
        let calls = frame.len() as u64;
        let mut span = spring_trace::span_start(keys::NET_BATCH, from.domain.trace_scope(), calls);
        if let Err(e) = self.ship_inner(from, frame) {
            // The frame failed wholesale (dial failure, send failure, peer
            // disconnect awaiting the reply): whether the peer saw any of
            // it is unknowable, but its connection state is gone either
            // way, so every export freshly pinned for the frame is
            // released and every in-flight call fails with `Comm` — the
            // retrying subcontracts re-pin on the next attempt.
            span.fail();
            for entry in frame.iter_mut() {
                from.unexport(&entry.fresh);
                entry.slot.fulfill(Err(e.clone()));
            }
        }
        // Backstop: every caller wakes, even off a path missed above.
        for entry in frame.iter() {
            entry.slot.abort_if_unsettled();
        }
    }
}

// ---------------------------------------------------------------------------
// SocketListener: the accepting side.
// ---------------------------------------------------------------------------

enum Acceptor {
    Tcp(TcpListener),
    Uds(UnixListener),
}

impl Acceptor {
    fn accept(&self) -> io::Result<Stream> {
        match self {
            Acceptor::Tcp(l) => {
                let (s, _) = l.accept()?;
                // The listener is non-blocking (for stop polling); the
                // accepted stream must not inherit that.
                s.set_nonblocking(false)?;
                Ok(Stream::Tcp(s))
            }
            Acceptor::Uds(l) => {
                let (s, _) = l.accept()?;
                s.set_nonblocking(false)?;
                Ok(Stream::Uds(s))
            }
        }
    }
}

/// Accepts socket connections for one node; dropping it stops the accept
/// loop (established connections live on).
pub struct SocketListener {
    stop: Arc<AtomicBool>,
    addr: String,
    uds_path: Option<PathBuf>,
    inject: Arc<AtomicU64>,
}

impl SocketListener {
    pub(crate) fn bind_tcp(
        net: &Arc<NetworkInner>,
        node: NodeId,
        addr: &str,
    ) -> Result<Arc<SocketListener>, DoorError> {
        let listener = TcpListener::bind(addr).map_err(|e| comm(format!("bind {addr}: {e}")))?;
        let local = listener.local_addr().map_err(comm)?.to_string();
        listener.set_nonblocking(true).map_err(comm)?;
        Self::spawn(net, node, Acceptor::Tcp(listener), local, None, "tcp")
    }

    pub(crate) fn bind_uds(
        net: &Arc<NetworkInner>,
        node: NodeId,
        path: &str,
    ) -> Result<Arc<SocketListener>, DoorError> {
        let p = PathBuf::from(path);
        // A stale socket file from a previous run would fail the bind.
        let _ = std::fs::remove_file(&p);
        let listener = UnixListener::bind(&p).map_err(|e| comm(format!("bind {path}: {e}")))?;
        listener.set_nonblocking(true).map_err(comm)?;
        Self::spawn(
            net,
            node,
            Acceptor::Uds(listener),
            path.to_string(),
            Some(p),
            "uds",
        )
    }

    fn spawn(
        net: &Arc<NetworkInner>,
        node: NodeId,
        acceptor: Acceptor,
        addr: String,
        uds_path: Option<PathBuf>,
        kind: &'static str,
    ) -> Result<Arc<SocketListener>, DoorError> {
        let stop = Arc::new(AtomicBool::new(false));
        let inject = Arc::new(AtomicU64::new(0));
        let this = Arc::new(SocketListener {
            stop: stop.clone(),
            addr,
            uds_path,
            inject: inject.clone(),
        });
        let net = Arc::downgrade(net);
        thread::Builder::new()
            .name(format!("spring-sock-accept-{kind}"))
            .spawn(move || accept_loop(&net, node, &acceptor, &stop, &inject, kind))
            .map_err(comm)?;
        Ok(this)
    }

    /// The bound address — the actual one, so `127.0.0.1:0` reports its
    /// ephemeral port.
    pub fn local_addr(&self) -> &str {
        &self.addr
    }

    /// Arms `n` injected write faults on connections accepted by this
    /// listener (shared across them): each fault fails one outbound frame
    /// as if the socket write errored, exercising the reply-loss cleanup
    /// path deterministically.
    pub fn inject_write_faults(&self, n: u64) {
        self.inject.store(n, Ordering::Relaxed);
    }
}

impl Drop for SocketListener {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(p) = &self.uds_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn accept_loop(
    net: &Weak<NetworkInner>,
    node: NodeId,
    acceptor: &Acceptor,
    stop: &AtomicBool,
    inject: &Arc<AtomicU64>,
    kind: &'static str,
) {
    while !stop.load(Ordering::Relaxed) {
        match acceptor.accept() {
            Ok(stream) => {
                let Some(net) = net.upgrade() else { return };
                // Handshake on the accept thread: connections arrive
                // rarely and the exchange is two tiny frames (bounded by
                // the handshake timeout).
                match Conn::establish(&net, node, stream, false, kind, inject.clone()) {
                    Ok(conn) => {
                        // Registration in the transports map keeps the
                        // peer alive; replaced wholesale if the same
                        // remote node reconnects.
                        let _peer = SocketPeer::accepted(&net, node, conn, kind, inject.clone());
                    }
                    Err(_) => {
                        // Bad handshake: drop the connection, keep
                        // accepting.
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
}
