//! Simulated network servers extending Spring doors across machines.
//!
//! "A set of network servers extend the door mechanism transparently over
//! the network. This includes both forwarding door invocations over the
//! network and also mapping door identifiers to and from an extended network
//! form." (§3.3)
//!
//! A [`Network`] connects several nodes; each node owns its own
//! [`spring_kernel::Kernel`] plus a privileged *network server* domain. When
//! a message carrying door identifiers leaves a node, the network server
//! maps each identifier to a network form `(origin node, export id)`; on the
//! receiving node the network server either hands back a local identifier
//! (the door is coming home) or fabricates a *proxy door* whose handler
//! forwards invocations across the network. All of this is invisible to
//! subcontracts: a replicon object whose replicas live on three machines
//! holds three ordinary-looking door identifiers.
//!
//! Fault injection: configurable per-hop latency and jitter, probabilistic
//! message loss (applied to invocation traffic), and node partitions —
//! enough to reproduce the failure behaviour the caching, replicon, and
//! reconnectable subcontracts are designed around.
//!
//! Simplifications (documented in DESIGN.md): network servers pin the doors
//! they export (cross-network unreferenced notification is not propagated),
//! and object-transfer traffic is reliable (loss applies to invocations).

//! Pipelining: concurrent forwarded calls over the same link may share one
//! wire frame — see [`batch`](crate) internals and DESIGN.md §5.12. The
//! batcher is policy-invisible to plain synchronous traffic: with no
//! pipelined calls announced, every call flushes immediately in its own
//! frame.

//! Real sockets: the same door/proxy machinery runs between OS processes —
//! see [`Transport`] for the pluggable frame-shipping boundary and
//! DESIGN.md §5.15 for the contract. [`Network::listen_tcp`],
//! [`Network::listen_uds`], [`Network::connect_tcp`] and
//! [`Network::connect_uds`] attach socket backends; everything else
//! (batching, partial-failure discipline, at-most-once retries) is shared
//! with the simulated backend, which remains the default.

mod batch;
mod config;
mod network;
mod server;
mod socket;
mod transport;

pub use batch::PendingEntry;
pub use config::{NetConfig, NetStatsSnapshot, SocketStatsSnapshot};
pub use network::{Network, Node};
pub use server::NetServer;
pub use socket::{SocketListener, SocketPeer};
pub use transport::Transport;
