//! Per-node network server: export tables and proxy doors.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spring_kernel::{CallCtx, CallId, Domain, DoorError, DoorHandler, DoorId, Message, NodeId};
use spring_trace::TraceCtx;

use crate::network::NetworkInner;

/// A door identifier in its extended network form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct WireCap {
    /// The node whose kernel serves the underlying door.
    pub origin: u64,
    /// Index into the origin node's export table.
    pub export: u64,
}

/// A message in wire form.
///
/// The payload storage *moves* through the wire boundary rather than being
/// copied: `to_wire` takes `Message.bytes` by value into this struct and
/// `from_wire` moves it back out, so a forwarded call's payload is
/// allocated once (from the thread-local buffer pool) and handed along.
/// The simulated cross-address-space copy happens in the kernel's
/// `translate`, where a real system pays it too.
#[derive(Debug)]
pub(crate) struct WireMessage {
    pub bytes: Vec<u8>,
    pub caps: Vec<WireCap>,
    /// The piggybacked trace context, serialized to its 16-byte wire form —
    /// genuinely flattened and rebuilt on each side of the simulated
    /// serialization boundary, so cross-machine propagation exercises the
    /// same path a real network stack would.
    pub trace: [u8; 16],
    /// The piggybacked call identity, serialized to its 20-byte wire form
    /// alongside the trace context — same envelope channel, same
    /// flatten/rebuild discipline, so at-most-once retries stay
    /// deduplicatable across machines without any stub changes.
    pub call: [u8; 20],
}

#[derive(Default)]
struct Tables {
    /// Export id -> the identifier the network server pins for remote users.
    exports: HashMap<u64, DoorId>,
    /// Door token -> export id (dedup: one export per door).
    exports_by_token: HashMap<u64, u64>,
    /// (origin, export) -> the retained identifier for the local proxy door.
    proxies: HashMap<WireCap, DoorId>,
    /// Door token of a proxy door -> its network target.
    proxies_by_token: HashMap<u64, WireCap>,
}

/// One node's network server.
///
/// Opaque outside this crate: [`crate::Transport`] implementations receive
/// it by reference so frames can be mapped to and from wire form, but its
/// tables are driven only by the crate's own shipping paths.
pub struct NetServer {
    pub(crate) node: NodeId,
    pub(crate) domain: Domain,
    tables: Mutex<Tables>,
    next_export: AtomicU64,
    /// Export id of the published bootstrap door, advertised in the socket
    /// handshake so freshly connected processes have one well-known door
    /// to start exchanging identifiers through.
    bootstrap: Mutex<Option<u64>>,
    net: Arc<NetworkInner>,
}

impl NetServer {
    pub(crate) fn new(node: NodeId, domain: Domain, net: Arc<NetworkInner>) -> Arc<NetServer> {
        Arc::new(NetServer {
            node,
            domain,
            tables: Mutex::new(Tables::default()),
            next_export: AtomicU64::new(1),
            bootstrap: Mutex::new(None),
            net,
        })
    }

    /// Maps a door identifier (owned by this network server's domain) to
    /// network form, consuming the identifier. Also reports whether the
    /// call created a *fresh* export-table entry (as opposed to reusing an
    /// existing export or passing a proxy target through). Only fresh
    /// entries may be rolled back by [`NetServer::unexport`]: a reused
    /// entry is shared with every other node already holding a proxy.
    pub(crate) fn export_cap_tracked(&self, door: DoorId) -> Result<(WireCap, bool), DoorError> {
        let token = self.domain.door_token(door)?;
        let mut tables = self.tables.lock();

        // A proxy door heading back out: pass its target through unchanged.
        if let Some(&target) = tables.proxies_by_token.get(&token) {
            drop(tables);
            self.domain.delete_door(door)?;
            return Ok((target, false));
        }

        // Already exported: the duplicate identifier is redundant.
        if let Some(&export) = tables.exports_by_token.get(&token) {
            drop(tables);
            self.domain.delete_door(door)?;
            return Ok((
                WireCap {
                    origin: self.node.raw(),
                    export,
                },
                false,
            ));
        }

        let export = self.next_export.fetch_add(1, Ordering::Relaxed);
        tables.exports.insert(export, door);
        tables.exports_by_token.insert(token, export);
        self.net.count_export();
        Ok((
            WireCap {
                origin: self.node.raw(),
                export,
            },
            true,
        ))
    }

    /// Rolls back export-table entries created for a message that was never
    /// delivered: each entry is removed and its pinned identifier deleted,
    /// so a send lost on the wire does not pin doors forever. Must only be
    /// given export ids reported fresh by the matching
    /// [`NetServer::to_wire_tracked`] call.
    pub(crate) fn unexport(&self, fresh: &[u64]) {
        let mut tables = self.tables.lock();
        for &export in fresh {
            if let Some(door) = tables.exports.remove(&export) {
                if let Ok(token) = self.domain.door_token(door) {
                    tables.exports_by_token.remove(&token);
                }
                let _ = self.domain.delete_door(door);
            }
        }
    }

    /// Maps a network-form capability back to a door identifier owned by
    /// this network server's domain.
    pub(crate) fn import_cap(self: &Arc<Self>, cap: WireCap) -> Result<DoorId, DoorError> {
        if cap.origin == self.node.raw() {
            // The identifier came home: mint a fresh one for the receiver.
            let tables = self.tables.lock();
            let pinned = *tables
                .exports
                .get(&cap.export)
                .ok_or_else(|| DoorError::Comm(format!("stale export {}", cap.export)))?;
            drop(tables);
            return self.domain.copy_door(pinned);
        }

        // Foreign door: reuse or fabricate a proxy.
        {
            let tables = self.tables.lock();
            if let Some(&retained) = tables.proxies.get(&cap) {
                drop(tables);
                return self.domain.copy_door(retained);
            }
        }
        let handler = Arc::new(ProxyHandler {
            target: cap,
            server: Arc::downgrade(self),
        });
        let retained = self.domain.create_door(handler)?;
        let issued = self.domain.copy_door(retained)?;
        let token = self.domain.door_token(retained)?;
        let mut tables = self.tables.lock();
        tables.proxies.insert(cap, retained);
        tables.proxies_by_token.insert(token, cap);
        self.net.count_proxy();
        Ok(issued)
    }

    /// Records the export id of the published bootstrap door.
    pub(crate) fn set_bootstrap(&self, export: u64) {
        *self.bootstrap.lock() = Some(export);
    }

    /// The export id advertised to connecting processes, if any.
    pub(crate) fn bootstrap_export(&self) -> Option<u64> {
        *self.bootstrap.lock()
    }

    /// Resolves an export id to the pinned door for call delivery.
    pub(crate) fn export_target(&self, export: u64) -> Result<DoorId, DoorError> {
        self.tables
            .lock()
            .exports
            .get(&export)
            .copied()
            .ok_or_else(|| DoorError::Comm(format!("stale export {export}")))
    }

    /// Converts an outbound message (identifiers owned by this server's
    /// domain) to wire form.
    pub(crate) fn to_wire(&self, msg: Message) -> Result<WireMessage, DoorError> {
        self.to_wire_tracked(msg).map(|(wire, _)| wire)
    }

    /// Like [`NetServer::to_wire`], but additionally returns the export ids
    /// freshly pinned for this message, so a caller whose subsequent hop
    /// fails can release them with [`NetServer::unexport`] instead of
    /// leaking one pinned door per lost send. If exporting fails partway,
    /// the entries already created for this message are rolled back before
    /// the error propagates.
    pub(crate) fn to_wire_tracked(
        &self,
        msg: Message,
    ) -> Result<(WireMessage, Vec<u64>), DoorError> {
        let mut caps = Vec::with_capacity(msg.doors.len());
        let mut fresh = Vec::new();
        let mut doors = msg.doors.into_iter();
        for d in doors.by_ref() {
            match self.export_cap_tracked(d) {
                Ok((cap, is_fresh)) => {
                    if is_fresh {
                        fresh.push(cap.export);
                    }
                    caps.push(cap);
                }
                Err(e) => {
                    self.unexport(&fresh);
                    // The failing identifier and the ones not yet exported
                    // would otherwise be dropped undeleted.
                    let _ = self.domain.delete_door(d);
                    for rest in doors {
                        let _ = self.domain.delete_door(rest);
                    }
                    return Err(e);
                }
            }
        }
        Ok((
            WireMessage {
                bytes: msg.bytes,
                caps,
                trace: msg.trace.to_bytes(),
                call: msg.call.to_bytes(),
            },
            fresh,
        ))
    }

    /// Converts an inbound wire message to a local message whose identifiers
    /// are owned by this server's domain.
    pub(crate) fn from_wire(self: &Arc<Self>, wire: WireMessage) -> Result<Message, DoorError> {
        let mut doors = Vec::with_capacity(wire.caps.len());
        for cap in wire.caps {
            match self.import_cap(cap) {
                Ok(d) => doors.push(d),
                Err(e) => {
                    // Roll back the identifiers already issued for this
                    // message; the call is not going to be delivered.
                    for d in doors {
                        let _ = self.domain.delete_door(d);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Message {
            bytes: wire.bytes,
            doors,
            trace: TraceCtx::from_bytes(wire.trace),
            call: CallId::from_bytes(wire.call),
        })
    }
}

/// Handler for a proxy door: forwards invocations across the network.
struct ProxyHandler {
    target: WireCap,
    server: std::sync::Weak<NetServer>,
}

impl DoorHandler for ProxyHandler {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let server = self
            .server
            .upgrade()
            .ok_or_else(|| DoorError::Comm("network server shut down".into()))?;
        // The kernel has already translated `msg`'s identifiers into the
        // network server's domain; forward over the network.
        server.net.forward_call(&server, self.target, msg)
    }
}
