//! Per-node network server: export tables and proxy doors.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spring_kernel::{CallCtx, Domain, DoorError, DoorHandler, DoorId, Message, NodeId};
use spring_trace::TraceCtx;

use crate::network::NetworkInner;

/// A door identifier in its extended network form.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) struct WireCap {
    /// The node whose kernel serves the underlying door.
    pub origin: u64,
    /// Index into the origin node's export table.
    pub export: u64,
}

/// A message in wire form.
pub(crate) struct WireMessage {
    pub bytes: Vec<u8>,
    pub caps: Vec<WireCap>,
    /// The piggybacked trace context, serialized to its 16-byte wire form —
    /// genuinely flattened and rebuilt on each side of the simulated
    /// serialization boundary, so cross-machine propagation exercises the
    /// same path a real network stack would.
    pub trace: [u8; 16],
}

#[derive(Default)]
struct Tables {
    /// Export id -> the identifier the network server pins for remote users.
    exports: HashMap<u64, DoorId>,
    /// Door token -> export id (dedup: one export per door).
    exports_by_token: HashMap<u64, u64>,
    /// (origin, export) -> the retained identifier for the local proxy door.
    proxies: HashMap<WireCap, DoorId>,
    /// Door token of a proxy door -> its network target.
    proxies_by_token: HashMap<u64, WireCap>,
}

/// One node's network server.
pub(crate) struct NetServer {
    pub node: NodeId,
    pub domain: Domain,
    tables: Mutex<Tables>,
    next_export: AtomicU64,
    net: Arc<NetworkInner>,
}

impl NetServer {
    pub fn new(node: NodeId, domain: Domain, net: Arc<NetworkInner>) -> Arc<NetServer> {
        Arc::new(NetServer {
            node,
            domain,
            tables: Mutex::new(Tables::default()),
            next_export: AtomicU64::new(1),
            net,
        })
    }

    /// Maps a door identifier (owned by this network server's domain) to
    /// network form, consuming the identifier.
    pub fn export_cap(&self, door: DoorId) -> Result<WireCap, DoorError> {
        let token = self.domain.door_token(door)?;
        let mut tables = self.tables.lock();

        // A proxy door heading back out: pass its target through unchanged.
        if let Some(&target) = tables.proxies_by_token.get(&token) {
            drop(tables);
            self.domain.delete_door(door)?;
            return Ok(target);
        }

        // Already exported: the duplicate identifier is redundant.
        if let Some(&export) = tables.exports_by_token.get(&token) {
            drop(tables);
            self.domain.delete_door(door)?;
            return Ok(WireCap {
                origin: self.node.raw(),
                export,
            });
        }

        let export = self.next_export.fetch_add(1, Ordering::Relaxed);
        tables.exports.insert(export, door);
        tables.exports_by_token.insert(token, export);
        self.net.count_export();
        Ok(WireCap {
            origin: self.node.raw(),
            export,
        })
    }

    /// Maps a network-form capability back to a door identifier owned by
    /// this network server's domain.
    pub fn import_cap(self: &Arc<Self>, cap: WireCap) -> Result<DoorId, DoorError> {
        if cap.origin == self.node.raw() {
            // The identifier came home: mint a fresh one for the receiver.
            let tables = self.tables.lock();
            let pinned = *tables
                .exports
                .get(&cap.export)
                .ok_or_else(|| DoorError::Comm(format!("stale export {}", cap.export)))?;
            drop(tables);
            return self.domain.copy_door(pinned);
        }

        // Foreign door: reuse or fabricate a proxy.
        {
            let tables = self.tables.lock();
            if let Some(&retained) = tables.proxies.get(&cap) {
                drop(tables);
                return self.domain.copy_door(retained);
            }
        }
        let handler = Arc::new(ProxyHandler {
            target: cap,
            server: Arc::downgrade(self),
        });
        let retained = self.domain.create_door(handler)?;
        let issued = self.domain.copy_door(retained)?;
        let token = self.domain.door_token(retained)?;
        let mut tables = self.tables.lock();
        tables.proxies.insert(cap, retained);
        tables.proxies_by_token.insert(token, cap);
        self.net.count_proxy();
        Ok(issued)
    }

    /// Resolves an export id to the pinned door for call delivery.
    pub fn export_target(&self, export: u64) -> Result<DoorId, DoorError> {
        self.tables
            .lock()
            .exports
            .get(&export)
            .copied()
            .ok_or_else(|| DoorError::Comm(format!("stale export {export}")))
    }

    /// Converts an outbound message (identifiers owned by this server's
    /// domain) to wire form.
    pub fn to_wire(&self, msg: Message) -> Result<WireMessage, DoorError> {
        let mut caps = Vec::with_capacity(msg.doors.len());
        for d in msg.doors {
            caps.push(self.export_cap(d)?);
        }
        Ok(WireMessage {
            bytes: msg.bytes,
            caps,
            trace: msg.trace.to_bytes(),
        })
    }

    /// Converts an inbound wire message to a local message whose identifiers
    /// are owned by this server's domain.
    pub fn from_wire(self: &Arc<Self>, wire: WireMessage) -> Result<Message, DoorError> {
        let mut doors = Vec::with_capacity(wire.caps.len());
        for cap in wire.caps {
            doors.push(self.import_cap(cap)?);
        }
        Ok(Message {
            bytes: wire.bytes,
            doors,
            trace: TraceCtx::from_bytes(wire.trace),
        })
    }
}

/// Handler for a proxy door: forwards invocations across the network.
struct ProxyHandler {
    target: WireCap,
    server: std::sync::Weak<NetServer>,
}

impl DoorHandler for ProxyHandler {
    fn invoke(&self, _ctx: &CallCtx, msg: Message) -> Result<Message, DoorError> {
        let server = self
            .server
            .upgrade()
            .ok_or_else(|| DoorError::Comm("network server shut down".into()))?;
        // The kernel has already translated `msg`'s identifiers into the
        // network server's domain; forward over the network.
        server.net.forward_call(&server, self.target, msg)
    }
}
