//! Pluggable frame transports behind the [`crate::batch::LinkBatcher`]
//! boundary, plus the byte-level frame codec the socket backend speaks.
//!
//! Everything above this line — proxy doors, `to_wire`/`from_wire` mapping,
//! per-link batching, the partial-failure discipline — is transport
//! agnostic: a formed frame of [`PendingEntry`]s is handed to whichever
//! [`Transport`] serves the destination node. The default backend is the
//! in-process simulated network ([`SimTransport`], which preserves the
//! seeded fault behaviour bit for bit); the socket backend
//! ([`crate::socket::SocketPeer`]) ships the same frames over TCP or
//! Unix-domain sockets between real OS processes. Subcontracts cannot tell
//! the difference except by the failure modes DESIGN.md §5.15 documents.

use std::sync::{Arc, Weak};

use spring_kernel::DoorError;

use crate::batch::PendingEntry;
use crate::network::NetworkInner;
use crate::server::{NetServer, WireCap, WireMessage};

/// A frame shipper for one destination node.
///
/// Contract (DESIGN.md §5.15):
///
/// * `ship` is invoked by the batcher's leader thread once the flush policy
///   fires, with no batcher lock held, and **must settle every entry's
///   [`crate::batch::CallSlot`] before returning** — a stranded slot hangs
///   its caller forever.
/// * Calls within one frame are delivered to the destination in submission
///   order; no ordering is promised *across* frames.
/// * Failures must be reported through the existing taxonomy: anything a
///   retrying subcontract should treat as transient (lost frame, dead
///   connection, stale export on a restarted peer) is
///   [`DoorError::Comm`], so replicon/reconnectable machinery works
///   unchanged over any backend.
/// * A frame that fails before delivery must release the export-table
///   entries freshly pinned for every call aboard
///   ([`NetServer::unexport`]); a per-call failure releases only that
///   call's entries.
pub trait Transport: Send + Sync {
    /// Short transport kind for stats and debugging ("sim", "tcp", "uds").
    fn kind(&self) -> &'static str;

    /// Ships one frame of forwarded calls, settling every entry's slot.
    fn ship(&self, from: &Arc<NetServer>, frame: &mut [PendingEntry]);
}

/// The default backend: frames delivered through the in-process simulated
/// network, with its seeded latency/jitter/loss model. This is the exact
/// pre-transport-trait code path — same hops, same RNG draws, in the same
/// order — so every seeded fault sweep reproduces bit for bit.
pub(crate) struct SimTransport {
    pub net: Weak<NetworkInner>,
    /// Destination node this transport reaches.
    pub origin: u64,
}

impl SimTransport {
    pub(crate) fn new(net: &Arc<NetworkInner>, origin: u64) -> SimTransport {
        SimTransport {
            net: Arc::downgrade(net),
            origin,
        }
    }
}

impl Transport for SimTransport {
    fn kind(&self) -> &'static str {
        "sim"
    }

    fn ship(&self, from: &Arc<NetServer>, frame: &mut [PendingEntry]) {
        match self.net.upgrade() {
            Some(net) => net.ship_batch(from, self.origin, frame),
            None => {
                let err = DoorError::Comm("network shut down".into());
                for entry in frame.iter_mut() {
                    from.unexport(&entry.fresh);
                    entry.slot.fulfill(Err(err.clone()));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------
//
// The socket backend exchanges length-prefixed frames (the prefix handled
// by `spring_kernel::framing`); the payload layout here is deliberately
// flat and little-endian throughout:
//
//   HELLO:   [kind=1][u64 node][u8 has_boot][u64 boot_export]
//            [u16 name_len][name bytes]
//   REQUEST: [kind=2][u64 frame_id][u32 ncalls] then per call
//            [u64 export][20B call id][16B trace][u32 ncaps]
//            [ncaps × (u64 origin, u64 export)][u32 nbytes][payload]
//   REPLY:   [kind=3][u64 frame_id][u32 ncalls] then per call
//            [u8 status] where status 0 (ok) is followed by
//            [20B call id][16B trace][u32 ncaps][caps][u32 nbytes][payload]
//            and statuses 1 (not delivered) / 2 (failed in execution) by
//            [u8 error kind][u32 msg_len][utf-8 message]
//
// The payload bytes are the marshalled `WireMessage.bytes` **unmodified**:
// a flat IDL frame produced by the PR 6 codegen travels byte-identical and
// is validated in place on the receive side's read buffer — the socket
// layer never re-marshals, re-aligns, or re-tags application payloads.
//
// Decoding is fully defensive and returns `spring_buf::WireError`: a frame
// whose declared counts or lengths disagree with the bytes received is
// rejected with `Truncated`/`OverLength`, unknown kind/status/error tags
// with `BadTag` — never a panic, never an out-of-bounds read, never a
// hang (the outer length prefix bounds every read up front).

use spring_buf::WireError;

pub(crate) const KIND_HELLO: u8 = 1;
pub(crate) const KIND_REQUEST: u8 = 2;
pub(crate) const KIND_REPLY: u8 = 3;

/// Reply status: the call executed and this is its reply.
const STATUS_OK: u8 = 0;
/// Reply status: the call never reached its serving domain (stale export,
/// failed import); the sender must release the exports it pinned.
const STATUS_NOT_DELIVERED: u8 = 1;
/// Reply status: the call was delivered but failed in execution.
const STATUS_FAILED: u8 = 2;

/// The connection-opening exchange: each side sends one HELLO first thing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Hello {
    pub node: u64,
    pub name: String,
    /// Export id of the node's bootstrap door, if it published one.
    pub bootstrap: Option<u64>,
}

/// One call riding a request frame.
#[derive(Debug)]
pub(crate) struct RequestCall {
    pub export: u64,
    pub wire: WireMessage,
}

/// A decoded request frame.
#[derive(Debug)]
pub(crate) struct RequestFrame {
    pub id: u64,
    pub calls: Vec<RequestCall>,
}

/// Per-call outcome riding a reply frame.
#[derive(Debug)]
pub(crate) enum ReplyOutcome {
    Ok(WireMessage),
    /// Failed before the call reached its serving domain: the *sender*
    /// still owns responsibility for the exports it pinned for this call
    /// and must release them (mirrors the simulated backend's
    /// `from_wire`-failure discipline).
    NotDelivered(DoorError),
    /// Delivered but failed in execution; the serving side has already
    /// cleaned up the landed identifiers, the sender's pins stay (the
    /// receiving node's proxy table references them), exactly as in the
    /// simulated backend.
    Failed(DoorError),
}

/// A decoded reply frame.
#[derive(Debug)]
pub(crate) struct ReplyFrame {
    pub id: u64,
    pub outcomes: Vec<ReplyOutcome>,
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_error(out: &mut Vec<u8>, e: &DoorError) {
    let (kind, msg): (u8, &str) = match e {
        DoorError::InvalidDoor => (0, ""),
        DoorError::Revoked => (1, ""),
        DoorError::DomainDead => (2, ""),
        DoorError::Comm(m) => (3, m),
        DoorError::Handler(m) => (4, m),
        DoorError::NotPermitted => (5, ""),
        DoorError::InvalidShm => (6, ""),
    };
    out.push(kind);
    put_u32(out, msg.len() as u32);
    out.extend_from_slice(msg.as_bytes());
}

fn put_wire(out: &mut Vec<u8>, wire: &WireMessage) {
    out.extend_from_slice(&wire.call);
    out.extend_from_slice(&wire.trace);
    put_u32(out, wire.caps.len() as u32);
    for cap in &wire.caps {
        put_u64(out, cap.origin);
        put_u64(out, cap.export);
    }
    put_u32(out, wire.bytes.len() as u32);
    out.extend_from_slice(&wire.bytes);
}

pub(crate) fn encode_hello(hello: &Hello) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + hello.name.len());
    out.push(KIND_HELLO);
    put_u64(&mut out, hello.node);
    out.push(hello.bootstrap.is_some() as u8);
    put_u64(&mut out, hello.bootstrap.unwrap_or(0));
    let name = &hello.name.as_bytes()[..hello.name.len().min(u16::MAX as usize)];
    put_u16(&mut out, name.len() as u16);
    out.extend_from_slice(name);
    out
}

/// Encodes a request frame from the calls' wire messages. `calls` pairs
/// each target export with its wire form.
pub(crate) fn encode_request(id: u64, calls: &[(u64, &WireMessage)]) -> Vec<u8> {
    let payload: usize = calls.iter().map(|(_, w)| 48 + w.bytes.len()).sum();
    let mut out = Vec::with_capacity(16 + payload);
    out.push(KIND_REQUEST);
    put_u64(&mut out, id);
    put_u32(&mut out, calls.len() as u32);
    for (export, wire) in calls {
        put_u64(&mut out, *export);
        put_wire(&mut out, wire);
    }
    out
}

pub(crate) fn encode_reply(id: u64, outcomes: &[ReplyOutcome]) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(KIND_REPLY);
    put_u64(&mut out, id);
    put_u32(&mut out, outcomes.len() as u32);
    for outcome in outcomes {
        match outcome {
            ReplyOutcome::Ok(wire) => {
                out.push(STATUS_OK);
                put_wire(&mut out, wire);
            }
            ReplyOutcome::NotDelivered(e) => {
                out.push(STATUS_NOT_DELIVERED);
                put_error(&mut out, e);
            }
            ReplyOutcome::Failed(e) => {
                out.push(STATUS_FAILED);
                put_error(&mut out, e);
            }
        }
    }
    out
}

/// A bounds-checked little-endian cursor over one received frame. Every
/// read is validated against the frame length, so a lying count or length
/// field produces a typed [`WireError`] instead of a panic.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            needed: usize::MAX,
            actual: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(WireError::Truncated {
                needed: end,
                actual: self.buf.len(),
            });
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// The frame must be fully consumed: trailing bytes mean the declared
    /// counts disagree with the received length.
    fn finish(self) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(WireError::OverLength {
                expected: self.pos,
                actual: self.buf.len(),
            });
        }
        Ok(())
    }
}

fn get_error(c: &mut Cursor<'_>) -> Result<DoorError, WireError> {
    let kind_off = c.pos;
    let kind = c.u8()?;
    let len = c.u32()? as usize;
    let msg_off = c.pos;
    let msg = String::from_utf8_lossy(c.take(len)?).into_owned();
    Ok(match kind {
        0 => DoorError::InvalidDoor,
        1 => DoorError::Revoked,
        2 => DoorError::DomainDead,
        3 => DoorError::Comm(msg),
        4 => DoorError::Handler(msg),
        5 => DoorError::NotPermitted,
        6 => DoorError::InvalidShm,
        other => {
            let _ = msg_off;
            return Err(WireError::BadTag {
                offset: kind_off,
                value: other as u32,
            });
        }
    })
}

fn get_wire(c: &mut Cursor<'_>) -> Result<WireMessage, WireError> {
    let call: [u8; 20] = c.take(20)?.try_into().unwrap();
    let trace: [u8; 16] = c.take(16)?.try_into().unwrap();
    let ncaps = c.u32()? as usize;
    // Bound the pre-allocation by what the frame could actually hold (16
    // bytes per cap), so a lying count fails on the read, not the reserve.
    let mut caps = Vec::with_capacity(ncaps.min(c.buf.len() / 16 + 1));
    for _ in 0..ncaps {
        let origin = c.u64()?;
        let export = c.u64()?;
        caps.push(WireCap { origin, export });
    }
    let nbytes = c.u32()? as usize;
    // The payload is copied out of the read buffer exactly once — the
    // receive copy a real network always pays. Downstream flat decoding
    // validates in place on this very allocation.
    let bytes = c.take(nbytes)?.to_vec();
    Ok(WireMessage {
        bytes,
        caps,
        trace,
        call,
    })
}

/// Peeks at a frame's kind byte without consuming anything.
pub(crate) fn frame_kind(frame: &[u8]) -> Result<u8, WireError> {
    frame.first().copied().ok_or(WireError::Truncated {
        needed: 1,
        actual: 0,
    })
}

pub(crate) fn decode_hello(frame: &[u8]) -> Result<Hello, WireError> {
    let mut c = Cursor::new(frame);
    expect_kind(&mut c, KIND_HELLO)?;
    let node = c.u64()?;
    let has_boot = c.u8()?;
    if has_boot > 1 {
        return Err(WireError::BadBool {
            offset: 9,
            value: has_boot,
        });
    }
    let boot = c.u64()?;
    let name_len = c.u16()? as usize;
    let name = String::from_utf8_lossy(c.take(name_len)?).into_owned();
    c.finish()?;
    Ok(Hello {
        node,
        name,
        bootstrap: (has_boot == 1).then_some(boot),
    })
}

fn expect_kind(c: &mut Cursor<'_>, kind: u8) -> Result<(), WireError> {
    let got = c.u8()?;
    if got != kind {
        return Err(WireError::BadTag {
            offset: 0,
            value: got as u32,
        });
    }
    Ok(())
}

pub(crate) fn decode_request(frame: &[u8]) -> Result<RequestFrame, WireError> {
    let mut c = Cursor::new(frame);
    expect_kind(&mut c, KIND_REQUEST)?;
    let id = c.u64()?;
    let ncalls = c.u32()? as usize;
    let mut calls = Vec::with_capacity(ncalls.min(c.buf.len() / 48 + 1));
    for _ in 0..ncalls {
        let export = c.u64()?;
        let wire = get_wire(&mut c)?;
        calls.push(RequestCall { export, wire });
    }
    c.finish()?;
    Ok(RequestFrame { id, calls })
}

pub(crate) fn decode_reply(frame: &[u8]) -> Result<ReplyFrame, WireError> {
    let mut c = Cursor::new(frame);
    expect_kind(&mut c, KIND_REPLY)?;
    let id = c.u64()?;
    let ncalls = c.u32()? as usize;
    let mut outcomes = Vec::with_capacity(ncalls.min(c.buf.len() + 1));
    for _ in 0..ncalls {
        let status_off = c.pos;
        let status = c.u8()?;
        outcomes.push(match status {
            STATUS_OK => ReplyOutcome::Ok(get_wire(&mut c)?),
            STATUS_NOT_DELIVERED => ReplyOutcome::NotDelivered(get_error(&mut c)?),
            STATUS_FAILED => ReplyOutcome::Failed(get_error(&mut c)?),
            other => {
                return Err(WireError::BadTag {
                    offset: status_off,
                    value: other as u32,
                })
            }
        });
    }
    c.finish()?;
    Ok(ReplyFrame { id, outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_wire(payload: &[u8], caps: &[(u64, u64)]) -> WireMessage {
        WireMessage {
            bytes: payload.to_vec(),
            caps: caps
                .iter()
                .map(|&(origin, export)| WireCap { origin, export })
                .collect(),
            trace: [7; 16],
            call: [9; 20],
        }
    }

    #[test]
    fn hello_round_trip() {
        for boot in [None, Some(41)] {
            let hello = Hello {
                node: 12,
                name: "peer-a".into(),
                bootstrap: boot,
            };
            let enc = encode_hello(&hello);
            assert_eq!(frame_kind(&enc).unwrap(), KIND_HELLO);
            assert_eq!(decode_hello(&enc).unwrap(), hello);
        }
    }

    #[test]
    fn request_round_trip_preserves_payload_and_envelope() {
        let w1 = sample_wire(b"abcdef", &[(1, 2), (3, 4)]);
        let w2 = sample_wire(b"", &[]);
        let enc = encode_request(77, &[(10, &w1), (11, &w2)]);
        let dec = decode_request(&enc).unwrap();
        assert_eq!(dec.id, 77);
        assert_eq!(dec.calls.len(), 2);
        assert_eq!(dec.calls[0].export, 10);
        assert_eq!(dec.calls[0].wire.bytes, b"abcdef");
        assert_eq!(dec.calls[0].wire.caps.len(), 2);
        assert_eq!(dec.calls[0].wire.caps[1].export, 4);
        assert_eq!(dec.calls[0].wire.trace, [7; 16]);
        assert_eq!(dec.calls[0].wire.call, [9; 20]);
        assert_eq!(dec.calls[1].export, 11);
        assert!(dec.calls[1].wire.bytes.is_empty());
    }

    #[test]
    fn reply_round_trip_all_statuses() {
        let enc = encode_reply(
            5,
            &[
                ReplyOutcome::Ok(sample_wire(b"xy", &[(8, 9)])),
                ReplyOutcome::NotDelivered(DoorError::Comm("stale export 3".into())),
                ReplyOutcome::Failed(DoorError::Handler("boom".into())),
                ReplyOutcome::Failed(DoorError::Revoked),
            ],
        );
        let dec = decode_reply(&enc).unwrap();
        assert_eq!(dec.id, 5);
        assert_eq!(dec.outcomes.len(), 4);
        assert!(matches!(&dec.outcomes[0], ReplyOutcome::Ok(w) if w.bytes == b"xy"));
        assert!(matches!(
            &dec.outcomes[1],
            ReplyOutcome::NotDelivered(DoorError::Comm(m)) if m == "stale export 3"
        ));
        assert!(matches!(
            &dec.outcomes[2],
            ReplyOutcome::Failed(DoorError::Handler(m)) if m == "boom"
        ));
        assert!(matches!(
            &dec.outcomes[3],
            ReplyOutcome::Failed(DoorError::Revoked)
        ));
    }

    #[test]
    fn truncated_frames_get_typed_rejection() {
        let w = sample_wire(&[1; 100], &[(1, 2)]);
        let enc = encode_request(1, &[(5, &w)]);
        // Every possible truncation point must produce a typed error, and
        // in particular a payload length field pointing past the end must
        // come back Truncated, never panic.
        for cut in 0..enc.len() {
            let err = decode_request(&enc[..cut]).unwrap_err();
            assert!(
                matches!(err, WireError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_get_typed_rejection() {
        let w = sample_wire(b"zz", &[]);
        let mut enc = encode_request(1, &[(5, &w)]);
        enc.push(0);
        assert!(matches!(
            decode_request(&enc).unwrap_err(),
            WireError::OverLength { .. }
        ));
    }

    #[test]
    fn lying_counts_get_typed_rejection() {
        let w = sample_wire(b"abc", &[(1, 2)]);
        let mut enc = encode_request(1, &[(5, &w)]);
        // Inflate the cap count field far past the frame end (offset:
        // kind 1 + id 8 + ncalls 4 + export 8 + call 20 + trace 16 = 57).
        enc[57..61].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_request(&enc).unwrap_err(),
            WireError::Truncated { .. }
        ));
    }

    #[test]
    fn bad_tags_get_typed_rejection() {
        let w = sample_wire(b"", &[]);
        let mut enc = encode_reply(1, &[ReplyOutcome::Ok(w)]);
        enc[13] = 9; // status byte
        assert!(matches!(
            decode_reply(&enc).unwrap_err(),
            WireError::BadTag { value: 9, .. }
        ));
        let mut enc = encode_request(1, &[]);
        enc[0] = 200; // frame kind
        assert!(matches!(
            decode_request(&enc).unwrap_err(),
            WireError::BadTag { value: 200, .. }
        ));
    }
}
