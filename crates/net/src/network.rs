//! The network itself: nodes, hops, fault injection.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spring_kernel::{Domain, DoorError, DoorId, FaultRng, Kernel, Message, NodeId};
use spring_trace::keys;

use crate::batch::{BatchBudget, LinkBatcher, PendingEntry};
use crate::config::{NetConfig, NetStatsSnapshot, SocketStatsSnapshot};
use crate::server::{NetServer, WireCap};
use crate::socket::{SocketListener, SocketPeer};
use crate::transport::{SimTransport, Transport};

pub(crate) struct NetworkInner {
    nodes: RwLock<HashMap<u64, Arc<NetServer>>>,
    /// Behaviour knobs, shared by `Arc` so a hop clones a pointer instead of
    /// copying the config struct under the lock.
    config: RwLock<Arc<NetConfig>>,
    partitions: RwLock<HashSet<(u64, u64)>>,
    /// One call batcher per (source, destination) link, created on first use.
    batchers: RwLock<HashMap<(u64, u64), Arc<LinkBatcher>>>,
    /// Destination node -> the transport whose frames reach it. Local
    /// nodes route through [`SimTransport`] (the default, in-process
    /// simulated backend); nodes in *other OS processes* route through the
    /// socket peer that reached them.
    transports: RwLock<HashMap<u64, Arc<dyn Transport>>>,
    rng: Mutex<FaultRng>,
    messages: AtomicU64,
    bytes: AtomicU64,
    drops: AtomicU64,
    calls_forwarded: AtomicU64,
    exports: AtomicU64,
    proxies: AtomicU64,
    batch_flushes: AtomicU64,
    calls_batched: AtomicU64,
    calls_unbatched: AtomicU64,
    socket_frames_sent: AtomicU64,
    socket_frames_received: AtomicU64,
    socket_bytes_sent: AtomicU64,
    socket_bytes_received: AtomicU64,
    socket_disconnects: AtomicU64,
}

impl NetworkInner {
    pub fn count_export(&self) {
        self.exports.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_proxy(&self) {
        self.proxies.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn server(&self, node: u64) -> Result<Arc<NetServer>, DoorError> {
        self.nodes
            .read()
            .get(&node)
            .cloned()
            .ok_or_else(|| DoorError::Comm(format!("unknown node {node}")))
    }

    /// Registers (or replaces, on reconnect) the transport reaching `node`.
    pub(crate) fn register_transport(&self, node: u64, transport: Arc<dyn Transport>) {
        self.transports.write().insert(node, transport);
    }

    pub(crate) fn transport_of(&self, node: u64) -> Option<Arc<dyn Transport>> {
        self.transports.read().get(&node).cloned()
    }

    pub(crate) fn count_socket_send(&self, bytes: usize) {
        self.socket_frames_sent.fetch_add(1, Ordering::Relaxed);
        self.socket_bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_socket_receive(&self, bytes: usize) {
        self.socket_frames_received.fetch_add(1, Ordering::Relaxed);
        self.socket_bytes_received
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn count_socket_disconnect(&self) {
        self.socket_disconnects.fetch_add(1, Ordering::Relaxed);
    }

    fn check_link(&self, a: u64, b: u64) -> Result<(), DoorError> {
        let key = (a.min(b), a.max(b));
        if self.partitions.read().contains(&key) {
            return Err(DoorError::Comm(format!(
                "partition between nodes {a} and {b}"
            )));
        }
        Ok(())
    }

    /// The batcher for the `src -> dst` link, created on first use.
    fn link(&self, src: u64, dst: u64) -> Arc<LinkBatcher> {
        if let Some(batcher) = self.batchers.read().get(&(src, dst)) {
            return batcher.clone();
        }
        self.batchers.write().entry((src, dst)).or_default().clone()
    }

    /// Wakes every lingering link batcher (the urgency waker).
    fn wake_batchers(&self) {
        for batcher in self.batchers.read().values() {
            batcher.wake();
        }
    }

    /// One network hop: latency, jitter, accounting, and (for invocation
    /// traffic) probabilistic loss.
    ///
    /// The RNG mutex is taken at most once per hop — the loss roll and the
    /// jitter fraction are sampled together — and on a fault-free network
    /// (no loss, no jitter) it is not taken at all.
    fn hop(&self, cfg: &NetConfig, bytes: usize, lossy: bool) -> Result<(), DoorError> {
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let roll_loss = lossy && cfg.drop_prob > 0.0;
        let roll_jitter = !cfg.jitter.is_zero();
        let mut delay = cfg.latency;
        if roll_loss || roll_jitter {
            let mut rng = self.rng.lock();
            if roll_loss && rng.unit_f64() < cfg.drop_prob {
                drop(rng);
                self.drops.fetch_add(1, Ordering::Relaxed);
                return Err(DoorError::Comm("message lost".into()));
            }
            if roll_jitter {
                delay += cfg.jitter.mul_f64(rng.unit_f64());
            }
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(())
    }

    /// Forwards a proxy-door invocation to its home node and returns the
    /// reply. `msg`'s identifiers are owned by `from`'s network server.
    ///
    /// The call is queued on its link's batcher: concurrent calls over the
    /// same link that overlap in time may share one wire frame (one request
    /// hop, one reply hop), with the flush policy in [`crate::batch`]
    /// deciding how long to wait for company. A call with no pipelined
    /// traffic announced flushes immediately in a frame of its own, which
    /// reproduces the unbatched path exactly — same hops, same loss rolls,
    /// in the same order.
    pub(crate) fn forward_call(
        &self,
        from: &Arc<NetServer>,
        target: WireCap,
        msg: Message,
    ) -> Result<Message, DoorError> {
        self.calls_forwarded.fetch_add(1, Ordering::Relaxed);

        // One "net.forward" span per forwarded call; the piggybacked
        // context on the message (stamped by the proxy door's kernel call)
        // wins over the thread-local current span.
        let parent = if msg.trace.is_some() {
            msg.trace
        } else {
            spring_trace::current()
        };
        let mut span =
            spring_trace::span_child_of(keys::NET_FORWARD, parent, from.domain.trace_scope(), 0);
        let mut msg = msg;
        if span.ctx().is_some() {
            msg.trace = span.ctx();
        }

        let result = (|| {
            self.check_link(from.node.raw(), target.origin)?;
            let (wire, fresh) = from.to_wire_tracked(msg)?;
            let budget = {
                let cfg = self.config.read();
                BatchBudget {
                    max_calls: cfg.batch_max_calls.max(1),
                    max_bytes: cfg.batch_max_bytes,
                    linger: cfg.batch_linger,
                }
            };
            let batcher = self.link(from.node.raw(), target.origin);
            batcher.submit(target.export, wire, fresh, budget, &|frame| {
                self.ship_frame(from, target.origin, frame)
            })
        })();
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Ships one frame of forwarded calls: a single request hop (latency
    /// charged once, payload bytes summed), per-call delivery and execution
    /// on the destination node, and a single reply hop for every reply the
    /// frame produced. Settles every entry's [`CallSlot`].
    ///
    /// Partial-failure discipline matches the unbatched path call for call:
    /// a lost or partitioned request frame releases *every* export freshly
    /// pinned for *every* call aboard, a failed delivery or execution
    /// releases only that call's identifiers (the rest of the frame
    /// proceeds), and a lost reply frame releases the exports pinned by
    /// every staged reply.
    /// Routes one flushed frame to whichever transport reaches `origin`.
    ///
    /// Local nodes (and unknown destinations, whose "unknown node" error
    /// must match the pre-transport behaviour exactly) go through
    /// [`NetworkInner::ship_batch`]; nodes in other OS processes go through
    /// the socket peer that introduced them.
    pub(crate) fn ship_frame(
        &self,
        from: &Arc<NetServer>,
        origin: u64,
        frame: &mut [PendingEntry],
    ) {
        match self.transport_of(origin) {
            Some(transport) => transport.ship(from, frame),
            None => self.ship_batch(from, origin, frame),
        }
    }

    pub(crate) fn ship_batch(
        &self,
        from: &Arc<NetServer>,
        origin: u64,
        frame: &mut [PendingEntry],
    ) {
        let calls = frame.len() as u64;
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        if frame.len() > 1 {
            self.calls_batched.fetch_add(calls, Ordering::Relaxed);
        } else {
            self.calls_unbatched.fetch_add(calls, Ordering::Relaxed);
        }
        // The per-frame span carries the call count in its scid, so batch
        // sizes show up in the latency histograms.
        let mut span = spring_trace::span_start(keys::NET_BATCH, from.domain.trace_scope(), calls);

        // Hoisted per-frame: one config read, one destination lookup.
        let cfg = Arc::clone(&self.config.read());
        let home = match (|| {
            self.check_link(from.node.raw(), origin)?;
            self.server(origin)
        })() {
            Ok(home) => home,
            Err(e) => {
                span.fail();
                for entry in frame.iter_mut() {
                    from.unexport(&entry.fresh);
                    entry.slot.fulfill(Err(e.clone()));
                }
                return;
            }
        };

        let request_bytes: usize = frame
            .iter()
            .map(|e| e.wire.as_ref().map_or(0, |w| w.bytes.len()))
            .sum();
        if let Err(e) = self.traced_hop(&cfg, request_bytes, true, from.domain.trace_scope()) {
            // The frame never left this node: every call aboard is lost and
            // every export pinned for any of them must be released, or each
            // lost frame leaks one pinned door per capability sent.
            span.fail();
            for entry in frame.iter_mut() {
                from.unexport(&entry.fresh);
                entry.slot.fulfill(Err(e.clone()));
            }
            return;
        }

        // Deliver and execute each call, in submission order.
        for entry in frame.iter_mut() {
            let wire = match entry.wire.take() {
                Some(w) => w,
                None => continue,
            };
            let door = match home.export_target(entry.export) {
                Ok(d) => d,
                Err(e) => {
                    from.unexport(&entry.fresh);
                    entry.slot.fulfill(Err(e));
                    continue;
                }
            };
            let delivered = match home.from_wire(wire) {
                Ok(d) => d,
                Err(e) => {
                    // This call will never execute, so nothing can ever
                    // reference the exports freshly pinned for it.
                    from.unexport(&entry.fresh);
                    entry.slot.fulfill(Err(e));
                    continue;
                }
            };
            // Snapshot the landed identifiers: if the kernel call fails
            // before moving them into the serving domain they would be
            // dropped undeleted. Slots are never reused, so the deletes are
            // harmless no-ops when the handler did take ownership.
            let delivered_doors = delivered.doors.clone();
            match home.domain.call(door, delivered) {
                Ok(reply) => entry.reply = Some(reply),
                Err(e) => {
                    for d in delivered_doors {
                        let _ = home.domain.delete_door(d);
                    }
                    entry.slot.fulfill(Err(e));
                }
            }
        }

        // The replies travel back across the same link, again as one frame.
        if let Err(e) = self.check_link(origin, from.node.raw()) {
            // A partition formed while the calls executed: no reply can
            // leave, so release their identifiers instead of stranding them
            // in the network server's domain.
            span.fail();
            for entry in frame.iter_mut() {
                if let Some(reply) = entry.reply.take() {
                    for d in reply.doors {
                        let _ = home.domain.delete_door(d);
                    }
                    entry.slot.fulfill(Err(e.clone()));
                }
            }
            return;
        }
        let mut reply_bytes = 0usize;
        for entry in frame.iter_mut() {
            if let Some(reply) = entry.reply.take() {
                match home.to_wire_tracked(reply) {
                    Ok((wire, fresh)) => {
                        reply_bytes += wire.bytes.len();
                        entry.reply_wire = Some(wire);
                        entry.reply_fresh = fresh;
                    }
                    Err(e) => entry.slot.fulfill(Err(e)),
                }
            }
        }
        if frame.iter().any(|e| e.reply_wire.is_some()) {
            match self.traced_hop(&cfg, reply_bytes, true, home.domain.trace_scope()) {
                Ok(()) => {
                    for entry in frame.iter_mut() {
                        if let Some(wire) = entry.reply_wire.take() {
                            entry.slot.fulfill(from.from_wire(wire));
                        }
                    }
                }
                Err(e) => {
                    // A reply frame lost on the wire must not strand the
                    // exports it pinned — the calls already executed and
                    // these replies will not be re-sent.
                    span.fail();
                    for entry in frame.iter_mut() {
                        if entry.reply_wire.take().is_some() {
                            home.unexport(&entry.reply_fresh);
                            entry.slot.fulfill(Err(e.clone()));
                        }
                    }
                }
            }
        }

        // Backstop: every caller wakes, even off a path missed above.
        for entry in frame.iter() {
            entry.slot.abort_if_unsettled();
        }
    }

    /// Wraps [`NetworkInner::hop`] in a "net.hop" span; a dropped message
    /// records as a failed span, so retries read as a failed hop followed by
    /// a successful sibling.
    fn traced_hop(
        &self,
        cfg: &NetConfig,
        bytes: usize,
        lossy: bool,
        scope: u64,
    ) -> Result<(), DoorError> {
        let mut span = spring_trace::span_start(keys::NET_HOP, scope, 0);
        let result = self.hop(cfg, bytes, lossy);
        if result.is_err() {
            span.fail();
        }
        result
    }
}

/// A handle on one machine of the network.
#[derive(Clone)]
pub struct Node {
    kernel: Kernel,
}

impl Node {
    /// The node's kernel; create application domains through it.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.kernel.node_id()
    }
}

/// A simulated multi-machine network.
///
/// # Examples
///
/// ```
/// use spring_net::{NetConfig, Network};
///
/// let net = Network::new(NetConfig::default());
/// let a = net.add_node("alpha");
/// let b = net.add_node("beta");
/// assert_ne!(a.id(), b.id());
/// ```
pub struct Network {
    inner: Arc<NetworkInner>,
    /// Keeps the urgency waker registered with the kernel alive for the
    /// network's lifetime (the registry only holds a `Weak`).
    waker: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl Network {
    /// Creates an empty network with the given behaviour.
    pub fn new(config: NetConfig) -> Arc<Network> {
        let net = Arc::new(Network {
            inner: Arc::new(NetworkInner {
                nodes: RwLock::new(HashMap::new()),
                config: RwLock::new(Arc::new(config)),
                partitions: RwLock::new(HashSet::new()),
                batchers: RwLock::new(HashMap::new()),
                transports: RwLock::new(HashMap::new()),
                rng: Mutex::new(FaultRng::seed_from_u64(0x5u64)),
                messages: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                drops: AtomicU64::new(0),
                calls_forwarded: AtomicU64::new(0),
                exports: AtomicU64::new(0),
                proxies: AtomicU64::new(0),
                batch_flushes: AtomicU64::new(0),
                calls_batched: AtomicU64::new(0),
                calls_unbatched: AtomicU64::new(0),
                socket_frames_sent: AtomicU64::new(0),
                socket_frames_received: AtomicU64::new(0),
                socket_bytes_sent: AtomicU64::new(0),
                socket_bytes_received: AtomicU64::new(0),
                socket_disconnects: AtomicU64::new(0),
            }),
            waker: Mutex::new(None),
        });
        // Lingering batchers re-check their flush policy whenever a
        // collector signals urgency. Weakly held on both sides: the network
        // owns the closure, the kernel registry holds a Weak to it.
        let inner = Arc::downgrade(&net.inner);
        let waker: Arc<dyn Fn() + Send + Sync> = Arc::new(move || {
            if let Some(inner) = inner.upgrade() {
                inner.wake_batchers();
            }
        });
        spring_kernel::batching::register_waker(&waker);
        *net.waker.lock() = Some(waker);
        net
    }

    /// Adds a machine: a fresh kernel plus its network server domain.
    pub fn add_node(&self, name: impl Into<String>) -> Node {
        self.install_node(Kernel::new(name))
    }

    /// Adds a machine with an explicitly chosen node identifier.
    ///
    /// Node ids are normally process-local counters, so two OS processes
    /// would both mint node 1 and a socket peer's "coming home" detection
    /// (`cap.origin == self.node`) would confuse the two machines. Process
    /// harnesses assign each process a distinct id up front instead.
    pub fn add_node_with_id(&self, name: impl Into<String>, node: u64) -> Node {
        self.install_node(Kernel::with_node_id(name, NodeId::from_raw(node)))
    }

    fn install_node(&self, kernel: Kernel) -> Node {
        let domain = kernel.create_domain("network-server");
        let server = NetServer::new(kernel.node_id(), domain, self.inner.clone());
        let raw = kernel.node_id().raw();
        self.inner.nodes.write().insert(raw, server);
        // Local nodes are reached by the in-process simulated backend.
        self.inner
            .register_transport(raw, Arc::new(SimTransport::new(&self.inner, raw)));
        Node { kernel }
    }

    /// Publishes `door` (owned by `from`) as `node`'s bootstrap door: its
    /// export id is advertised in the socket handshake, so a freshly
    /// connected process has one well-known door to start exchanging
    /// identifiers through. Consumes the identifier.
    pub fn set_bootstrap(
        &self,
        node: NodeId,
        from: &Domain,
        door: DoorId,
    ) -> Result<(), DoorError> {
        let server = self.inner.server(node.raw())?;
        let held = from.transfer_door(door, &server.domain)?;
        let (cap, _fresh) = server.export_cap_tracked(held)?;
        server.set_bootstrap(cap.export);
        Ok(())
    }

    /// Starts accepting socket connections for `node` on a TCP address.
    /// Returns the listener handle (and the bound address, for ephemeral
    /// ports) — dropping the handle stops accepting.
    pub fn listen_tcp(&self, node: NodeId, addr: &str) -> Result<Arc<SocketListener>, DoorError> {
        SocketListener::bind_tcp(&self.inner, node, addr)
    }

    /// Starts accepting socket connections for `node` on a Unix-domain
    /// socket path.
    pub fn listen_uds(&self, node: NodeId, path: &str) -> Result<Arc<SocketListener>, DoorError> {
        SocketListener::bind_uds(&self.inner, node, path)
    }

    /// Connects `node` to a peer process listening on a TCP address.
    ///
    /// The returned peer handle reports the remote node id and bootstrap
    /// export learned in the handshake; proxy doors for the remote machine
    /// route through the connection (redialling on failure).
    pub fn connect_tcp(&self, node: NodeId, addr: &str) -> Result<Arc<SocketPeer>, DoorError> {
        SocketPeer::connect_tcp(&self.inner, node, addr)
    }

    /// Connects `node` to a peer process listening on a Unix-domain socket.
    pub fn connect_uds(&self, node: NodeId, path: &str) -> Result<Arc<SocketPeer>, DoorError> {
        SocketPeer::connect_uds(&self.inner, node, path)
    }

    /// Socket-transport counter snapshot.
    pub fn socket_stats(&self) -> SocketStatsSnapshot {
        SocketStatsSnapshot {
            frames_sent: self.inner.socket_frames_sent.load(Ordering::Relaxed),
            frames_received: self.inner.socket_frames_received.load(Ordering::Relaxed),
            bytes_sent: self.inner.socket_bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.inner.socket_bytes_received.load(Ordering::Relaxed),
            disconnects: self.inner.socket_disconnects.load(Ordering::Relaxed),
        }
    }

    /// Replaces the network behaviour (latency, jitter, loss).
    pub fn set_config(&self, config: NetConfig) {
        *self.inner.config.write() = Arc::new(config);
    }

    /// Reseeds the loss/jitter RNG (determinism for tests).
    pub fn reseed(&self, seed: u64) {
        *self.inner.rng.lock() = FaultRng::seed_from_u64(seed);
    }

    /// Cuts the link between two nodes in both directions.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let key = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        self.inner.partitions.write().insert(key);
    }

    /// Heals the link between two nodes.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let key = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        self.inner.partitions.write().remove(&key);
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.inner.partitions.write().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.inner.messages.load(Ordering::Relaxed),
            bytes: self.inner.bytes.load(Ordering::Relaxed),
            drops: self.inner.drops.load(Ordering::Relaxed),
            calls_forwarded: self.inner.calls_forwarded.load(Ordering::Relaxed),
            exports: self.inner.exports.load(Ordering::Relaxed),
            proxies_created: self.inner.proxies.load(Ordering::Relaxed),
            batch_flushes: self.inner.batch_flushes.load(Ordering::Relaxed),
            calls_batched: self.inner.calls_batched.load(Ordering::Relaxed),
            calls_unbatched: self.inner.calls_unbatched.load(Ordering::Relaxed),
        }
    }

    /// Transfers a message (bytes plus door identifiers) from a domain on
    /// one node to a domain on another — how marshalled objects move between
    /// machines. Same-node transfers degrade to plain kernel transfers.
    pub fn ship_message(
        &self,
        from: &Domain,
        to: &Domain,
        msg: Message,
    ) -> Result<Message, DoorError> {
        let from_node = from.kernel().node_id();
        let to_node = to.kernel().node_id();
        if from_node == to_node {
            let mut doors = Vec::with_capacity(msg.doors.len());
            let mut pending = msg.doors.into_iter();
            for d in pending.by_ref() {
                match from.transfer_door(d, to) {
                    Ok(t) => doors.push(t),
                    Err(e) => {
                        // A failed send loses the whole message: delete the
                        // identifiers already landed in the receiver and the
                        // ones not yet sent, rather than stranding a
                        // partially-transferred capability set in two
                        // domains forever.
                        for t in doors {
                            let _ = to.delete_door(t);
                        }
                        for rest in pending {
                            let _ = from.delete_door(rest);
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(Message {
                bytes: msg.bytes,
                doors,
                trace: msg.trace,
                call: msg.call,
            });
        }

        self.inner.check_link(from_node.raw(), to_node.raw())?;
        let src = self.inner.server(from_node.raw())?;
        let dst = self.inner.server(to_node.raw())?;

        // Move identifiers into the sending network server, map to wire
        // form, hop, and reverse on the receiving side. Object transfers
        // ride a reliable stream, so no loss is applied.
        let mut held = Vec::with_capacity(msg.doors.len());
        let mut pending = msg.doors.into_iter();
        for d in pending.by_ref() {
            match from.transfer_door(d, &src.domain) {
                Ok(t) => held.push(t),
                Err(e) => {
                    // Same discipline as the same-node path: a failed send
                    // loses the message, so nothing stays pinned.
                    for t in held {
                        let _ = src.domain.delete_door(t);
                    }
                    for rest in pending {
                        let _ = from.delete_door(rest);
                    }
                    return Err(e);
                }
            }
        }
        let wire = src.to_wire(Message {
            bytes: msg.bytes,
            doors: held,
            trace: msg.trace,
            call: msg.call,
        })?;
        let cfg = Arc::clone(&self.inner.config.read());
        self.inner
            .traced_hop(&cfg, wire.bytes.len(), false, src.domain.trace_scope())?;
        let arrived = dst.from_wire(wire)?;
        let mut doors = Vec::with_capacity(arrived.doors.len());
        let mut pending = arrived.doors.into_iter();
        for d in pending.by_ref() {
            match dst.domain.transfer_door(d, to) {
                Ok(t) => doors.push(t),
                Err(e) => {
                    for t in doors {
                        let _ = to.delete_door(t);
                    }
                    for rest in pending {
                        let _ = dst.domain.delete_door(rest);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Message {
            bytes: arrived.bytes,
            doors,
            trace: arrived.trace,
            call: arrived.call,
        })
    }
}

impl subcontract::Transport for Network {
    fn ship(&self, from: &Domain, to: &Domain, msg: Message) -> Result<Message, DoorError> {
        self.ship_message(from, to, msg)
    }
}
