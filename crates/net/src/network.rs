//! The network itself: nodes, hops, fault injection.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use spring_kernel::{Domain, DoorError, FaultRng, Kernel, Message, NodeId};

use crate::config::{NetConfig, NetStatsSnapshot};
use crate::server::{NetServer, WireCap};

pub(crate) struct NetworkInner {
    nodes: RwLock<HashMap<u64, Arc<NetServer>>>,
    /// Behaviour knobs, shared by `Arc` so a hop clones a pointer instead of
    /// copying the config struct under the lock.
    config: RwLock<Arc<NetConfig>>,
    partitions: RwLock<HashSet<(u64, u64)>>,
    rng: Mutex<FaultRng>,
    messages: AtomicU64,
    bytes: AtomicU64,
    drops: AtomicU64,
    calls_forwarded: AtomicU64,
    exports: AtomicU64,
    proxies: AtomicU64,
}

impl NetworkInner {
    pub fn count_export(&self) {
        self.exports.fetch_add(1, Ordering::Relaxed);
    }

    pub fn count_proxy(&self) {
        self.proxies.fetch_add(1, Ordering::Relaxed);
    }

    fn server(&self, node: u64) -> Result<Arc<NetServer>, DoorError> {
        self.nodes
            .read()
            .get(&node)
            .cloned()
            .ok_or_else(|| DoorError::Comm(format!("unknown node {node}")))
    }

    fn check_link(&self, a: u64, b: u64) -> Result<(), DoorError> {
        let key = (a.min(b), a.max(b));
        if self.partitions.read().contains(&key) {
            return Err(DoorError::Comm(format!(
                "partition between nodes {a} and {b}"
            )));
        }
        Ok(())
    }

    /// One network hop: latency, jitter, accounting, and (for invocation
    /// traffic) probabilistic loss.
    ///
    /// The RNG mutex is taken at most once per hop — the loss roll and the
    /// jitter fraction are sampled together — and on a fault-free network
    /// (no loss, no jitter) it is not taken at all.
    fn hop(&self, bytes: usize, lossy: bool) -> Result<(), DoorError> {
        let cfg = Arc::clone(&self.config.read());
        self.messages.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        let roll_loss = lossy && cfg.drop_prob > 0.0;
        let roll_jitter = !cfg.jitter.is_zero();
        let mut delay = cfg.latency;
        if roll_loss || roll_jitter {
            let mut rng = self.rng.lock();
            if roll_loss && rng.unit_f64() < cfg.drop_prob {
                drop(rng);
                self.drops.fetch_add(1, Ordering::Relaxed);
                return Err(DoorError::Comm("message lost".into()));
            }
            if roll_jitter {
                delay += cfg.jitter.mul_f64(rng.unit_f64());
            }
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(())
    }

    /// Forwards a proxy-door invocation to its home node and returns the
    /// reply. `msg`'s identifiers are owned by `from`'s network server.
    pub fn forward_call(
        &self,
        from: &Arc<NetServer>,
        target: WireCap,
        msg: Message,
    ) -> Result<Message, DoorError> {
        self.calls_forwarded.fetch_add(1, Ordering::Relaxed);

        // One "net.forward" span per forwarded call; the piggybacked
        // context on the message (stamped by the proxy door's kernel call)
        // wins over the thread-local current span.
        let parent = if msg.trace.is_some() {
            msg.trace
        } else {
            spring_trace::current()
        };
        let mut span =
            spring_trace::span_child_of("net.forward", parent, from.domain.trace_scope(), 0);
        let mut msg = msg;
        if span.ctx().is_some() {
            msg.trace = span.ctx();
        }

        let result = (|| {
            self.check_link(from.node.raw(), target.origin)?;
            let (wire, fresh) = from.to_wire_tracked(msg)?;
            if let Err(e) = self.traced_hop(wire.bytes.len(), true, from.domain.trace_scope()) {
                // The call never left this node: release the exports pinned
                // for it, or every lost attempt leaks a pinned door.
                from.unexport(&fresh);
                return Err(e);
            }

            let home = self.server(target.origin)?;
            let door = home.export_target(target.export)?;
            let delivered = match home.from_wire(wire) {
                Ok(d) => d,
                Err(e) => {
                    // The call will never execute, so nothing can ever
                    // reference the exports freshly pinned for it.
                    from.unexport(&fresh);
                    return Err(e);
                }
            };
            // Snapshot the landed identifiers: if the kernel call fails
            // before moving them into the serving domain they would be
            // dropped undeleted. Slots are never reused, so the deletes are
            // harmless no-ops when the handler did take ownership.
            let delivered_doors = delivered.doors.clone();
            let reply = match home.domain.call(door, delivered) {
                Ok(r) => r,
                Err(e) => {
                    for d in delivered_doors {
                        let _ = home.domain.delete_door(d);
                    }
                    return Err(e);
                }
            };

            // The reply travels back across the same link.
            if let Err(e) = self.check_link(target.origin, from.node.raw()) {
                // A partition formed while the call executed: the reply
                // cannot leave, so release its identifiers instead of
                // stranding them in the network server's domain.
                for d in reply.doors {
                    let _ = home.domain.delete_door(d);
                }
                return Err(e);
            }
            let (wire, fresh) = home.to_wire_tracked(reply)?;
            if let Err(e) = self.traced_hop(wire.bytes.len(), true, home.domain.trace_scope()) {
                // A reply lost on the wire must not strand the exports it
                // pinned — the call already executed and will not be
                // re-sent on this wire message.
                home.unexport(&fresh);
                return Err(e);
            }
            from.from_wire(wire)
        })();
        if result.is_err() {
            span.fail();
        }
        result
    }

    /// Wraps [`NetworkInner::hop`] in a "net.hop" span; a dropped message
    /// records as a failed span, so retries read as a failed hop followed by
    /// a successful sibling.
    fn traced_hop(&self, bytes: usize, lossy: bool, scope: u64) -> Result<(), DoorError> {
        let mut span = spring_trace::span_start("net.hop", scope, 0);
        let result = self.hop(bytes, lossy);
        if result.is_err() {
            span.fail();
        }
        result
    }
}

/// A handle on one machine of the network.
#[derive(Clone)]
pub struct Node {
    kernel: Kernel,
}

impl Node {
    /// The node's kernel; create application domains through it.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The node identifier.
    pub fn id(&self) -> NodeId {
        self.kernel.node_id()
    }
}

/// A simulated multi-machine network.
///
/// # Examples
///
/// ```
/// use spring_net::{NetConfig, Network};
///
/// let net = Network::new(NetConfig::default());
/// let a = net.add_node("alpha");
/// let b = net.add_node("beta");
/// assert_ne!(a.id(), b.id());
/// ```
pub struct Network {
    inner: Arc<NetworkInner>,
}

impl Network {
    /// Creates an empty network with the given behaviour.
    pub fn new(config: NetConfig) -> Arc<Network> {
        Arc::new(Network {
            inner: Arc::new(NetworkInner {
                nodes: RwLock::new(HashMap::new()),
                config: RwLock::new(Arc::new(config)),
                partitions: RwLock::new(HashSet::new()),
                rng: Mutex::new(FaultRng::seed_from_u64(0x5u64)),
                messages: AtomicU64::new(0),
                bytes: AtomicU64::new(0),
                drops: AtomicU64::new(0),
                calls_forwarded: AtomicU64::new(0),
                exports: AtomicU64::new(0),
                proxies: AtomicU64::new(0),
            }),
        })
    }

    /// Adds a machine: a fresh kernel plus its network server domain.
    pub fn add_node(&self, name: impl Into<String>) -> Node {
        let kernel = Kernel::new(name);
        let domain = kernel.create_domain("network-server");
        let server = NetServer::new(kernel.node_id(), domain, self.inner.clone());
        self.inner
            .nodes
            .write()
            .insert(kernel.node_id().raw(), server);
        Node { kernel }
    }

    /// Replaces the network behaviour (latency, jitter, loss).
    pub fn set_config(&self, config: NetConfig) {
        *self.inner.config.write() = Arc::new(config);
    }

    /// Reseeds the loss/jitter RNG (determinism for tests).
    pub fn reseed(&self, seed: u64) {
        *self.inner.rng.lock() = FaultRng::seed_from_u64(seed);
    }

    /// Cuts the link between two nodes in both directions.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let key = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        self.inner.partitions.write().insert(key);
    }

    /// Heals the link between two nodes.
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let key = (a.raw().min(b.raw()), a.raw().max(b.raw()));
        self.inner.partitions.write().remove(&key);
    }

    /// Heals every partition.
    pub fn heal_all(&self) {
        self.inner.partitions.write().clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.inner.messages.load(Ordering::Relaxed),
            bytes: self.inner.bytes.load(Ordering::Relaxed),
            drops: self.inner.drops.load(Ordering::Relaxed),
            calls_forwarded: self.inner.calls_forwarded.load(Ordering::Relaxed),
            exports: self.inner.exports.load(Ordering::Relaxed),
            proxies_created: self.inner.proxies.load(Ordering::Relaxed),
        }
    }

    /// Transfers a message (bytes plus door identifiers) from a domain on
    /// one node to a domain on another — how marshalled objects move between
    /// machines. Same-node transfers degrade to plain kernel transfers.
    pub fn ship_message(
        &self,
        from: &Domain,
        to: &Domain,
        msg: Message,
    ) -> Result<Message, DoorError> {
        let from_node = from.kernel().node_id();
        let to_node = to.kernel().node_id();
        if from_node == to_node {
            let mut doors = Vec::with_capacity(msg.doors.len());
            let mut pending = msg.doors.into_iter();
            for d in pending.by_ref() {
                match from.transfer_door(d, to) {
                    Ok(t) => doors.push(t),
                    Err(e) => {
                        // A failed send loses the whole message: delete the
                        // identifiers already landed in the receiver and the
                        // ones not yet sent, rather than stranding a
                        // partially-transferred capability set in two
                        // domains forever.
                        for t in doors {
                            let _ = to.delete_door(t);
                        }
                        for rest in pending {
                            let _ = from.delete_door(rest);
                        }
                        return Err(e);
                    }
                }
            }
            return Ok(Message {
                bytes: msg.bytes,
                doors,
                trace: msg.trace,
                call: msg.call,
            });
        }

        self.inner.check_link(from_node.raw(), to_node.raw())?;
        let src = self.inner.server(from_node.raw())?;
        let dst = self.inner.server(to_node.raw())?;

        // Move identifiers into the sending network server, map to wire
        // form, hop, and reverse on the receiving side. Object transfers
        // ride a reliable stream, so no loss is applied.
        let mut held = Vec::with_capacity(msg.doors.len());
        let mut pending = msg.doors.into_iter();
        for d in pending.by_ref() {
            match from.transfer_door(d, &src.domain) {
                Ok(t) => held.push(t),
                Err(e) => {
                    // Same discipline as the same-node path: a failed send
                    // loses the message, so nothing stays pinned.
                    for t in held {
                        let _ = src.domain.delete_door(t);
                    }
                    for rest in pending {
                        let _ = from.delete_door(rest);
                    }
                    return Err(e);
                }
            }
        }
        let wire = src.to_wire(Message {
            bytes: msg.bytes,
            doors: held,
            trace: msg.trace,
            call: msg.call,
        })?;
        self.inner
            .traced_hop(wire.bytes.len(), false, src.domain.trace_scope())?;
        let arrived = dst.from_wire(wire)?;
        let mut doors = Vec::with_capacity(arrived.doors.len());
        let mut pending = arrived.doors.into_iter();
        for d in pending.by_ref() {
            match dst.domain.transfer_door(d, to) {
                Ok(t) => doors.push(t),
                Err(e) => {
                    for t in doors {
                        let _ = to.delete_door(t);
                    }
                    for rest in pending {
                        let _ = dst.domain.delete_door(rest);
                    }
                    return Err(e);
                }
            }
        }
        Ok(Message {
            bytes: arrived.bytes,
            doors,
            trace: arrived.trace,
            call: arrived.call,
        })
    }
}

impl subcontract::Transport for Network {
    fn ship(&self, from: &Domain, to: &Domain, msg: Message) -> Result<Message, DoorError> {
        self.ship_message(from, to, msg)
    }
}
