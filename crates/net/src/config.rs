//! Network configuration and counters.

use std::time::Duration;

/// Tunable behaviour of the simulated network.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// One-way latency added to every network hop.
    pub latency: Duration,
    /// Maximum extra uniform jitter per hop.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that an invocation message is lost.
    pub drop_prob: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_prob: 0.0,
        }
    }
}

impl NetConfig {
    /// A lossless network with the given one-way latency.
    pub fn with_latency(latency: Duration) -> Self {
        NetConfig {
            latency,
            ..Default::default()
        }
    }
}

/// Point-in-time snapshot of the network's counters.
///
/// Message and byte counts are hardware independent, so benchmark tables
/// report them alongside wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Wire messages sent (calls, replies, and object transfers).
    pub messages: u64,
    /// Payload bytes sent over the wire.
    pub bytes: u64,
    /// Invocation messages lost to injected drops.
    pub drops: u64,
    /// Cross-node invocations forwarded through proxy doors.
    pub calls_forwarded: u64,
    /// Door identifiers mapped to network form (exports).
    pub exports: u64,
    /// Proxy doors fabricated on receiving nodes.
    pub proxies_created: u64,
}

impl NetStatsSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            drops: self.drops.saturating_sub(earlier.drops),
            calls_forwarded: self.calls_forwarded.saturating_sub(earlier.calls_forwarded),
            exports: self.exports.saturating_sub(earlier.exports),
            proxies_created: self.proxies_created.saturating_sub(earlier.proxies_created),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let c = NetConfig::default();
        assert!(c.latency.is_zero());
        assert!(c.jitter.is_zero());
        assert_eq!(c.drop_prob, 0.0);
        assert_eq!(
            NetConfig::with_latency(Duration::from_millis(2))
                .latency
                .as_millis(),
            2
        );
    }

    #[test]
    fn snapshot_diff_saturates() {
        let a = NetStatsSnapshot {
            messages: 5,
            bytes: 100,
            ..Default::default()
        };
        let b = NetStatsSnapshot {
            messages: 9,
            bytes: 50,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.messages, 4);
        assert_eq!(d.bytes, 0); // Saturating, never negative.
    }
}
