//! Network configuration and counters.

use std::time::Duration;

/// Tunable behaviour of the simulated network.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// One-way latency added to every network hop.
    pub latency: Duration,
    /// Maximum extra uniform jitter per hop.
    pub jitter: Duration,
    /// Probability in `[0, 1]` that an invocation message is lost.
    pub drop_prob: f64,
    /// Maximum number of calls coalesced into one wire frame per link.
    pub batch_max_calls: usize,
    /// Maximum total payload bytes coalesced into one wire frame per link.
    pub batch_max_bytes: usize,
    /// Longest a partially-filled frame may wait for more pipelined calls.
    /// Only frames with announced traffic outstanding ever wait at all, so
    /// plain synchronous calls are never delayed by this budget.
    pub batch_linger: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            latency: Duration::ZERO,
            jitter: Duration::ZERO,
            drop_prob: 0.0,
            batch_max_calls: 64,
            batch_max_bytes: 256 * 1024,
            batch_linger: Duration::from_micros(200),
        }
    }
}

impl NetConfig {
    /// A lossless network with the given one-way latency.
    pub fn with_latency(latency: Duration) -> Self {
        NetConfig {
            latency,
            ..Default::default()
        }
    }
}

/// Point-in-time snapshot of the network's counters.
///
/// Message and byte counts are hardware independent, so benchmark tables
/// report them alongside wall-clock time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStatsSnapshot {
    /// Wire messages sent (calls, replies, and object transfers).
    pub messages: u64,
    /// Payload bytes sent over the wire.
    pub bytes: u64,
    /// Invocation messages lost to injected drops.
    pub drops: u64,
    /// Cross-node invocations forwarded through proxy doors.
    pub calls_forwarded: u64,
    /// Door identifiers mapped to network form (exports).
    pub exports: u64,
    /// Proxy doors fabricated on receiving nodes.
    pub proxies_created: u64,
    /// Wire frames flushed by per-link batchers (each frame is one request
    /// hop, and — when any call produced a reply — one reply hop).
    pub batch_flushes: u64,
    /// Forwarded calls that shared their frame with at least one other call.
    pub calls_batched: u64,
    /// Forwarded calls that travelled in a frame of their own.
    pub calls_unbatched: u64,
}

impl NetStatsSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &NetStatsSnapshot) -> NetStatsSnapshot {
        NetStatsSnapshot {
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            drops: self.drops.saturating_sub(earlier.drops),
            calls_forwarded: self.calls_forwarded.saturating_sub(earlier.calls_forwarded),
            exports: self.exports.saturating_sub(earlier.exports),
            proxies_created: self.proxies_created.saturating_sub(earlier.proxies_created),
            batch_flushes: self.batch_flushes.saturating_sub(earlier.batch_flushes),
            calls_batched: self.calls_batched.saturating_sub(earlier.calls_batched),
            calls_unbatched: self.calls_unbatched.saturating_sub(earlier.calls_unbatched),
        }
    }
}

/// Point-in-time snapshot of the socket transport's counters.
///
/// All zero unless the process has opened socket connections (the simulated
/// backend never touches these).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketStatsSnapshot {
    /// Length-prefixed frames written to socket peers.
    pub frames_sent: u64,
    /// Length-prefixed frames read from socket peers.
    pub frames_received: u64,
    /// Frame payload bytes written (excluding the 4-byte length prefix).
    pub bytes_sent: u64,
    /// Frame payload bytes read (excluding the 4-byte length prefix).
    pub bytes_received: u64,
    /// Connections torn down (peer EOF, I/O error, malformed frame).
    pub disconnects: u64,
}

impl SocketStatsSnapshot {
    /// Component-wise difference `self - earlier`, saturating at zero.
    pub fn since(&self, earlier: &SocketStatsSnapshot) -> SocketStatsSnapshot {
        SocketStatsSnapshot {
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            frames_received: self.frames_received.saturating_sub(earlier.frames_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            disconnects: self.disconnects.saturating_sub(earlier.disconnects),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_inert() {
        let c = NetConfig::default();
        assert!(c.latency.is_zero());
        assert!(c.jitter.is_zero());
        assert_eq!(c.drop_prob, 0.0);
        // The batching budgets exist by default but only ever delay a call
        // when pipelined traffic is announced.
        assert!(c.batch_max_calls >= 2);
        assert!(c.batch_max_bytes > 0);
        assert!(!c.batch_linger.is_zero());
        assert_eq!(
            NetConfig::with_latency(Duration::from_millis(2))
                .latency
                .as_millis(),
            2
        );
    }

    #[test]
    fn snapshot_diff_saturates() {
        let a = NetStatsSnapshot {
            messages: 5,
            bytes: 100,
            ..Default::default()
        };
        let b = NetStatsSnapshot {
            messages: 9,
            bytes: 50,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.messages, 4);
        assert_eq!(d.bytes, 0); // Saturating, never negative.
    }
}
