//! Per-link call batching: coalescing concurrent forwarded calls into one
//! wire frame.
//!
//! Every (source node, destination node) pair owns a [`LinkBatcher`].
//! Callers hand it their wire-form call and block until a reply (or error)
//! lands in their [`CallSlot`]. The first caller to find the queue empty
//! becomes the *leader* for the frame now forming: it waits — bounded by
//! the flush policy below — for more calls to join, then takes the whole
//! queue and ships it as one frame. Followers just park on their slot.
//!
//! Leadership is per *frame*, not per link: while a leader is off shipping
//! its frame (sleeping out the simulated latency, executing the batch's
//! calls), the next arrival finds an empty queue and starts forming the
//! next frame concurrently. A link therefore carries as many concurrent
//! frames as it has concurrent callers, exactly like the unbatched path —
//! batching only ever *merges* calls that would have overlapped anyway.
//!
//! The flush policy is driven by the kernel's pipelining hints
//! ([`spring_kernel::batching`]): a frame keeps coalescing only while more
//! pipelined calls are announced than are already queued, no collector has
//! signalled urgency since the frame started forming, and the size/count/
//! linger budgets still have room. A plain synchronous call (nothing
//! announced) flushes immediately, so the batcher is invisible to
//! non-pipelined traffic.

use std::cell::RefCell;
use std::mem;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use spring_kernel::{batching, DoorError, Message};

use crate::server::WireMessage;

/// Flush budgets, snapshotted from [`crate::NetConfig`] by the caller.
#[derive(Clone, Copy)]
pub(crate) struct BatchBudget {
    pub max_calls: usize,
    pub max_bytes: usize,
    pub linger: Duration,
}

/// One call riding in a frame: its request in wire form, the export-table
/// entries freshly pinned for it, the slot its caller is parked on, and —
/// filled in by the shipper — the staged reply.
///
/// Public so [`crate::Transport`] implementations can appear in public
/// signatures, but opaque: the fields are driven by the crate's own
/// batching and shipping machinery.
pub struct PendingEntry {
    /// Export-table index of the target door on the destination node.
    pub(crate) export: u64,
    /// The request, until the shipper takes it for delivery.
    pub(crate) wire: Option<WireMessage>,
    /// Export ids freshly pinned by `to_wire_tracked` for this request;
    /// released if the frame never delivers.
    pub(crate) fresh: Vec<u64>,
    /// Where the caller waits for the outcome.
    pub(crate) slot: Arc<CallSlot>,
    /// The executed call's reply, staged between execution and the reply
    /// frame.
    pub(crate) reply: Option<Message>,
    /// The reply in wire form, staged for the reply hop.
    pub(crate) reply_wire: Option<WireMessage>,
    /// Export ids freshly pinned for the reply; released if the reply frame
    /// is lost.
    pub(crate) reply_fresh: Vec<u64>,
}

/// A one-shot rendezvous between a queued caller and the frame shipper.
pub(crate) struct CallSlot {
    outcome: Mutex<Option<Result<Message, DoorError>>>,
    cv: Condvar,
}

impl CallSlot {
    fn new() -> CallSlot {
        CallSlot {
            outcome: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Delivers the call's outcome. First write wins; the shipper's
    /// backstop fill is a no-op on slots already settled.
    pub fn fulfill(&self, outcome: Result<Message, DoorError>) {
        let mut slot = lock(&self.outcome);
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }

    /// Settles the slot with an abort error if nothing has been delivered
    /// yet — the shipper's backstop, constructed lazily so settled slots
    /// (the universal case) cost nothing.
    pub fn abort_if_unsettled(&self) {
        let mut slot = lock(&self.outcome);
        if slot.is_none() {
            *slot = Some(Err(DoorError::Comm("batch frame aborted".into())));
            self.cv.notify_all();
        }
    }

    fn wait_take(&self) -> Result<Message, DoorError> {
        let mut slot = lock(&self.outcome);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// Recycled call slots: a steady-state caller reuses the slot from its
    /// previous call instead of allocating a fresh `Arc` per call.
    static SLOT_POOL: RefCell<Vec<Arc<CallSlot>>> = const { RefCell::new(Vec::new()) };
}

fn take_slot() -> Arc<CallSlot> {
    SLOT_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_else(|| Arc::new(CallSlot::new()))
}

fn give_slot(slot: Arc<CallSlot>) {
    // Only a slot nobody else still references may be reused, and only
    // once drained of any backstop outcome.
    if Arc::strong_count(&slot) == 1 {
        lock(&slot.outcome).take();
        SLOT_POOL.with(|pool| {
            let mut pool = pool.borrow_mut();
            if pool.len() < 8 {
                pool.push(slot);
            }
        });
    }
}

struct BatchState {
    /// The frame currently forming.
    forming: Vec<PendingEntry>,
    forming_bytes: usize,
    /// Whether a leader is already collecting the forming frame.
    leader_present: bool,
    /// When the forming frame started, for the linger budget.
    started: Instant,
    /// Urgency epoch sampled when the forming frame started.
    urgent_at_start: u64,
    /// Recycled queue storage from the previous frame.
    spare: Vec<PendingEntry>,
}

/// The batcher for one (source, destination) link.
pub(crate) struct LinkBatcher {
    state: Mutex<BatchState>,
    /// Wakes the leader: new arrivals and urgency bumps notify here.
    arrivals: Condvar,
}

impl Default for LinkBatcher {
    fn default() -> Self {
        LinkBatcher {
            state: Mutex::new(BatchState {
                forming: Vec::new(),
                forming_bytes: 0,
                leader_present: false,
                started: Instant::now(),
                urgent_at_start: 0,
                spare: Vec::new(),
            }),
            arrivals: Condvar::new(),
        }
    }
}

impl LinkBatcher {
    /// Queues one wire-form call and blocks until its outcome arrives.
    ///
    /// `ship` is invoked (on the leader's thread, with no batcher lock
    /// held) with the full frame once the flush policy fires; it must
    /// settle every entry's slot.
    pub fn submit(
        &self,
        export: u64,
        wire: WireMessage,
        fresh: Vec<u64>,
        budget: BatchBudget,
        ship: &dyn Fn(&mut [PendingEntry]),
    ) -> Result<Message, DoorError> {
        let slot = take_slot();
        let wire_len = wire.bytes.len();
        let mut state = lock(&self.state);
        let leading = !state.leader_present;
        if leading {
            state.leader_present = true;
            state.started = Instant::now();
            state.urgent_at_start = batching::urgent_epoch();
        }
        state.forming.push(PendingEntry {
            export,
            wire: Some(wire),
            fresh,
            slot: slot.clone(),
            reply: None,
            reply_wire: None,
            reply_fresh: Vec::new(),
        });
        state.forming_bytes += wire_len;

        if !leading {
            // The leader may now have enough calls to flush.
            self.arrivals.notify_all();
            drop(state);
            let outcome = slot.wait_take();
            give_slot(slot);
            return outcome;
        }

        // Leader: linger (bounded) for pipelined company, then ship.
        loop {
            if Self::should_flush(&state, budget) {
                break;
            }
            let remaining = budget.linger.saturating_sub(state.started.elapsed());
            let (relocked, _) = self
                .arrivals
                .wait_timeout(state, remaining)
                .unwrap_or_else(|p| p.into_inner());
            state = relocked;
        }
        let mut frame = mem::take(&mut state.spare);
        mem::swap(&mut frame, &mut state.forming);
        state.forming_bytes = 0;
        state.leader_present = false;
        drop(state);

        ship(&mut frame);

        // Return the drained storage for the next frame, then collect our
        // own outcome (already settled by `ship`).
        frame.clear();
        lock(&self.state).spare = frame;
        let outcome = slot.wait_take();
        give_slot(slot);
        outcome
    }

    fn should_flush(state: &BatchState, budget: BatchBudget) -> bool {
        let queued = state.forming.len();
        queued >= budget.max_calls
            || state.forming_bytes >= budget.max_bytes
            // Everything announced is already aboard (and a plain
            // synchronous call, with nothing announced, flushes at once).
            || queued as u64 >= batching::announced()
            // A collector started waiting after this frame formed.
            || batching::urgent_epoch() != state.urgent_at_start
            || state.started.elapsed() >= budget.linger
    }

    /// Wakes a lingering leader so it re-evaluates the flush policy; wired
    /// to [`spring_kernel::batching::urge`] by the owning network.
    pub fn wake(&self) {
        self.arrivals.notify_all();
    }
}
