//! Round-trip and capability-slot tests, including property-based coverage.

use std::sync::Arc;

use proptest::prelude::*;
use spring_buf::{BufError, CommBuffer};
use spring_kernel::{CallCtx, DoorError, Kernel, Message};

fn echo_handler() -> Arc<dyn spring_kernel::DoorHandler> {
    Arc::new(|_ctx: &CallCtx, msg: Message| -> Result<Message, DoorError> { Ok(msg) })
}

#[test]
fn doors_travel_out_of_band() {
    let kernel = Kernel::new("buf-test");
    let server = kernel.create_domain("server");
    let a = server.create_door(echo_handler()).unwrap();
    let b = server.create_door(echo_handler()).unwrap();

    let mut buf = CommBuffer::new();
    buf.put_string("pre");
    buf.put_door(a);
    buf.put_u32(5);
    buf.put_door(b);

    let msg = buf.into_message();
    // The byte stream holds only slot indices; the identifiers are in the
    // capability vector.
    assert_eq!(msg.doors.len(), 2);

    let mut r = CommBuffer::from_message(msg);
    assert_eq!(r.get_string().unwrap(), "pre");
    let ra = r.get_door().unwrap();
    assert_eq!(r.get_u32().unwrap(), 5);
    let rb = r.get_door().unwrap();
    assert_eq!(ra, a);
    assert_eq!(rb, b);
}

#[test]
fn door_slot_cannot_be_taken_twice() {
    let kernel = Kernel::new("buf-test");
    let server = kernel.create_domain("server");
    let a = server.create_door(echo_handler()).unwrap();

    let mut buf = CommBuffer::new();
    buf.put_door(a);
    buf.put_u32(0); // Another index pointing at slot 0.

    let mut r = CommBuffer::from_message(buf.into_message());
    r.get_door().unwrap();
    assert_eq!(r.get_door().unwrap_err(), BufError::InvalidDoorSlot(0));
}

#[test]
fn out_of_range_slot_rejected() {
    let mut buf = CommBuffer::new();
    buf.put_u32(3); // Slot index with no capability vector.
    let mut r = CommBuffer::from_message(buf.into_message());
    assert_eq!(r.get_door().unwrap_err(), BufError::InvalidDoorSlot(3));
}

#[test]
fn drain_doors_returns_unconsumed() {
    let kernel = Kernel::new("buf-test");
    let server = kernel.create_domain("server");
    let a = server.create_door(echo_handler()).unwrap();
    let b = server.create_door(echo_handler()).unwrap();

    let mut buf = CommBuffer::new();
    buf.put_door(a);
    buf.put_door(b);
    let mut r = CommBuffer::from_message(buf.into_message());
    r.get_door().unwrap();
    let leftover = r.drain_doors();
    assert_eq!(leftover, vec![b]);
    // Draining twice yields nothing.
    assert!(r.drain_doors().is_empty());
}

#[test]
fn shm_redirect_roundtrip() {
    let kernel = Kernel::new("buf-test");
    let region = kernel.create_shm(256);

    let mut buf = CommBuffer::new();
    buf.redirect_to_shm(region.map_mut().unwrap()).unwrap();
    assert!(buf.is_shm_backed());
    buf.put_string("in shared memory");
    buf.put_u64(99);

    let (mapped, len, caps) = buf.take_shm().unwrap();
    assert!(len > 0);
    assert!(caps.is_empty());
    drop(mapped); // Publishes to the region.

    let mut r = CommBuffer::from_shm(region.map_mut().unwrap(), Vec::new());
    assert_eq!(r.get_string().unwrap(), "in shared memory");
    assert_eq!(r.get_u64().unwrap(), 99);
}

#[test]
fn shm_redirect_preserves_prefix() {
    let kernel = Kernel::new("buf-test");
    let region = kernel.create_shm(64);

    let mut buf = CommBuffer::new();
    buf.put_u32(7); // Written before the redirect.
    buf.redirect_to_shm(region.map_mut().unwrap()).unwrap();
    buf.put_u32(8);
    let (mapped, _, _) = buf.take_shm().unwrap();
    drop(mapped);

    let mut r = CommBuffer::from_shm(region.map_mut().unwrap(), Vec::new());
    assert_eq!(r.get_u32().unwrap(), 7);
    assert_eq!(r.get_u32().unwrap(), 8);
}

#[test]
fn wrong_backing_errors() {
    let buf = CommBuffer::new();
    assert_eq!(
        buf.take_shm().map(|_| ()).unwrap_err(),
        BufError::WrongBacking
    );

    let kernel = Kernel::new("buf-test");
    let region = kernel.create_shm(16);
    let mut buf = CommBuffer::new();
    buf.redirect_to_shm(region.map_mut().unwrap()).unwrap();
    let second = kernel.create_shm(16);
    assert_eq!(
        buf.redirect_to_shm(second.map_mut().unwrap()).unwrap_err(),
        BufError::WrongBacking
    );
}

/// A value we can marshal, for property tests.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    I32(i32),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Bytes(Vec<u8>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    prop_oneof![
        any::<u8>().prop_map(Val::U8),
        any::<u16>().prop_map(Val::U16),
        any::<u32>().prop_map(Val::U32),
        any::<u64>().prop_map(Val::U64),
        any::<i32>().prop_map(Val::I32),
        any::<i64>().prop_map(Val::I64),
        any::<f64>()
            .prop_filter("NaN compares unequal", |f| !f.is_nan())
            .prop_map(Val::F64),
        any::<bool>().prop_map(Val::Bool),
        ".{0,40}".prop_map(Val::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Val::Bytes),
    ]
}

proptest! {
    #[test]
    fn arbitrary_value_sequences_roundtrip(vals in proptest::collection::vec(val_strategy(), 0..32)) {
        let mut buf = CommBuffer::new();
        for v in &vals {
            match v {
                Val::U8(x) => buf.put_u8(*x),
                Val::U16(x) => buf.put_u16(*x),
                Val::U32(x) => buf.put_u32(*x),
                Val::U64(x) => buf.put_u64(*x),
                Val::I32(x) => buf.put_i32(*x),
                Val::I64(x) => buf.put_i64(*x),
                Val::F64(x) => buf.put_f64(*x),
                Val::Bool(x) => buf.put_bool(*x),
                Val::Str(s) => buf.put_string(s),
                Val::Bytes(b) => buf.put_bytes(b),
            }
        }
        let mut r = CommBuffer::from_message(buf.into_message());
        for v in &vals {
            let got = match v {
                Val::U8(_) => Val::U8(r.get_u8().unwrap()),
                Val::U16(_) => Val::U16(r.get_u16().unwrap()),
                Val::U32(_) => Val::U32(r.get_u32().unwrap()),
                Val::U64(_) => Val::U64(r.get_u64().unwrap()),
                Val::I32(_) => Val::I32(r.get_i32().unwrap()),
                Val::I64(_) => Val::I64(r.get_i64().unwrap()),
                Val::F64(_) => Val::F64(r.get_f64().unwrap()),
                Val::Bool(_) => Val::Bool(r.get_bool().unwrap()),
                Val::Str(_) => Val::Str(r.get_string().unwrap()),
                Val::Bytes(_) => Val::Bytes(r.get_bytes().unwrap()),
            };
            prop_assert_eq!(&got, v);
        }
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn door_slots_roundtrip_under_arbitrary_interleavings(
        plan in proptest::collection::vec(
            prop_oneof![
                Just(0u8), // A door slot.
                Just(1u8), // A u64.
                Just(2u8), // A string.
                Just(3u8), // A byte blob.
            ],
            0..24,
        )
    ) {
        let kernel = Kernel::new("buf-prop");
        let server = kernel.create_domain("server");
        let mut buf = CommBuffer::new();
        let mut doors = Vec::new();
        for (i, kind) in plan.iter().enumerate() {
            match kind {
                0 => {
                    let d = server.create_door(echo_handler()).unwrap();
                    buf.put_door(d);
                    doors.push(d);
                }
                1 => buf.put_u64(i as u64),
                2 => buf.put_string(&format!("s{i}")),
                _ => buf.put_bytes(&[i as u8; 5]),
            }
        }
        let mut r = CommBuffer::from_message(buf.into_message());
        let mut seen = Vec::new();
        for (i, kind) in plan.iter().enumerate() {
            match kind {
                0 => seen.push(r.get_door().unwrap()),
                1 => prop_assert_eq!(r.get_u64().unwrap(), i as u64),
                2 => prop_assert_eq!(r.get_string().unwrap(), format!("s{i}")),
                _ => prop_assert_eq!(r.get_bytes().unwrap(), vec![i as u8; 5]),
            }
        }
        // Every identifier came back, in order, exactly once.
        prop_assert_eq!(seen, doors);
        prop_assert!(r.drain_doors().is_empty());
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Try to decode several types at every prefix of arbitrary bytes;
        // all failures must be clean errors, never panics.
        let mut r = CommBuffer::from_message(Message::from_bytes(bytes));
        loop {
            let before = r.read_pos();
            let _ = r.get_string();
            let _ = r.get_bool();
            let _ = r.get_u64();
            let _ = r.get_door();
            if r.read_pos() == before || r.remaining() == 0 {
                break;
            }
        }
    }
}
