//! Marshalling errors.

use std::fmt;

/// Errors raised while encoding or decoding a [`crate::CommBuffer`].
///
/// Decoding is fully defensive: a malformed or truncated buffer received
/// from another domain must never panic, only produce one of these errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BufError {
    /// The buffer ended before the requested value could be read.
    OutOfData {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A string field did not hold valid UTF-8.
    InvalidUtf8,
    /// A boolean field held a byte other than 0 or 1.
    InvalidBool(u8),
    /// A door slot index did not refer to a capability in the message, or
    /// the capability was already consumed.
    InvalidDoorSlot(u32),
    /// A length prefix exceeded what the buffer could possibly hold,
    /// indicating corruption (and guarding against huge allocations).
    LengthOverrun {
        /// The claimed element count.
        claimed: u64,
        /// The limit implied by the remaining bytes.
        limit: u64,
    },
    /// An enum discriminant did not match any known variant.
    InvalidEnumTag(u32),
    /// The operation requires a heap-backed buffer but the buffer had been
    /// redirected to shared memory (or vice versa).
    WrongBacking,
}

impl fmt::Display for BufError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BufError::OutOfData { needed, remaining } => {
                write!(
                    f,
                    "buffer exhausted: needed {needed} bytes, {remaining} remaining"
                )
            }
            BufError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            BufError::InvalidBool(b) => write!(f, "invalid boolean byte {b:#x}"),
            BufError::InvalidDoorSlot(i) => write!(f, "invalid or consumed door slot {i}"),
            BufError::LengthOverrun { claimed, limit } => {
                write!(f, "length prefix {claimed} exceeds limit {limit}")
            }
            BufError::InvalidEnumTag(t) => write!(f, "invalid enum discriminant {t}"),
            BufError::WrongBacking => write!(f, "operation not valid for this buffer backing"),
        }
    }
}

impl std::error::Error for BufError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_numbers() {
        let e = BufError::OutOfData {
            needed: 8,
            remaining: 3,
        };
        let s = e.to_string();
        assert!(s.contains('8') && s.contains('3'));
        assert!(BufError::LengthOverrun {
            claimed: 10,
            limit: 2
        }
        .to_string()
        .contains("10"));
    }
}
