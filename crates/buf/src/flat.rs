//! Flat wire-format support: validate-then-cast decoding without copies.
//!
//! The IDL compiler emits, for every *fixed-shape* message type (all fields
//! primitives, enums, or nested fixed-shape structs), a `footprint()` size
//! function, a `validate(&[u8])` bounds-and-tags checker, and a borrowing
//! `*View` type whose accessors read fields straight out of the frame. The
//! contract is **validate then cast**: `validate` performs the single bounds
//! check and every tag check up front; after it succeeds, the view's
//! accessors are infallible and perform zero payload copies.
//!
//! The helpers here are the tiny runtime the generated code leans on. All
//! reads go through [`u64::from_le_bytes`]-style fixed-size loads, which
//! compile to single memory operations and are independent of the frame's
//! address alignment — the pool's 8-byte alignment guarantee
//! (`spring_kernel::pool::PAYLOAD_ALIGN`) makes whole-frame casts sound,
//! but field reads never rely on it.
//!
//! Offsets within a flat frame follow the buffer's CDR-like discipline:
//! each value is aligned to `min(size, 8)` **relative to the frame start**,
//! and every frame starts at an 8-byte-aligned buffer offset (writers call
//! [`crate::CommBuffer::align8`] first), so relative and absolute padding
//! agree and offsets are compile-time constants.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Flat frames start at buffer offsets aligned to this many bytes.
pub const FLAT_ALIGN: usize = 8;

/// Rounds `offset` up to the next multiple of `align` (a power of two).
pub const fn align_up(offset: usize, align: usize) -> usize {
    (offset + align - 1) & !(align - 1)
}

/// A typed rejection from a flat-frame `validate`.
///
/// Decoding is fully defensive: a malformed, truncated, or over-length
/// frame must produce one of these errors, never a panic or an
/// out-of-bounds read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame is shorter than the type's footprint.
    Truncated {
        /// Bytes the footprint requires.
        needed: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// The frame is longer than the type's footprint (fixed-shape frames
    /// are exact; trailing bytes indicate corruption or a stub mismatch).
    OverLength {
        /// Bytes the footprint requires.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
    /// An enum discriminant at `offset` is out of range.
    BadTag {
        /// Byte offset of the discriminant within the frame.
        offset: usize,
        /// The rejected discriminant.
        value: u32,
    },
    /// A boolean byte at `offset` is neither 0 nor 1.
    BadBool {
        /// Byte offset of the boolean within the frame.
        offset: usize,
        /// The rejected byte.
        value: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, actual } => {
                write!(
                    f,
                    "flat frame truncated: need {needed} bytes, have {actual}"
                )
            }
            WireError::OverLength { expected, actual } => {
                write!(
                    f,
                    "flat frame over-length: expected {expected} bytes, have {actual}"
                )
            }
            WireError::BadTag { offset, value } => {
                write!(f, "invalid enum tag {value} at frame offset {offset}")
            }
            WireError::BadBool { offset, value } => {
                write!(
                    f,
                    "invalid boolean byte {value:#x} at frame offset {offset}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Checks that a frame's length matches a footprint exactly.
#[inline]
pub fn check_len(bytes: &[u8], footprint: usize) -> Result<(), WireError> {
    if bytes.len() < footprint {
        Err(WireError::Truncated {
            needed: footprint,
            actual: bytes.len(),
        })
    } else if bytes.len() > footprint {
        Err(WireError::OverLength {
            expected: footprint,
            actual: bytes.len(),
        })
    } else {
        Ok(())
    }
}

/// Checks an enum discriminant against its variant count.
#[inline]
pub fn check_tag(bytes: &[u8], offset: usize, variants: u32) -> Result<(), WireError> {
    let value = get_u32(bytes, offset);
    if value < variants {
        Ok(())
    } else {
        Err(WireError::BadTag { offset, value })
    }
}

/// Checks a boolean byte.
#[inline]
pub fn check_bool(bytes: &[u8], offset: usize) -> Result<(), WireError> {
    match bytes[offset] {
        0 | 1 => Ok(()),
        value => Err(WireError::BadBool { offset, value }),
    }
}

macro_rules! flat_reads {
    ($($name:ident, $ty:ty);* $(;)?) => {
        $(
            #[doc = concat!("Reads the `", stringify!($ty),
                "` at `offset` of a validated frame (little-endian).")]
            #[inline]
            pub fn $name(bytes: &[u8], offset: usize) -> $ty {
                const N: usize = std::mem::size_of::<$ty>();
                let mut arr = [0u8; N];
                arr.copy_from_slice(&bytes[offset..offset + N]);
                <$ty>::from_le_bytes(arr)
            }
        )*
    };
}

flat_reads! {
    get_u8, u8;
    get_u16, u16;
    get_u32, u32;
    get_u64, u64;
    get_i8, i8;
    get_i16, i16;
    get_i32, i32;
    get_i64, i64;
}

/// Reads the `f32` at `offset` of a validated frame.
#[inline]
pub fn get_f32(bytes: &[u8], offset: usize) -> f32 {
    f32::from_bits(get_u32(bytes, offset))
}

/// Reads the `f64` at `offset` of a validated frame.
#[inline]
pub fn get_f64(bytes: &[u8], offset: usize) -> f64 {
    f64::from_bits(get_u64(bytes, offset))
}

/// Reads the boolean at `offset` of a validated frame.
#[inline]
pub fn get_bool(bytes: &[u8], offset: usize) -> bool {
    bytes[offset] != 0
}

/// Payload bytes copied out of buffers by the *copying* decode path
/// (`get_bytes`, `get_string`, `get_raw`), process-wide.
///
/// The flat path's whole point is that this counter does not move: tests
/// proving "zero payload copies" diff it around a call sequence. Like the
/// pool counters it is a process-wide atomic, so diffs are only meaningful
/// on a single thread with nothing else running.
static DECODE_BYTES_COPIED: AtomicU64 = AtomicU64::new(0);

#[inline]
pub(crate) fn note_decode_copy(n: usize) {
    DECODE_BYTES_COPIED.fetch_add(n as u64, Ordering::Relaxed);
}

/// Process-wide count of payload bytes copied by owned decoders since start.
pub fn decode_bytes_copied() -> u64 {
    DECODE_BYTES_COPIED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_rounds() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
        assert_eq!(align_up(13, 1), 13);
    }

    #[test]
    fn check_len_exact() {
        assert_eq!(check_len(&[0; 4], 4), Ok(()));
        assert_eq!(
            check_len(&[0; 3], 4),
            Err(WireError::Truncated {
                needed: 4,
                actual: 3
            })
        );
        assert_eq!(
            check_len(&[0; 5], 4),
            Err(WireError::OverLength {
                expected: 4,
                actual: 5
            })
        );
    }

    #[test]
    fn tag_and_bool_checks() {
        let frame = [2u8, 0, 0, 0, 1, 7];
        assert_eq!(check_tag(&frame, 0, 3), Ok(()));
        assert_eq!(
            check_tag(&frame, 0, 2),
            Err(WireError::BadTag {
                offset: 0,
                value: 2
            })
        );
        assert_eq!(check_bool(&frame, 4), Ok(()));
        assert_eq!(
            check_bool(&frame, 5),
            Err(WireError::BadBool {
                offset: 5,
                value: 7
            })
        );
    }

    #[test]
    fn reads_are_little_endian() {
        let frame = [0x78, 0x56, 0x34, 0x12, 0xff, 0, 0, 0];
        assert_eq!(get_u32(&frame, 0), 0x1234_5678);
        assert_eq!(get_u8(&frame, 4), 0xff);
        assert_eq!(get_i8(&frame, 4), -1);
        assert_eq!(get_u64(&frame, 0), 0x0000_00ff_1234_5678);
        assert!(get_bool(&frame, 4));
        assert!(!get_bool(&frame, 5));
    }

    #[test]
    fn display_mentions_offsets() {
        let s = WireError::BadTag {
            offset: 12,
            value: 9,
        }
        .to_string();
        assert!(s.contains("12") && s.contains('9'));
        let s = WireError::Truncated {
            needed: 8,
            actual: 2,
        }
        .to_string();
        assert!(s.contains('8') && s.contains('2'));
    }
}
