//! The communication buffer implementation.

use std::fmt;
use std::mem;

use spring_kernel::{pool, CallId, DoorId, MappedShm, Message};
use spring_trace::TraceCtx;

use crate::error::BufError;

/// Backing store for a buffer's byte stream.
enum Backing {
    /// Ordinary heap memory, copied by the kernel on transmission.
    Heap(Vec<u8>),
    /// A mapped shared-memory region; bytes written here are visible to the
    /// server without a kernel copy.
    Shm(MappedShm),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Heap(v) => v,
            Backing::Shm(m) => m,
        }
    }

    fn bytes_mut(&mut self) -> &mut Vec<u8> {
        match self {
            Backing::Heap(v) => v,
            Backing::Shm(m) => &mut *m,
        }
    }
}

/// A marshalling buffer: an aligned byte stream plus a capability vector.
///
/// Values are written with `put_*` methods and read back in the same order
/// with the matching `get_*` methods. Primitives are little-endian and
/// aligned to their natural alignment (capped at 8), mirroring CDR.
///
/// The same buffer type serves as call buffer, reply buffer, and marshalled
/// object container — exactly as in the paper, where subcontract operations
/// all traffic in "communication buffers".
pub struct CommBuffer {
    backing: Backing,
    /// Read cursor into the byte stream.
    rpos: usize,
    /// Out-of-band door identifiers, in slot order.
    caps: Vec<DoorId>,
    /// Bitset (64 slots per word) of capability slots consumed by
    /// `get_door`. Allocated lazily on first consumption, so buffers that
    /// carry no capabilities — the common case — never touch it.
    consumed: Vec<u64>,
    /// Trace context riding the envelope: captured from the incoming
    /// [`Message`] by [`CommBuffer::from_message`] and re-emitted by
    /// [`CommBuffer::into_message`], so decode → re-marshal paths (the
    /// network proxies) keep the trace connected without payload changes.
    trace: TraceCtx,
    /// Call identity riding the envelope, preserved across decode →
    /// re-marshal exactly like `trace`, so pass-through paths (the caching
    /// servant, proxies) keep at-most-once retries deduplicatable.
    call: CallId,
}

impl Default for CommBuffer {
    fn default() -> Self {
        Self::new()
    }
}

macro_rules! prim_impls {
    ($($put:ident, $get:ident, $ty:ty);* $(;)?) => {
        $(
            #[doc = concat!("Appends a `", stringify!($ty), "` (aligned, little-endian).")]
            pub fn $put(&mut self, v: $ty) {
                self.align(std::mem::size_of::<$ty>());
                self.backing.bytes_mut().extend_from_slice(&v.to_le_bytes());
            }

            #[doc = concat!("Reads the next `", stringify!($ty), "`.")]
            pub fn $get(&mut self) -> Result<$ty, BufError> {
                const N: usize = std::mem::size_of::<$ty>();
                self.skip_align(N)?;
                let raw = self.take(N)?;
                let mut arr = [0u8; N];
                arr.copy_from_slice(raw);
                Ok(<$ty>::from_le_bytes(arr))
            }
        )*
    };
}

impl CommBuffer {
    /// Creates an empty heap-backed buffer.
    pub fn new() -> Self {
        CommBuffer {
            backing: Backing::Heap(Vec::new()),
            rpos: 0,
            caps: Vec::new(),
            consumed: Vec::new(),
            trace: TraceCtx::NONE,
            call: CallId::NONE,
        }
    }

    /// Creates an empty heap-backed buffer with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        CommBuffer {
            backing: Backing::Heap(Vec::with_capacity(n)),
            rpos: 0,
            caps: Vec::new(),
            consumed: Vec::new(),
            trace: TraceCtx::NONE,
            call: CallId::NONE,
        }
    }

    /// Creates an empty heap-backed buffer whose backing comes from the
    /// per-thread buffer pool. Dropping any heap-backed buffer returns its
    /// backing to the pool, so the marshal → send → decode → drop cycle of
    /// a door call reuses the same allocations in steady state.
    pub fn pooled() -> Self {
        CommBuffer {
            backing: Backing::Heap(pool::take(0)),
            rpos: 0,
            caps: Vec::new(),
            consumed: Vec::new(),
            trace: TraceCtx::NONE,
            call: CallId::NONE,
        }
    }

    /// Wraps a received kernel message for decoding.
    pub fn from_message(msg: Message) -> Self {
        CommBuffer {
            backing: Backing::Heap(msg.bytes),
            rpos: 0,
            caps: msg.doors,
            consumed: Vec::new(),
            trace: msg.trace,
            call: msg.call,
        }
    }

    /// Converts the buffer into a kernel message for transmission.
    ///
    /// # Panics
    ///
    /// Panics if the buffer was redirected to shared memory; use
    /// [`CommBuffer::take_shm`] on that path instead.
    pub fn into_message(mut self) -> Message {
        match mem::replace(&mut self.backing, Backing::Heap(Vec::new())) {
            Backing::Heap(bytes) => Message {
                bytes,
                doors: mem::take(&mut self.caps),
                trace: self.trace,
                call: self.call,
            },
            Backing::Shm(_) => panic!("shm-backed buffer cannot become a heap message"),
        }
    }

    /// Redirects marshalling into a mapped shared-memory region.
    ///
    /// Bytes already written are carried over into the region (normally none:
    /// `invoke_preamble` runs before any argument marshalling, §5.1.4). The
    /// region's previous contents beyond the carried-over bytes are cleared.
    pub fn redirect_to_shm(&mut self, mut mapped: MappedShm) -> Result<(), BufError> {
        match &mut self.backing {
            Backing::Heap(v) => {
                mapped.clear();
                mapped.extend_from_slice(v);
                self.backing = Backing::Shm(mapped);
                Ok(())
            }
            Backing::Shm(_) => Err(BufError::WrongBacking),
        }
    }

    /// Detaches the shared-memory mapping, returning it together with the
    /// number of marshalled bytes and the capability vector. Dropping the
    /// returned mapping publishes the bytes to the region.
    pub fn take_shm(mut self) -> Result<(MappedShm, usize, Vec<DoorId>), BufError> {
        match mem::replace(&mut self.backing, Backing::Heap(Vec::new())) {
            Backing::Shm(m) => {
                let len = m.len();
                Ok((m, len, mem::take(&mut self.caps)))
            }
            Backing::Heap(v) => {
                self.backing = Backing::Heap(v);
                Err(BufError::WrongBacking)
            }
        }
    }

    /// Builds a decoding buffer over a mapped shared-memory region, with
    /// capabilities delivered out-of-band by the kernel message.
    pub fn from_shm(mapped: MappedShm, caps: Vec<DoorId>) -> Self {
        CommBuffer {
            backing: Backing::Shm(mapped),
            rpos: 0,
            caps,
            consumed: Vec::new(),
            trace: TraceCtx::NONE,
            call: CallId::NONE,
        }
    }

    /// The envelope trace context this buffer carries.
    pub fn trace(&self) -> TraceCtx {
        self.trace
    }

    /// Sets the envelope trace context emitted by
    /// [`CommBuffer::into_message`].
    pub fn set_trace(&mut self, trace: TraceCtx) {
        self.trace = trace;
    }

    /// The envelope call identity this buffer carries.
    pub fn call(&self) -> CallId {
        self.call
    }

    /// Sets the envelope call identity emitted by
    /// [`CommBuffer::into_message`].
    pub fn set_call(&mut self, call: CallId) {
        self.call = call;
    }

    /// Returns true when the backing store is a shared-memory mapping.
    pub fn is_shm_backed(&self) -> bool {
        matches!(self.backing, Backing::Shm(_))
    }

    /// Total bytes written so far.
    pub fn len(&self) -> usize {
        self.backing.bytes().len()
    }

    /// Returns true when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.backing.bytes().is_empty()
    }

    /// Bytes not yet consumed by the read cursor.
    pub fn remaining(&self) -> usize {
        self.len().saturating_sub(self.rpos)
    }

    /// Number of capability slots carried by this buffer.
    pub fn door_count(&self) -> usize {
        self.caps.len()
    }

    fn align(&mut self, size: usize) {
        let align = size.min(8);
        let v = self.backing.bytes_mut();
        let pad = (align - (v.len() % align)) % align;
        v.resize(v.len() + pad, 0);
    }

    fn skip_align(&mut self, size: usize) -> Result<(), BufError> {
        let align = size.min(8);
        let pad = (align - (self.rpos % align)) % align;
        if self.remaining() < pad {
            return Err(BufError::OutOfData {
                needed: pad,
                remaining: self.remaining(),
            });
        }
        self.rpos += pad;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&[u8], BufError> {
        if self.remaining() < n {
            return Err(BufError::OutOfData {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let start = self.rpos;
        self.rpos += n;
        Ok(&self.backing.bytes()[start..start + n])
    }

    /// Pads the write position to an 8-byte boundary (zero fill).
    ///
    /// Flat (fixed-shape) frames are written starting at an 8-byte-aligned
    /// buffer offset so that the per-type constant field offsets computed by
    /// the IDL compiler — which are relative to the frame start — coincide
    /// with the absolute padding the aligned `put_*` methods insert.
    pub fn align8(&mut self) {
        self.align(8);
    }

    /// Pads the read cursor to an 8-byte boundary, mirroring
    /// [`CommBuffer::align8`].
    pub fn skip_align8(&mut self) -> Result<(), BufError> {
        self.skip_align(8)
    }

    /// Aligns the read cursor to 8 bytes and consumes *all* remaining bytes,
    /// returning them as one borrowed slice — the zero-copy entry point for
    /// flat-frame decoding (validate-then-cast; see `spring_buf::flat`).
    ///
    /// The caller validates the slice against a type's footprint and then
    /// reads fields in place; no payload bytes are copied out of the buffer.
    pub fn flat_remaining(&mut self) -> Result<&[u8], BufError> {
        self.skip_align(8)?;
        // Pooled and shm backings are 8-byte aligned (see
        // `spring_kernel::pool::PAYLOAD_ALIGN`), so an 8-aligned cursor means
        // the frame itself starts on an 8-byte address boundary. Flat reads
        // do not rely on this (they use unaligned-safe loads), but the
        // invariant is what makes whole-frame casts sound, so check it.
        #[cfg(debug_assertions)]
        {
            let bytes = self.backing.bytes();
            if !bytes.is_empty() {
                debug_assert_eq!(
                    bytes.as_ptr() as usize % crate::flat::FLAT_ALIGN,
                    0,
                    "buffer backing lost its 8-byte alignment guarantee"
                );
            }
        }
        let n = self.remaining();
        self.take(n)
    }

    prim_impls! {
        put_u8, get_u8, u8;
        put_u16, get_u16, u16;
        put_u32, get_u32, u32;
        put_u64, get_u64, u64;
        put_i8, get_i8, i8;
        put_i16, get_i16, i16;
        put_i32, get_i32, i32;
        put_i64, get_i64, i64;
    }

    /// Appends an `f32`.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Reads the next `f32`.
    pub fn get_f32(&mut self) -> Result<f32, BufError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Reads the next `f64`.
    pub fn get_f64(&mut self) -> Result<f64, BufError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Appends a boolean as a single byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Reads the next boolean, rejecting bytes other than 0 or 1.
    pub fn get_bool(&mut self) -> Result<bool, BufError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(BufError::InvalidBool(b)),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_string(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.backing.bytes_mut().extend_from_slice(s.as_bytes());
    }

    /// Reads the next length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, BufError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(BufError::LengthOverrun {
                claimed: len as u64,
                limit: self.remaining() as u64,
            });
        }
        let raw = self.take(len)?;
        crate::flat::note_decode_copy(raw.len());
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| BufError::InvalidUtf8)
    }

    /// Appends a length-prefixed byte sequence (IDL `sequence<octet>`).
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.backing.bytes_mut().extend_from_slice(b);
    }

    /// Reads the next length-prefixed byte sequence.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, BufError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(BufError::LengthOverrun {
                claimed: len as u64,
                limit: self.remaining() as u64,
            });
        }
        let raw = self.take(len)?;
        crate::flat::note_decode_copy(raw.len());
        Ok(raw.to_vec())
    }

    /// Appends raw bytes with no length prefix (caller manages framing).
    pub fn put_raw(&mut self, b: &[u8]) {
        self.backing.bytes_mut().extend_from_slice(b);
    }

    /// Reads `n` raw bytes with no length prefix.
    pub fn get_raw(&mut self, n: usize) -> Result<Vec<u8>, BufError> {
        let raw = self.take(n)?;
        crate::flat::note_decode_copy(raw.len());
        Ok(raw.to_vec())
    }

    /// Writes a sequence length prefix, for use with per-element `put_*`.
    pub fn put_seq_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }

    /// Reads a sequence length prefix, rejecting counts that could not
    /// possibly fit in the remaining bytes (each element needs at least
    /// `min_elem_size` bytes). Guards decoders against hostile lengths.
    pub fn get_seq_len(&mut self, min_elem_size: usize) -> Result<usize, BufError> {
        let n = self.get_u32()? as usize;
        let limit = self.remaining() / min_elem_size.max(1);
        if n > limit {
            return Err(BufError::LengthOverrun {
                claimed: n as u64,
                limit: limit as u64,
            });
        }
        Ok(n)
    }

    /// Attaches a door identifier to the message's capability vector and
    /// writes its slot index into the byte stream.
    pub fn put_door(&mut self, id: DoorId) {
        let slot = self.caps.len() as u32;
        self.caps.push(id);
        self.put_u32(slot);
    }

    fn is_consumed(&self, idx: usize) -> bool {
        self.consumed
            .get(idx / 64)
            .is_some_and(|w| w & (1u64 << (idx % 64)) != 0)
    }

    fn mark_consumed(&mut self, idx: usize) {
        let word = idx / 64;
        if self.consumed.len() <= word {
            self.consumed.resize(word + 1, 0);
        }
        self.consumed[word] |= 1u64 << (idx % 64);
    }

    /// Reads a door slot index and takes the identifier from the capability
    /// vector. Each slot may be taken only once (identifiers move).
    pub fn get_door(&mut self) -> Result<DoorId, BufError> {
        let slot = self.get_u32()?;
        let idx = slot as usize;
        if idx >= self.caps.len() || self.is_consumed(idx) {
            return Err(BufError::InvalidDoorSlot(slot));
        }
        self.mark_consumed(idx);
        Ok(self.caps[idx])
    }

    /// Peeks at the `u64` at the current read position without consuming it
    /// (how a subcontract's unmarshal "takes a peek at the expected
    /// subcontract identifier in the communications buffer", §6.1).
    pub fn peek_u64(&self) -> Result<u64, BufError> {
        let align_pad = (8 - (self.rpos % 8)) % 8;
        let start = self.rpos + align_pad;
        let bytes = self.backing.bytes();
        if start + 8 > bytes.len() {
            return Err(BufError::OutOfData {
                needed: align_pad + 8,
                remaining: self.remaining(),
            });
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(&bytes[start..start + 8]);
        Ok(u64::from_le_bytes(arr))
    }

    /// Peeks at the `u32` at the current read position without consuming it.
    pub fn peek_u32(&self) -> Result<u32, BufError> {
        let align_pad = (4 - (self.rpos % 4)) % 4;
        let start = self.rpos + align_pad;
        let bytes = self.backing.bytes();
        if start + 4 > bytes.len() {
            return Err(BufError::OutOfData {
                needed: align_pad + 4,
                remaining: self.remaining(),
            });
        }
        let mut arr = [0u8; 4];
        arr.copy_from_slice(&bytes[start..start + 4]);
        Ok(u32::from_le_bytes(arr))
    }

    /// Removes and returns all unconsumed door identifiers, for cleanup
    /// paths that must not leak capabilities.
    pub fn drain_doors(&mut self) -> Vec<DoorId> {
        let mut out = Vec::new();
        for i in 0..self.caps.len() {
            if !self.is_consumed(i) {
                self.mark_consumed(i);
                out.push(self.caps[i]);
            }
        }
        out
    }

    /// Current read offset in bytes (diagnostics).
    pub fn read_pos(&self) -> usize {
        self.rpos
    }
}

impl Drop for CommBuffer {
    fn drop(&mut self) {
        // Return the heap backing to the per-thread pool. `into_message` and
        // `take_shm` leave an empty (capacity 0) vector behind, which the
        // pool ignores.
        if let Backing::Heap(v) = mem::replace(&mut self.backing, Backing::Heap(Vec::new())) {
            pool::give(v);
        }
    }
}

impl fmt::Debug for CommBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CommBuffer({} bytes, rpos {}, {} caps{})",
            self.len(),
            self.rpos,
            self.caps.len(),
            if self.is_shm_backed() { ", shm" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip_with_alignment() {
        let mut b = CommBuffer::new();
        b.put_u8(1);
        b.put_u64(2); // Forces 7 bytes of padding.
        b.put_u16(3);
        b.put_i32(-4);
        b.put_f64(2.5);
        b.put_bool(true);
        b.put_i8(-1);

        assert_eq!(b.get_u8().unwrap(), 1);
        assert_eq!(b.get_u64().unwrap(), 2);
        assert_eq!(b.get_u16().unwrap(), 3);
        assert_eq!(b.get_i32().unwrap(), -4);
        assert_eq!(b.get_f64().unwrap(), 2.5);
        assert!(b.get_bool().unwrap());
        assert_eq!(b.get_i8().unwrap(), -1);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn strings_and_bytes() {
        let mut b = CommBuffer::new();
        b.put_string("héllo");
        b.put_bytes(&[1, 2, 3]);
        b.put_string("");
        assert_eq!(b.get_string().unwrap(), "héllo");
        assert_eq!(b.get_bytes().unwrap(), vec![1, 2, 3]);
        assert_eq!(b.get_string().unwrap(), "");
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut b = CommBuffer::new();
        b.put_u32(0xFFFF_FFFF); // Looks like a huge length prefix.
        let mut r = CommBuffer::from_message(b.into_message());
        assert!(matches!(
            r.get_string().unwrap_err(),
            BufError::LengthOverrun { .. }
        ));

        let mut empty = CommBuffer::new();
        assert!(matches!(
            empty.get_u64().unwrap_err(),
            BufError::OutOfData { .. }
        ));
    }

    #[test]
    fn invalid_bool_rejected() {
        let mut b = CommBuffer::new();
        b.put_u8(7);
        assert_eq!(b.get_bool().unwrap_err(), BufError::InvalidBool(7));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut b = CommBuffer::new();
        b.put_u64(42);
        b.put_u64(43);
        assert_eq!(b.peek_u64().unwrap(), 42);
        assert_eq!(b.peek_u64().unwrap(), 42);
        assert_eq!(b.get_u64().unwrap(), 42);
        assert_eq!(b.peek_u64().unwrap(), 43);
    }

    #[test]
    fn peek_respects_alignment() {
        let mut b = CommBuffer::new();
        b.put_u8(9);
        b.put_u64(77);
        assert_eq!(b.get_u8().unwrap(), 9);
        // rpos is 1; the u64 sits at offset 8.
        assert_eq!(b.peek_u64().unwrap(), 77);
        assert_eq!(b.get_u64().unwrap(), 77);
    }

    #[test]
    fn peek_u32_respects_alignment_and_does_not_consume() {
        let mut b = CommBuffer::new();
        b.put_u8(1);
        b.put_u32(55);
        assert_eq!(b.get_u8().unwrap(), 1);
        assert_eq!(b.peek_u32().unwrap(), 55);
        assert_eq!(b.peek_u32().unwrap(), 55);
        assert_eq!(b.get_u32().unwrap(), 55);
        assert!(matches!(
            b.peek_u32().unwrap_err(),
            BufError::OutOfData { .. }
        ));
    }

    #[test]
    fn seq_len_guard() {
        let mut b = CommBuffer::new();
        b.put_seq_len(1000);
        let mut r = CommBuffer::from_message(b.into_message());
        assert!(matches!(
            r.get_seq_len(4).unwrap_err(),
            BufError::LengthOverrun { .. }
        ));
    }

    #[test]
    fn dropped_buffer_backing_returns_to_pool() {
        // Seed this thread's pool by dropping a buffer with real capacity…
        let mut b = CommBuffer::with_capacity(64);
        b.put_u64(1);
        drop(b);
        // …then a pooled buffer on the same thread must score a hit.
        let (h0, _) = pool::counters();
        let p = CommBuffer::pooled();
        let (h1, _) = pool::counters();
        assert!(h1 > h0);
        drop(p);
    }

    #[test]
    fn flat_remaining_aligns_and_borrows_everything() {
        let mut b = CommBuffer::new();
        b.put_u8(0xCC); // Simulated control/status byte before the frame.
        b.align8();
        b.put_u64(0x1122_3344_5566_7788);
        b.put_u32(9);
        let mut r = CommBuffer::from_message(b.into_message());
        assert_eq!(r.get_u8().unwrap(), 0xCC);
        let frame = r.flat_remaining().unwrap();
        assert_eq!(frame.len(), 12);
        assert_eq!(crate::flat::get_u64(frame, 0), 0x1122_3344_5566_7788);
        assert_eq!(crate::flat::get_u32(frame, 8), 9);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn flat_remaining_truncation_is_an_error_not_a_panic() {
        // One byte, cursor at 0: aligning to 8 needs 7 pad bytes that do
        // not exist.
        let mut b = CommBuffer::new();
        b.put_u8(1);
        let mut r = CommBuffer::from_message(b.into_message());
        assert_eq!(r.get_u8().unwrap(), 1);
        // Cursor at 1, nothing left: align pad exceeds remaining.
        assert!(matches!(
            r.flat_remaining().unwrap_err(),
            BufError::OutOfData { .. }
        ));
    }

    #[test]
    fn decode_copy_counter_moves_only_on_owned_decodes() {
        let mut b = CommBuffer::new();
        b.put_u64(7);
        b.put_bytes(&[1, 2, 3, 4]);
        b.put_string("hey");
        let mut r = CommBuffer::from_message(b.into_message());
        let before = crate::flat::decode_bytes_copied();
        r.get_u64().unwrap(); // Primitive: not a payload copy.
        assert_eq!(crate::flat::decode_bytes_copied(), before);
        r.get_bytes().unwrap();
        assert_eq!(crate::flat::decode_bytes_copied(), before + 4);
        r.get_string().unwrap();
        assert_eq!(crate::flat::decode_bytes_copied(), before + 7);
    }

    #[test]
    fn empty_and_len() {
        let b = CommBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        assert_eq!(b.remaining(), 0);
        let d = CommBuffer::default();
        assert!(d.is_empty());
    }
}
