//! Communication buffers for the simulated Spring system.
//!
//! Stubs and subcontracts marshal arguments, results, and subcontract
//! control information into a [`CommBuffer`], which is transmitted across a
//! domain boundary as a [`spring_kernel::Message`]. The encoding follows a
//! CDR-like discipline: little-endian primitives aligned to their natural
//! alignment, length-prefixed strings and byte sequences.
//!
//! Door identifiers are never encoded into the byte stream. The kernel must
//! see every identifier so it can translate it into the receiving domain's
//! door table, so identifiers travel in the message's out-of-band capability
//! vector and the byte stream carries only a slot index
//! ([`CommBuffer::put_door`] / [`CommBuffer::get_door`]).
//!
//! A buffer's backing store is normally a heap vector, but a subcontract's
//! `invoke_preamble` may redirect it into a shared-memory region
//! ([`CommBuffer::redirect_to_shm`]) so that arguments are marshalled
//! directly into the region — the paper's §5.1.4 optimization.
//!
//! Fixed-shape messages can skip the copying `get_*` path entirely: the
//! [`flat`] module provides validate-then-cast decoding over
//! [`CommBuffer::flat_remaining`], where unmarshal is one bounds check plus
//! in-place field reads with zero payload copies.
//!
//! # Examples
//!
//! ```
//! use spring_buf::CommBuffer;
//!
//! let mut buf = CommBuffer::new();
//! buf.put_u32(7);
//! buf.put_string("hello");
//! buf.put_bool(true);
//!
//! let mut buf = CommBuffer::from_message(buf.into_message());
//! assert_eq!(buf.get_u32().unwrap(), 7);
//! assert_eq!(buf.get_string().unwrap(), "hello");
//! assert!(buf.get_bool().unwrap());
//! ```

mod buffer;
mod error;
pub mod flat;

pub use buffer::CommBuffer;
pub use error::BufError;
pub use flat::WireError;
/// Re-export of the kernel's buffer pool ([`CommBuffer::pooled`] draws from
/// it, and dropped heap-backed buffers return to it).
pub use spring_kernel::pool;
