//! The *stream* subcontract: the paper's video future direction (§8.4).
//!
//! "One is to develop a subcontract that lets video objects encapsulate a
//! specific network packet protocol for live video." Live media tolerates
//! loss but not latency: a late frame is a useless frame. This subcontract
//! therefore speaks two protocols through one door: ordinary operations use
//! the usual request/reply wire, while *frames* are sequence-numbered,
//! fire-and-forget datagrams — a lost frame is reported as dropped, never as
//! an error, and the receiver tracks gaps instead of requesting
//! retransmission.
//!
//! Like `priority` and `txn`, this is written entirely against the public
//! `subcontract` API: the packet protocol lives in the control region and
//! the subcontract's own door handler, with no new base-system facilities.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, SpringObj, Subcontract, TypeInfo,
};

/// Control-region kind: an ordinary request/reply operation.
const KIND_CALL: u8 = 0;
/// Control-region kind: a fire-and-forget frame.
const KIND_FRAME: u8 = 1;

/// What happened to one transmitted frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameOutcome {
    /// The frame reached the sink.
    Delivered,
    /// The network lost the frame; live streams simply move on.
    Dropped,
}

/// Receives frames on the server side.
pub trait FrameSink: Send + Sync {
    /// Called once per arriving frame, with its sequence number.
    fn frame(&self, seq: u64, data: &[u8]);
}

impl<F: Fn(u64, &[u8]) + Send + Sync> FrameSink for F {
    fn frame(&self, seq: u64, data: &[u8]) {
        self(seq, data)
    }
}

/// Receiver-side accounting: how much of the stream actually arrived.
#[derive(Debug, Default)]
pub struct StreamStats {
    received: AtomicU64,
    highest_seq: AtomicU64,
    out_of_order: AtomicU64,
}

impl StreamStats {
    /// Frames that reached the sink.
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// The highest sequence number seen (0 before any frame).
    pub fn highest_seq(&self) -> u64 {
        self.highest_seq.load(Ordering::Relaxed)
    }

    /// Frames observed with gaps before them — the loss the protocol
    /// tolerates by design.
    pub fn missing(&self) -> u64 {
        self.highest_seq().saturating_sub(self.received())
    }

    /// Frames that arrived with a sequence number lower than one already
    /// seen.
    pub fn out_of_order(&self) -> u64 {
        self.out_of_order.load(Ordering::Relaxed)
    }
}

/// Client representation: the door and the next frame sequence number.
#[derive(Debug)]
struct StreamRepr {
    door: DoorId,
    next_seq: AtomicU64,
}

/// The stream subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Stream;

impl Stream {
    /// The identifier carried in stream objects' marshalled form.
    pub const ID: ScId = ScId::from_name("stream");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Stream> {
        Arc::new(Stream)
    }

    /// Exports a stream object: ordinary operations go to `disp`, frames go
    /// to `sink`. Returns the object and the receiver-side statistics.
    pub fn export(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        sink: Arc<dyn FrameSink>,
    ) -> Result<(SpringObj, Arc<StreamStats>)> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let stats = Arc::new(StreamStats::default());
        let handler = Arc::new(StreamHandler {
            ctx: ctx.clone(),
            disp,
            sink,
            stats: stats.clone(),
        });
        let door = ctx.domain().create_door(handler)?;
        let obj = SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(StreamRepr {
                door,
                next_seq: AtomicU64::new(1),
            }),
        );
        Ok((obj, stats))
    }

    /// Sends one frame, fire-and-forget: a lost frame yields
    /// [`FrameOutcome::Dropped`], not an error. Frames are sequence-numbered
    /// per object.
    pub fn send_frame(obj: &SpringObj, data: &[u8]) -> Result<FrameOutcome> {
        let repr = obj.repr().downcast::<StreamRepr>("stream")?;
        let seq = repr.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut buf = CommBuffer::new();
        buf.put_u8(KIND_FRAME);
        buf.put_u64(seq);
        buf.put_bytes(data);
        match obj.ctx().domain().call(repr.door, buf.into_message()) {
            Ok(_) => Ok(FrameOutcome::Delivered),
            // Loss is part of the protocol; a dead endpoint is not.
            Err(spring_kernel::DoorError::Comm(_)) => Ok(FrameOutcome::Dropped),
            Err(e) => Err(e.into()),
        }
    }

    /// The next sequence number this object will stamp (diagnostics).
    pub fn next_seq(obj: &SpringObj) -> Result<u64> {
        let repr = obj.repr().downcast::<StreamRepr>("stream")?;
        Ok(repr.next_seq.load(Ordering::Relaxed))
    }
}

/// Server side: demultiplexes frames from ordinary calls.
struct StreamHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    sink: Arc<dyn FrameSink>,
    stats: Arc<StreamStats>,
}

impl DoorHandler for StreamHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let kind = args
            .get_u8()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad stream control: {e}")))?;
        match kind {
            KIND_FRAME => {
                let (seq, data) =
                    (|| -> Result<(u64, Vec<u8>)> { Ok((args.get_u64()?, args.get_bytes()?)) })()
                        .map_err(|e| spring_kernel::DoorError::Handler(format!("bad frame: {e}")))?;
                self.stats.received.fetch_add(1, Ordering::Relaxed);
                let prev = self.stats.highest_seq.fetch_max(seq, Ordering::Relaxed);
                if seq < prev {
                    self.stats.out_of_order.fetch_add(1, Ordering::Relaxed);
                }
                self.sink.frame(seq, &data);
                Ok(Message::new())
            }
            KIND_CALL => {
                let mut reply = CommBuffer::new();
                let sctx = ServerCtx {
                    ctx: self.ctx.clone(),
                    caller: cctx.caller,
                };
                server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
                Ok(reply.into_message())
            }
            other => Err(spring_kernel::DoorError::Handler(format!(
                "unknown stream packet kind {other}"
            ))),
        }
    }
}

impl Subcontract for Stream {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn invoke_preamble(&self, _obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        call.put_u8(KIND_CALL);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<StreamRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<StreamRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        // Sequence numbering continues where the sender left off, so the
        // receiver's gap accounting stays meaningful across a hand-off.
        buf.put_u64(repr.next_seq.load(Ordering::Relaxed));
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let next_seq = buf.get_u64()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(StreamRepr {
                door,
                next_seq: AtomicU64::new(next_seq),
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<StreamRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(StreamRepr {
            door,
            next_seq: AtomicU64::new(repr.next_seq.load(Ordering::Relaxed)),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<StreamRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}
