//! Convenience wiring: register the standard subcontract set, or package it
//! as a loadable library for dynamic-discovery scenarios (§6.2).

use std::sync::Arc;

use subcontract::{DomainCtx, Subcontract};

use crate::caching::Caching;
use crate::cluster::Cluster;
use crate::pipeline::Pipeline;
use crate::reconnectable::Reconnectable;
use crate::replicon::Replicon;
use crate::shmem::Shmem;
use crate::simplex::Simplex;
use crate::singleton::Singleton;

/// Names of the subcontracts in the standard library, in registration order.
pub const STANDARD_SUBCONTRACT_NAMES: [&str; 8] = [
    "singleton",
    "simplex",
    "cluster",
    "replicon",
    "caching",
    "reconnectable",
    "shmem",
    "pipeline",
];

fn standard_set() -> Vec<Arc<dyn Subcontract>> {
    vec![
        Singleton::new(),
        Simplex::new(),
        Cluster::new(),
        Replicon::new(),
        Caching::new(),
        Reconnectable::new(),
        Shmem::new(),
        Pipeline::new(),
    ]
}

/// Registers the full standard subcontract set in a domain — the moral
/// equivalent of linking a program against the standard libraries.
pub fn register_standard(ctx: &Arc<DomainCtx>) {
    for sc in standard_set() {
        ctx.register_subcontract(sc);
    }
}

/// The standard set packaged as a library factory, for installing in a
/// [`subcontract::LibraryStore`] and loading via dynamic discovery.
pub fn standard_library() -> subcontract::LibraryFactory {
    Arc::new(standard_set)
}

/// The "third-party" extension subcontracts (§8.4's future directions —
/// priority transfer and transaction control) as a loadable library. Not in
/// the standard set on purpose: programs discover them dynamically.
pub fn extensions_library() -> subcontract::LibraryFactory {
    Arc::new(|| {
        vec![
            crate::priority::Priority::new() as Arc<dyn Subcontract>,
            crate::txn::Txn::new(),
            crate::stream::Stream::new(),
        ]
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spring_kernel::Kernel;

    #[test]
    fn standard_set_matches_its_advertised_names() {
        let names: Vec<&str> = standard_set().iter().map(|sc| sc.name()).collect();
        assert_eq!(names, STANDARD_SUBCONTRACT_NAMES);
    }

    #[test]
    fn register_standard_fills_the_registry() {
        let kernel = Kernel::new("t");
        let ctx = subcontract::DomainCtx::new(kernel.create_domain("d"));
        register_standard(&ctx);
        assert_eq!(ctx.registry().len(), STANDARD_SUBCONTRACT_NAMES.len());
        for name in STANDARD_SUBCONTRACT_NAMES {
            assert!(
                ctx.registry().contains(subcontract::ScId::from_name(name)),
                "{name}"
            );
        }
    }

    #[test]
    fn extension_library_provides_all_three() {
        let provided = extensions_library()();
        let names: Vec<&str> = provided.iter().map(|sc| sc.name()).collect();
        assert_eq!(names, ["priority", "txn", "stream"]);
    }
}
