//! The *reconnectable* subcontract: quiet recovery from server crashes (§8.3).
//!
//! Some servers keep their state in stable storage; a client holding one of
//! their objects "would like the object to be able to quietly recover from
//! server crashes". Door identifiers become invalid when a server crashes,
//! so the reconnectable representation pairs a door identifier with an
//! object name: "if [the door invocation] fails, the subcontract instead
//! attempts to resolve the object name to obtain a new object and retries
//! the operation on that. It retries periodically until it succeeds in
//! getting a new valid object."

use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, Dispatch, DomainCtx, ObjParts, Repr,
    Result, ScId, SpringError, SpringObj, Subcontract, TypeInfo,
};

use crate::caching::DirectHandler;
use crate::retry::Invocation;

pub use crate::retry::RetryPolicy;

/// Client representation: the current door plus the object's name.
#[derive(Debug)]
struct ReconRepr {
    door: Mutex<DoorId>,
    name: String,
}

/// The reconnectable subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Reconnectable {
    policy: RetryPolicy,
}

impl Reconnectable {
    /// The identifier carried in reconnectable objects' marshalled form.
    pub const ID: ScId = ScId::from_name("reconnectable");

    /// Creates the subcontract instance with the default retry policy.
    pub fn new() -> Arc<Reconnectable> {
        Arc::new(Reconnectable::default())
    }

    /// Creates the subcontract instance with a custom retry policy.
    pub fn with_policy(policy: RetryPolicy) -> Arc<Reconnectable> {
        Arc::new(Reconnectable { policy })
    }

    /// Exports an object under a stable name. The server (or its
    /// supervisor) is responsible for binding a copy of the returned object
    /// into the naming context under `name` — and for re-binding a fresh one
    /// after a restart, which is what clients reconnect to.
    pub fn export(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        name: impl Into<String>,
    ) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(DirectHandler {
            ctx: ctx.clone(),
            disp,
            dedup: crate::dedup::ReplyCache::default(),
        });
        let door = ctx.domain().create_door(handler)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ReconRepr {
                door: Mutex::new(door),
                name: name.into(),
            }),
        ))
    }

    /// Extracts the primary door from a freshly resolved object, accepting
    /// any of this crate's single-door subcontracts. The donor object is
    /// disassembled, not consumed, so its door identifier survives.
    fn adopt_door(resolved: SpringObj) -> Result<DoorId> {
        let sc_id = resolved.subcontract().id();
        if sc_id != Self::ID
            && sc_id != crate::singleton::Singleton::ID
            && sc_id != crate::simplex::Simplex::ID
        {
            // Return before disassembly: dropping `resolved` whole runs its
            // subcontract's consume, so the unadoptable object's doors are
            // released instead of leaking with its discarded parts.
            return Err(SpringError::Unsupported(
                "reconnectable can only adopt single-door objects",
            ));
        }
        let (_ctx, _sc, parts) = resolved.into_parts();
        if sc_id == Self::ID {
            let repr = parts.repr.into_downcast::<ReconRepr>("reconnectable")?;
            Ok(repr.door.into_inner())
        } else if sc_id == crate::singleton::Singleton::ID {
            Ok(parts
                .repr
                .into_downcast::<crate::singleton::SingletonRepr>("singleton")?
                .door)
        } else {
            parts
                .repr
                .into_downcast::<crate::simplex::SimplexRepr>("simplex")?
                .remote_door()
                .ok_or(SpringError::Unsupported("resolved object has no door"))
        }
    }
}

impl Subcontract for Reconnectable {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "reconnectable"
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<ReconRepr>(self.name())?;
        let domain = obj.ctx().domain();
        let msg = call.into_message();
        let (bytes, arg_doors, trace) = (msg.bytes, msg.doors, msg.trace);

        // One logical call: every attempt shares the nonce (so the server's
        // reply cache deduplicates a reply lost in flight) and the deadline.
        let mut inv = Invocation::begin(self.policy);
        loop {
            let door = *repr.door.lock();
            let attempt = Message {
                bytes: bytes.clone(),
                doors: arg_doors.clone(),
                trace,
                call: inv.call_id(),
            };
            // One span per attempt, tagged with the attempt number, so a
            // reconnect reads as a failed sibling plus the retry that
            // succeeded.
            let mut attempt_span = spring_trace::span_start(
                "reconnectable.attempt",
                domain.trace_scope(),
                inv.attempt() as u64,
            );
            let outcome = domain.call(door, attempt);
            if outcome.is_err() {
                attempt_span.fail();
            }
            drop(attempt_span);
            match outcome {
                Ok(reply) => return Ok(CommBuffer::from_message(reply)),
                Err(e) if e.is_comm_failure() => {
                    inv.backoff()?;
                    // Re-resolve the object name to obtain a new object and
                    // retry the operation on that (§8.3).
                    let resolver = obj.ctx().resolver()?;
                    match resolver.resolve(&repr.name, obj.type_info()) {
                        Ok(fresh) => match Self::adopt_door(fresh) {
                            Ok(new_door) => {
                                let old = std::mem::replace(&mut *repr.door.lock(), new_door);
                                let _ = domain.delete_door(old);
                            }
                            // An unadoptable binding is a failed attempt,
                            // not the end of the invocation: whoever bound
                            // it may rebind something usable before the
                            // retry budget runs out.
                            Err(_) => continue,
                        },
                        // The server is still down; keep retrying.
                        Err(_) => continue,
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<ReconRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door.into_inner());
        buf.put_string(&repr.name);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let name = buf.get_string()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ReconRepr {
                door: Mutex::new(door),
                name,
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<ReconRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(*repr.door.lock())?;
        Ok(obj.assemble_like(Repr::new(ReconRepr {
            door: Mutex::new(door),
            name: repr.name.clone(),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<ReconRepr>(self.name())?;
        // The door may already be dead (that is the point of this
        // subcontract); a failed delete is not an error worth surfacing.
        let _ = ctx.domain().delete_door(repr.door.into_inner());
        Ok(())
    }
}
