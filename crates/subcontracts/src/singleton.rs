//! The *singleton* subcontract: the simplest client-server subcontract.
//!
//! Singleton is the default subcontract for standard types (§6.1: "the
//! standard type *file* is specified to use a simple subcontract called
//! *singleton*"). A singleton object's representation is a single kernel
//! door identifier, and its door delivers incoming calls directly to the
//! server-side stubs (§5.2.2's first option — no server-side subcontract
//! dialogue, and no control regions on the wire).

use std::sync::Arc;

use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, ServerSubcontract, SpringObj, Subcontract, TypeInfo,
};

/// Client representation: one kernel door identifier.
#[derive(Debug)]
pub(crate) struct SingletonRepr {
    pub(crate) door: DoorId,
}

/// The singleton subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Singleton;

impl Singleton {
    /// The identifier carried in singleton objects' marshalled form.
    pub const ID: ScId = ScId::from_name("singleton");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Singleton> {
        Arc::new(Singleton)
    }

    /// Assembles a singleton object directly from a door identifier owned by
    /// `ctx`'s domain (used by infrastructure and tests).
    pub fn object_from_door(
        self: &Arc<Self>,
        ctx: &Arc<DomainCtx>,
        type_info: &'static TypeInfo,
        door: DoorId,
    ) -> SpringObj {
        SpringObj::assemble(
            ctx.clone(),
            type_info,
            self.clone() as Arc<dyn Subcontract>,
            Repr::new(SingletonRepr { door }),
        )
    }
}

/// The door handler singleton installs: delivers calls straight to the
/// skeleton.
struct SingletonHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
}

impl DoorHandler for SingletonHandler {
    fn unreferenced(&self) {
        self.disp.unreferenced();
    }

    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let mut reply = CommBuffer::pooled();
        let sctx = ServerCtx {
            ctx: self.ctx.clone(),
            caller: cctx.caller,
        };
        server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
        Ok(reply.into_message())
    }
}

impl Subcontract for Singleton {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "singleton"
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<SingletonRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<SingletonRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        Ok(())
    }

    fn marshal_copy(&self, obj: &SpringObj, buf: &mut CommBuffer) -> Result<()> {
        // Optimized copy-then-marshal (§5.1.5): duplicate the identifier and
        // emit the marshalled form directly, without fabricating (and
        // immediately destroying) an intermediate object.
        let repr = obj.repr().downcast::<SingletonRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        put_obj_header(buf, Self::ID, obj.type_name());
        buf.put_door(door);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(SingletonRepr { door }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<SingletonRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(SingletonRepr { door })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<SingletonRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}

impl ServerSubcontract for Singleton {
    fn export(&self, ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(SingletonHandler {
            ctx: ctx.clone(),
            disp,
        });
        let door = ctx.domain().create_door(handler)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(SingletonRepr { door }),
        ))
    }

    fn revoke(&self, obj: &SpringObj) -> Result<()> {
        let repr = obj.repr().downcast::<SingletonRepr>(self.name())?;
        obj.ctx().domain().revoke_door(repr.door)?;
        Ok(())
    }
}
