//! Server-side reply cache: the other half of at-most-once invocation.
//!
//! A retrying client cannot tell a call lost on the way in from a reply
//! lost on the way back — but the server can. Every serve path wraps its
//! dispatch in [`ReplyCache::serve`]: the first attempt of a logical call
//! (identified by the [`CallId`] nonce riding the envelope) executes and
//! its reply is recorded; any later attempt with the same nonce gets the
//! recorded reply back *without re-executing*. Calls with no identity —
//! the overwhelmingly common case — skip the cache entirely on a single
//! branch.
//!
//! Two kinds of reply cannot be replayed byte-for-byte:
//!
//! * replies carrying door identifiers (the identifiers *moved* with the
//!   original reply; minting fresh ones would re-execute side effects),
//! * nothing else — application-level errors are encoded in the reply
//!   bytes by `server_dispatch` and replay fine.
//!
//! Such a call is recorded as *uncacheable*: a duplicate attempt gets a
//! non-communications error, so the client stops retrying and reports the
//! honest "maybe executed" outcome instead of silently executing twice.
//!
//! The cache is bounded (FIFO eviction). An evicted entry downgrades that
//! call back to at-least-once — the bound trades memory for a window, and
//! the window (capacity ≫ in-flight retries) makes the trade safe.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use spring_kernel::{DoorError, Message};

/// Default bound on recorded replies per serve door.
const DEFAULT_CAPACITY: usize = 1024;

/// What the cache remembers about one executed call.
enum Entry {
    /// Door-free reply bytes, replayable verbatim.
    Replayable(Vec<u8>),
    /// The call executed but its reply cannot be replayed (it moved door
    /// identifiers); duplicates get an error instead of a re-execution.
    Uncacheable,
}

#[derive(Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<u64>,
}

/// Counters exposed for tests and the benchmark report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Duplicate attempts answered from the cache.
    pub hits: u64,
    /// First attempts executed and recorded.
    pub recorded: u64,
    /// Duplicate attempts refused because the reply was uncacheable.
    pub refused: u64,
    /// Calls refused because their deadline had already passed.
    pub expired: u64,
    /// Entries dropped by the FIFO bound.
    pub evictions: u64,
}

/// A bounded nonce-keyed reply cache for one serve door.
pub struct ReplyCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    recorded: AtomicU64,
    refused: AtomicU64,
    expired: AtomicU64,
    evictions: AtomicU64,
}

impl Default for ReplyCache {
    fn default() -> Self {
        ReplyCache::with_capacity(DEFAULT_CAPACITY)
    }
}

impl ReplyCache {
    /// Creates a cache remembering at most `capacity` replies.
    pub fn with_capacity(capacity: usize) -> ReplyCache {
        ReplyCache {
            inner: Mutex::new(Inner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Serves one incoming call with at-most-once semantics: executes
    /// `exec` for the first attempt of a logical call and replays (or
    /// refuses) duplicates. Identity-free calls go straight to `exec`.
    pub fn serve<F>(&self, msg: Message, exec: F) -> Result<Message, DoorError>
    where
        F: FnOnce(Message) -> Result<Message, DoorError>,
    {
        let call = msg.call;
        if call.is_none() {
            return exec(msg);
        }
        if call.is_expired() {
            // The client has given up on this invocation; starting to
            // execute it now could only produce an orphan side effect.
            self.expired.fetch_add(1, Ordering::Relaxed);
            return Err(DoorError::Handler(
                "call deadline expired before execution".into(),
            ));
        }
        {
            let inner = self.inner.lock();
            match inner.entries.get(&call.nonce) {
                Some(Entry::Replayable(bytes)) => {
                    let replay = bytes.clone();
                    drop(inner);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Message::from_bytes(replay));
                }
                Some(Entry::Uncacheable) => {
                    drop(inner);
                    self.refused.fetch_add(1, Ordering::Relaxed);
                    // Deliberately not a communications error: the client
                    // must stop retrying and surface the uncertainty.
                    return Err(DoorError::Handler(
                        "duplicate of a completed call whose reply cannot be replayed".into(),
                    ));
                }
                None => {}
            }
        }

        // First attempt to arrive: execute outside the lock (door calls
        // run on the shuttled caller thread; one logical call is retried
        // serially, so no second attempt races this execution).
        let reply = exec(msg)?;
        let entry = if reply.doors.is_empty() {
            Entry::Replayable(reply.bytes.clone())
        } else {
            Entry::Uncacheable
        };
        let mut inner = self.inner.lock();
        if inner.entries.insert(call.nonce, entry).is_none() {
            inner.order.push_back(call.nonce);
            self.recorded.fetch_add(1, Ordering::Relaxed);
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.entries.remove(&old);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(reply)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> DedupStats {
        DedupStats {
            hits: self.hits.load(Ordering::Relaxed),
            recorded: self.recorded.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spring_kernel::callid::deadline_after;
    use spring_kernel::{CallCtx, CallId, DoorHandler, Kernel, Message};
    use std::sync::atomic::AtomicU32;
    use std::sync::Arc;
    use std::time::Duration;

    fn ided(nonce: u64, attempt: u32) -> Message {
        Message {
            call: CallId {
                nonce,
                attempt,
                deadline_micros: deadline_after(Duration::from_secs(60)),
            },
            ..Message::from_bytes(vec![1, 2, 3])
        }
    }

    #[test]
    fn identity_free_calls_bypass_the_cache() {
        let cache = ReplyCache::default();
        let executions = AtomicU32::new(0);
        for _ in 0..3 {
            let reply = cache
                .serve(Message::from_bytes(vec![9]), |_| {
                    executions.fetch_add(1, Ordering::Relaxed);
                    Ok(Message::from_bytes(vec![7]))
                })
                .unwrap();
            assert_eq!(reply.bytes, vec![7]);
        }
        assert_eq!(executions.load(Ordering::Relaxed), 3);
        assert_eq!(cache.stats(), DedupStats::default());
    }

    #[test]
    fn duplicates_replay_without_reexecuting() {
        let cache = ReplyCache::default();
        let executions = AtomicU32::new(0);
        for attempt in 1..=3 {
            let reply = cache
                .serve(ided(42, attempt), |_| {
                    executions.fetch_add(1, Ordering::Relaxed);
                    Ok(Message::from_bytes(vec![7, 7]))
                })
                .unwrap();
            assert_eq!(reply.bytes, vec![7, 7]);
        }
        assert_eq!(executions.load(Ordering::Relaxed), 1);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.recorded, 1);
    }

    #[test]
    fn door_carrying_replies_refuse_duplicates() {
        struct Nop;
        impl DoorHandler for Nop {
            fn invoke(&self, _: &CallCtx, m: Message) -> Result<Message, DoorError> {
                Ok(m)
            }
        }
        let kernel = Kernel::new("dedup-test");
        let domain = kernel.create_domain("server");
        let door = domain.create_door(Arc::new(Nop)).unwrap();

        let cache = ReplyCache::default();
        let first = cache.serve(ided(7, 1), |_| {
            Ok(Message {
                doors: vec![door],
                ..Message::from_bytes(vec![1])
            })
        });
        assert!(first.is_ok());
        let dup = cache.serve(ided(7, 2), |_| panic!("must not re-execute"));
        let err = dup.unwrap_err();
        assert!(!err.is_comm_failure(), "refusal must stop client retries");
        assert_eq!(cache.stats().refused, 1);
    }

    #[test]
    fn expired_calls_are_refused_before_execution() {
        let cache = ReplyCache::default();
        let msg = Message {
            call: CallId {
                nonce: 9,
                attempt: 1,
                deadline_micros: 1,
            },
            ..Message::from_bytes(vec![])
        };
        std::thread::sleep(Duration::from_micros(10));
        let out = cache.serve(msg, |_| panic!("must not execute"));
        assert!(out.is_err());
        assert_eq!(cache.stats().expired, 1);
    }

    #[test]
    fn fifo_bound_evicts_oldest() {
        let cache = ReplyCache::with_capacity(2);
        for nonce in 1..=3u64 {
            cache
                .serve(ided(nonce, 1), |_| Ok(Message::from_bytes(vec![0])))
                .unwrap();
        }
        assert_eq!(cache.stats().evictions, 1);
        // Nonce 1 was evicted: a late duplicate re-executes (the documented
        // at-least-once downgrade), nonce 3 still replays.
        let executions = AtomicU32::new(0);
        cache
            .serve(ided(1, 2), |_| {
                executions.fetch_add(1, Ordering::Relaxed);
                Ok(Message::from_bytes(vec![0]))
            })
            .unwrap();
        assert_eq!(executions.load(Ordering::Relaxed), 1);
        cache
            .serve(ided(3, 2), |_| panic!("must not re-execute"))
            .unwrap();
    }

    #[test]
    fn failed_executions_are_not_recorded() {
        let cache = ReplyCache::default();
        let out = cache.serve(ided(5, 1), |_| Err(DoorError::Handler("boom".into())));
        assert!(out.is_err());
        assert_eq!(cache.stats().recorded, 0);
        // A retry of a failed execution executes again.
        cache
            .serve(ided(5, 2), |_| Ok(Message::from_bytes(vec![1])))
            .unwrap();
        assert_eq!(cache.stats().recorded, 1);
    }
}
