//! The *replicon* subcontract: replication with failover (§5).
//!
//! In replicon, a set of server domains conspire to maintain the underlying
//! state associated with an object; each server accepts incoming calls on
//! its own door. A client object's representation is a set of door
//! identifiers, one per replica. The invoke operation tries each door in
//! turn: "If the door invocation fails due to a communications error, then
//! replicon deletes that door identifier from its set of targets and
//! proceeds to try the next door identifier" (§5.1.3).
//!
//! Replicon "also piggybacks some subcontract control information in the
//! call and reply buffers. This is used to support changes to the replica
//! set": the call carries the client's replica-set epoch; when the server's
//! membership is newer, the reply carries the current epoch and a fresh set
//! of door identifiers, which the client adopts.
//!
//! Clients talk to a single server at a time and "the servers are required
//! to perform their own state synchronization" — see the replicated file
//! service in `spring-services` for a server group that does.

use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorError, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, SpringError, SpringObj, Subcontract, TypeInfo,
};

use crate::dedup::ReplyCache;
use crate::retry::{Invocation, RetryPolicy};

/// Reply control flag: the client's replica set is current.
const CTRL_CURRENT: u8 = 0;
/// Reply control flag: an updated replica set follows.
const CTRL_UPDATE: u8 = 1;

/// Client representation: the replica-set epoch and one door per replica.
#[derive(Debug)]
struct RepliconRepr {
    state: Mutex<ReplicaState>,
}

#[derive(Debug)]
struct ReplicaState {
    epoch: u64,
    doors: Vec<DoorId>,
}

/// The replicon subcontract (client side).
#[derive(Debug, Default)]
pub struct Replicon {
    policy: RetryPolicy,
}

impl Replicon {
    /// The identifier carried in replicon objects' marshalled form.
    pub const ID: ScId = ScId::from_name("replicon");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Replicon> {
        Arc::new(Replicon::default())
    }

    /// Creates the subcontract instance with a custom retry policy
    /// (pacing for transient-loss retries; replica failover itself is
    /// immediate and not budgeted).
    pub fn with_policy(policy: RetryPolicy) -> Arc<Replicon> {
        Arc::new(Replicon { policy })
    }

    /// Number of door identifiers a replicon object currently holds
    /// (shrinks as failovers delete dead replicas, grows back when a
    /// piggybacked update arrives).
    pub fn live_replicas(obj: &SpringObj) -> Result<usize> {
        let repr = obj.repr().downcast::<RepliconRepr>("replicon")?;
        Ok(repr.state.lock().doors.len())
    }

    /// The replica-set epoch the object currently knows.
    pub fn epoch(obj: &SpringObj) -> Result<u64> {
        let repr = obj.repr().downcast::<RepliconRepr>("replicon")?;
        Ok(repr.state.lock().epoch)
    }
}

impl Subcontract for Replicon {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "replicon"
    }

    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Piggyback the client's epoch so the server can detect staleness.
        let repr = obj.repr().downcast::<RepliconRepr>(self.name())?;
        call.put_u64(repr.state.lock().epoch);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<RepliconRepr>(self.name())?;
        let domain = obj.ctx().domain();
        let msg = call.into_message();
        let (bytes, arg_doors, trace) = (msg.bytes, msg.doors, msg.trace);

        // One logical call across every failover and retry: all attempts
        // share the nonce, so whichever replica executed the first attempt
        // can be recognized through the group's shared reply cache.
        let mut inv = Invocation::begin(self.policy);
        loop {
            // Snapshot the first target under the lock; call outside it.
            let target = match repr.state.lock().doors.first() {
                Some(d) => *d,
                None => return Err(SpringError::Exhausted("no live replicas")),
            };
            let attempt = Message {
                bytes: bytes.clone(),
                doors: arg_doors.clone(),
                trace,
                call: inv.call_id(),
            };
            // One span per attempt, tagged with the attempt number: a
            // failover shows up in the trace as a failed sibling followed
            // by the successful retry.
            let mut attempt_span = spring_trace::span_start(
                "replicon.attempt",
                domain.trace_scope(),
                inv.attempt() as u64,
            );
            let outcome = domain.call(target, attempt);
            if outcome.is_err() {
                attempt_span.fail();
            }
            drop(attempt_span);
            match outcome {
                Ok(reply) => {
                    let mut reply = CommBuffer::from_message(reply);
                    self.absorb_reply_control(obj, &mut reply)?;
                    return Ok(reply);
                }
                Err(DoorError::Comm(_)) => {
                    // Transient network failure: the replica behind the
                    // door may be healthy — and may already have executed
                    // this call. Keep the identifier, rotate it to the back
                    // of the set, and retry after a backoff against the
                    // attempt/deadline budget.
                    let mut state = repr.state.lock();
                    if let Some(pos) = state.doors.iter().position(|d| *d == target) {
                        let d = state.doors.remove(pos);
                        state.doors.push(d);
                    }
                    drop(state);
                    inv.backoff()?;
                }
                Err(e) if e.is_comm_failure() => {
                    // The replica itself is gone (door revoked, domain
                    // dead): delete the dead door identifier from the
                    // target set and fail over to the next one immediately
                    // (§5.1.3).
                    let mut state = repr.state.lock();
                    if let Some(pos) = state.doors.iter().position(|d| *d == target) {
                        state.doors.remove(pos);
                    }
                    drop(state);
                    let _ = domain.delete_door(target);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let _ = ctx;
        let repr = parts.repr.into_downcast::<RepliconRepr>(self.name())?;
        let state = repr.state.into_inner();
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_u64(state.epoch);
        buf.put_seq_len(state.doors.len());
        for d in state.doors {
            buf.put_door(d);
        }
        Ok(())
    }

    fn marshal_copy(&self, obj: &SpringObj, buf: &mut CommBuffer) -> Result<()> {
        // Optimized copy-then-marshal (§5.1.5): duplicate every replica
        // identifier straight into the buffer, skipping the intermediate
        // object (and its Mutex, Box, and Vec) entirely.
        let repr = obj.repr().downcast::<RepliconRepr>(self.name())?;
        let state = repr.state.lock();
        put_obj_header(buf, Self::ID, obj.type_name());
        buf.put_u64(state.epoch);
        buf.put_seq_len(state.doors.len());
        for d in &state.doors {
            buf.put_door(obj.ctx().domain().copy_door(*d)?);
        }
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let epoch = buf.get_u64()?;
        let n = buf.get_seq_len(4)?;
        let mut doors = Vec::with_capacity(n);
        for _ in 0..n {
            doors.push(buf.get_door()?);
        }
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(RepliconRepr {
                state: Mutex::new(ReplicaState { epoch, doors }),
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<RepliconRepr>(self.name())?;
        let state = repr.state.lock();
        let mut doors = Vec::with_capacity(state.doors.len());
        for d in &state.doors {
            doors.push(obj.ctx().domain().copy_door(*d)?);
        }
        let epoch = state.epoch;
        drop(state);
        Ok(obj.assemble_like(Repr::new(RepliconRepr {
            state: Mutex::new(ReplicaState { epoch, doors }),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<RepliconRepr>(self.name())?;
        for d in repr.state.into_inner().doors {
            // A replica may have died; its identifier is still ours to
            // delete, and failures here must not mask the others.
            let _ = ctx.domain().delete_door(d);
        }
        Ok(())
    }
}

impl Replicon {
    /// Reads the reply control region and adopts a piggybacked replica-set
    /// update when present.
    fn absorb_reply_control(&self, obj: &SpringObj, reply: &mut CommBuffer) -> Result<()> {
        match reply.get_u8()? {
            CTRL_CURRENT => Ok(()),
            CTRL_UPDATE => {
                let epoch = reply.get_u64()?;
                let n = reply.get_seq_len(4)?;
                let mut fresh = Vec::with_capacity(n);
                for _ in 0..n {
                    fresh.push(reply.get_door()?);
                }
                let repr = obj.repr().downcast::<RepliconRepr>(self.name())?;
                let old = {
                    let mut state = repr.state.lock();
                    if epoch <= state.epoch {
                        // Raced with a newer update; drop the stale one.
                        drop(state);
                        for d in fresh {
                            let _ = obj.ctx().domain().delete_door(d);
                        }
                        return Ok(());
                    }
                    state.epoch = epoch;
                    std::mem::replace(&mut state.doors, fresh)
                };
                for d in old {
                    let _ = obj.ctx().domain().delete_door(d);
                }
                Ok(())
            }
            other => Err(SpringError::Remote(format!(
                "bad replicon control flag {other}"
            ))),
        }
    }
}

#[derive(Debug)]
struct Membership {
    epoch: u64,
    /// Identifiers for every member's door, owned by this server's domain.
    members: Vec<DoorId>,
}

/// One replica's server-side replicon machinery.
pub struct RepliconServer {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    /// The server's own identifier for its own door.
    master: DoorId,
    membership: Arc<Mutex<Membership>>,
    /// Replaceable reply-cache slot, shared with the door handler. Joining
    /// a [`ReplicaGroup`] points it at the *group's* cache: a retried call
    /// that fails over to a sibling replica must still be recognized as a
    /// duplicate, which is part of the state synchronization the paper
    /// leaves to the servers.
    dedup: Arc<Mutex<Arc<ReplyCache>>>,
}

struct RepliconHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    membership: Arc<Mutex<Membership>>,
    dedup: Arc<Mutex<Arc<ReplyCache>>>,
}

impl DoorHandler for RepliconHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let cache = self.dedup.lock().clone();
        cache.serve(msg, |msg| self.execute(cctx, msg))
    }
}

impl RepliconHandler {
    fn execute(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let client_epoch = args
            .get_u64()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad replicon control: {e}")))?;

        let mut reply = CommBuffer::new();
        // Piggyback a replica-set update when the client is stale (§5.1.3).
        {
            let membership = self.membership.lock();
            if client_epoch < membership.epoch {
                reply.put_u8(CTRL_UPDATE);
                reply.put_u64(membership.epoch);
                reply.put_seq_len(membership.members.len());
                for d in &membership.members {
                    let copy = self.ctx.domain().copy_door(*d).map_err(|e| {
                        spring_kernel::DoorError::Handler(format!("membership copy: {e}"))
                    })?;
                    reply.put_door(copy);
                }
            } else {
                reply.put_u8(CTRL_CURRENT);
            }
        }

        let sctx = ServerCtx {
            ctx: self.ctx.clone(),
            caller: cctx.caller,
        };
        server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
        Ok(reply.into_message())
    }
}

impl RepliconServer {
    /// Creates one replica server: its door plus empty membership (joining a
    /// [`ReplicaGroup`] fills the membership in).
    pub fn new(ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<Arc<RepliconServer>> {
        ctx.types().register(disp.type_info());
        let membership = Arc::new(Mutex::new(Membership {
            epoch: 0,
            members: Vec::new(),
        }));
        let dedup = Arc::new(Mutex::new(Arc::new(ReplyCache::default())));
        let handler = Arc::new(RepliconHandler {
            ctx: ctx.clone(),
            disp: disp.clone(),
            membership: membership.clone(),
            dedup: dedup.clone(),
        });
        let master = ctx.domain().create_door(handler)?;
        Ok(Arc::new(RepliconServer {
            ctx: ctx.clone(),
            disp,
            master,
            membership,
            dedup,
        }))
    }

    /// The serving domain's context.
    pub fn ctx(&self) -> &Arc<DomainCtx> {
        &self.ctx
    }

    /// Counter snapshot of the reply cache this replica currently serves
    /// from (the group-wide cache once the replica has joined a group).
    pub fn dedup_stats(&self) -> crate::dedup::DedupStats {
        self.dedup.lock().stats()
    }

    /// True while the serving domain is alive.
    pub fn is_alive(&self) -> bool {
        self.ctx.domain().is_alive()
    }
}

/// Group coordinator: tracks the replica membership, bumps the epoch on
/// change, and distributes fresh door sets to every live replica.
///
/// In Spring this coordination is part of the server application ("the
/// servers are required to perform their own state synchronization"); the
/// group object plays that role for tests, examples, and benches. Replicas
/// may live on different machines when the group is built over a network
/// transport ([`ReplicaGroup::with_transport`]).
pub struct ReplicaGroup {
    inner: Mutex<GroupInner>,
    transport: Arc<dyn subcontract::Transport>,
    /// The group-wide reply cache every member serves from, so duplicate
    /// suppression survives failover between replicas.
    dedup: Arc<ReplyCache>,
}

impl Default for ReplicaGroup {
    fn default() -> Self {
        ReplicaGroup::new()
    }
}

#[derive(Default)]
struct GroupInner {
    epoch: u64,
    servers: Vec<Arc<RepliconServer>>,
}

impl ReplicaGroup {
    /// Creates an empty single-machine group.
    pub fn new() -> ReplicaGroup {
        ReplicaGroup::with_transport(Arc::new(subcontract::KernelTransport))
    }

    /// Creates an empty group whose door identifiers move through the given
    /// transport (for replicas spread across machines).
    pub fn with_transport(transport: Arc<dyn subcontract::Transport>) -> ReplicaGroup {
        ReplicaGroup {
            inner: Mutex::new(GroupInner::default()),
            transport,
            dedup: Arc::new(ReplyCache::default()),
        }
    }

    /// Copies `member`'s master identifier into the `to` domain via the
    /// group's transport.
    fn door_for(&self, member: &RepliconServer, to: &spring_kernel::Domain) -> Result<DoorId> {
        let copy = member.ctx.domain().copy_door(member.master)?;
        let msg = Message {
            bytes: Vec::new(),
            doors: vec![copy],
            ..Message::default()
        };
        let mut arrived = self.transport.ship(member.ctx.domain(), to, msg)?;
        arrived
            .doors
            .pop()
            .ok_or(SpringError::Exhausted("transport dropped the identifier"))
    }

    /// Adds a replica and redistributes membership. The joining replica is
    /// switched onto the group's shared reply cache, so a client retry that
    /// lands on a different member still deduplicates.
    pub fn add(&self, server: Arc<RepliconServer>) -> Result<()> {
        *server.dedup.lock() = self.dedup.clone();
        let mut inner = self.inner.lock();
        inner.servers.push(server);
        self.redistribute(&mut inner)
    }

    /// Drops replicas whose domains have crashed and redistributes
    /// membership (how the surviving servers learn about a failure).
    pub fn remove_dead(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.servers.retain(|s| s.is_alive());
        self.redistribute(&mut inner)
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Number of live replicas.
    pub fn len(&self) -> usize {
        self.inner.lock().servers.len()
    }

    /// True when the group has no replicas.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().servers.is_empty()
    }

    fn redistribute(&self, inner: &mut GroupInner) -> Result<()> {
        inner.epoch += 1;
        let epoch = inner.epoch;
        for receiver in &inner.servers {
            let mut fresh = Vec::with_capacity(inner.servers.len());
            for member in &inner.servers {
                fresh.push(self.door_for(member, receiver.ctx.domain())?);
            }
            let mut membership = receiver.membership.lock();
            let old = std::mem::replace(&mut membership.members, fresh);
            membership.epoch = epoch;
            drop(membership);
            for d in old {
                let _ = receiver.ctx.domain().delete_door(d);
            }
        }
        Ok(())
    }

    /// Fabricates a client object for the group in `ctx`'s domain, holding
    /// one door identifier per live replica.
    pub fn object_for(&self, ctx: &Arc<DomainCtx>) -> Result<SpringObj> {
        let inner = self.inner.lock();
        let first = inner
            .servers
            .first()
            .ok_or(SpringError::Exhausted("replica group is empty"))?;
        let type_info = first.disp.type_info();
        ctx.types().register(type_info);
        let mut doors = Vec::with_capacity(inner.servers.len());
        for member in &inner.servers {
            doors.push(self.door_for(member, ctx.domain())?);
        }
        let epoch = inner.epoch;
        drop(inner);
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Replicon::ID)?,
            Repr::new(RepliconRepr {
                state: Mutex::new(ReplicaState { epoch, doors }),
            }),
        ))
    }
}
