//! Shared retry engine: call identity, deadline, exponential backoff.
//!
//! Both retrying subcontracts — reconnectable (§8.3, "retries periodically
//! until it succeeds") and replicon (§5.1.3, try the next replica on a
//! communications error) — share one attempt-budget discipline here. An
//! [`Invocation`] names one *logical* call: it allocates the nonce every
//! attempt is stamped with (so the server's reply cache can deduplicate,
//! see [`crate::dedup`]), fixes the absolute deadline the whole invocation
//! must finish by, and paces retries with exponentially growing, jittered
//! sleeps so a herd of retrying clients does not hammer a recovering
//! server in lockstep.

use std::time::Duration;

use spring_kernel::callid::{deadline_after, next_nonce, now_micros};
use spring_kernel::{CallId, FaultRng};
use subcontract::SpringError;

/// How persistently a retrying subcontract re-attempts one invocation.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Maximum retries per invocation after the initial attempt.
    pub max_attempts: u32,
    /// Delay before the first retry ("retries periodically"); doubles —
    /// or grows by [`RetryPolicy::multiplier`] — on each further retry.
    pub interval: Duration,
    /// Ceiling on the per-retry delay once backoff has grown it.
    pub max_interval: Duration,
    /// Backoff growth factor between consecutive retries.
    pub multiplier: f64,
    /// Jitter fraction in `[0, 1]`: each sleep is scaled by a random
    /// factor in `[1 - jitter, 1 + jitter]` to de-synchronize retrying
    /// clients.
    pub jitter: f64,
    /// Wall-clock budget for the whole invocation, carried in the call
    /// envelope as an absolute deadline: the client stops retrying past
    /// it and servers refuse to *start* executing an expired call.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            interval: Duration::from_millis(10),
            max_interval: Duration::from_millis(200),
            multiplier: 2.0,
            jitter: 0.5,
            deadline: Duration::from_secs(30),
        }
    }
}

/// One logical invocation's retry state: identity, budget, pacing.
#[derive(Debug)]
pub struct Invocation {
    nonce: u64,
    deadline_micros: u64,
    policy: RetryPolicy,
    /// Attempt number stamped on the next transmission (starts at 1).
    attempt: u32,
    /// The next backoff sleep, before jitter and the interval ceiling.
    next_delay: Duration,
    rng: FaultRng,
}

impl Invocation {
    /// Begins a logical invocation: fresh nonce, deadline anchored now.
    pub fn begin(policy: RetryPolicy) -> Invocation {
        let nonce = next_nonce();
        Invocation {
            nonce,
            deadline_micros: deadline_after(policy.deadline),
            policy,
            attempt: 1,
            next_delay: policy.interval,
            // Jitter only needs de-synchronization, not secrecy; seeding
            // from the nonce keeps every run reproducible.
            rng: FaultRng::seed_from_u64(nonce),
        }
    }

    /// The identity to stamp on the current attempt's call envelope.
    pub fn call_id(&self) -> CallId {
        CallId {
            nonce: self.nonce,
            attempt: self.attempt,
            deadline_micros: self.deadline_micros,
        }
    }

    /// The current attempt number (1 for the initial transmission).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Records a failed attempt and sleeps the backoff delay before the
    /// next one. Returns `Err(Exhausted)` when the retry budget or the
    /// invocation deadline is spent — retrying past either would waste
    /// work the server is already refusing.
    pub fn backoff(&mut self) -> Result<(), SpringError> {
        if self.attempt > self.policy.max_attempts {
            return Err(SpringError::Exhausted("retry attempts"));
        }
        self.attempt += 1;
        let remaining_micros = self.deadline_micros.saturating_sub(now_micros());
        if remaining_micros == 0 {
            return Err(SpringError::Exhausted("invocation deadline"));
        }
        let mut delay = self.next_delay.min(self.policy.max_interval);
        self.next_delay = self.next_delay.mul_f64(self.policy.multiplier.max(1.0));
        if self.policy.jitter > 0.0 {
            let spread = self.policy.jitter.clamp(0.0, 1.0);
            delay = delay.mul_f64(1.0 - spread + 2.0 * spread * self.rng.unit_f64());
        }
        // Never sleep past the deadline itself.
        delay = delay.min(Duration::from_micros(remaining_micros));
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            interval: Duration::from_micros(50),
            max_interval: Duration::from_micros(200),
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn attempts_share_the_nonce_and_count_up() {
        let mut inv = Invocation::begin(fast_policy());
        let first = inv.call_id();
        assert!(first.is_some());
        assert_eq!(first.attempt, 1);
        inv.backoff().unwrap();
        let second = inv.call_id();
        assert_eq!(second.nonce, first.nonce);
        assert_eq!(second.attempt, 2);
        assert_eq!(second.deadline_micros, first.deadline_micros);
    }

    #[test]
    fn budget_exhausts_after_max_attempts() {
        let mut inv = Invocation::begin(fast_policy());
        for _ in 0..3 {
            inv.backoff().unwrap();
        }
        assert!(matches!(inv.backoff(), Err(SpringError::Exhausted(_))));
    }

    #[test]
    fn deadline_exhausts_before_budget() {
        let mut inv = Invocation::begin(RetryPolicy {
            max_attempts: 1_000,
            interval: Duration::from_micros(100),
            deadline: Duration::from_millis(5),
            ..RetryPolicy::default()
        });
        let mut spent = 0;
        loop {
            match inv.backoff() {
                Ok(()) => spent += 1,
                Err(SpringError::Exhausted(what)) => {
                    assert_eq!(what, "invocation deadline");
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(spent < 1_000, "deadline never tripped");
        }
    }

    #[test]
    fn distinct_invocations_get_distinct_nonces() {
        let a = Invocation::begin(fast_policy());
        let b = Invocation::begin(fast_policy());
        assert_ne!(a.call_id().nonce, b.call_id().nonce);
    }
}
