//! The *caching* subcontract: invocations via a machine-local cache (§8.2).
//!
//! When a caching object is transmitted between machines, only the server
//! door identifier (D1) and the cache manager name travel. The receiving
//! side's unmarshal "resolves the cache manager name in a machine-local
//! context to discover a suitable local cache manager and then presents the
//! D1 door identifier to the local cache manager and receives a new D2.
//! Whenever the subcontract performs an invoke operation it uses the D2 door
//! identifier" — so every invocation goes to a cache on the local machine.
//!
//! The cache manager here is a generic memoizing interceptor: operations in
//! its *cacheable set* are answered from the cache when possible; any other
//! operation is forwarded to the server and invalidates the cache
//! (write-through). The original Spring cache manager was the file system's
//! coherent cache ([Nelson et al 1993]); [`Caching::export_coherent`]
//! provides the same guarantee here — cross-machine coherence via
//! server-driven, epoch-stamped invalidation callbacks backed by leases —
//! implemented entirely inside the subcontract, with the stubs untouched.
//! The protocol is documented in DESIGN.md §5.11.
//!
//! Coherence in one paragraph: each coherent attachment registers a
//! callback door with the server under a process-unique nonce. After any
//! non-cacheable (mutating) operation commits, the server bumps its *epoch*
//! and broadcasts the new epoch to every registered cache. Because
//! callbacks cross the simulated network they can be dropped, so
//! correctness never depends on delivery: memo entries are tagged with the
//! epoch they were read under and are only served while the servant holds a
//! live *lease*; on lease expiry the servant revalidates with a cheap
//! epoch-check RPC (re-registering if the server pruned it). A cache that
//! stops acknowledging callbacks is pruned from the broadcast set without
//! blocking the write path.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::callid::now_micros;
use spring_kernel::{CallCtx, DoorError, DoorHandler, DoorId, Message};
use subcontract::{
    decode_reply_status, encode_ok, get_obj_header, op_hash, put_obj_header, redispatch_if_foreign,
    server_dispatch, Dispatch, DomainCtx, ObjParts, ReplyStatus, Repr, Result, ScId, ServerCtx,
    ServerSubcontract, SpringError, SpringObj, Subcontract, TypeInfo, STATUS_OK,
};

/// Run-time type of cache manager objects.
pub static CACHE_MANAGER_TYPE: TypeInfo = TypeInfo {
    name: "cache_manager",
    parents: &[&subcontract::OBJECT_TYPE],
    default_subcontract: crate::simplex::Simplex::ID,
};

/// The cache manager's single operation: attach a server door, get a cache
/// door back.
pub const OP_ATTACH: u32 = op_hash("attach");

/// Coherence-protocol operation: register a callback door under a nonce.
/// Served by [`CoherentHandler`] itself, never by the skeleton; an
/// incoherent server never receives it (servants only speak the protocol
/// when the marshalled form said the server is coherent).
pub const OP_CACHE_REGISTER: u32 = op_hash("cache.register");

/// Coherence-protocol operation: epoch-check RPC used to revalidate a lease.
pub const OP_CACHE_EPOCH: u32 = op_hash("cache.epoch");

/// Coherence-protocol operation: drop a registration (best effort; a lost
/// detach is reaped via the unknown-nonce list on the next broadcast).
pub const OP_CACHE_DETACH: u32 = op_hash("cache.detach");

/// Consecutive transient (Comm) callback failures before a cache is pruned
/// from the broadcast set. Non-transient failures (revoked door, dead
/// domain) prune immediately. A pruned-but-alive cache re-registers itself
/// on its next lease revalidation, so an over-eager prune only costs
/// callbacks, never correctness.
const MAX_CALLBACK_FAILURES: u32 = 8;

/// Default bound on a cache servant's memo (entries), LRU-evicted.
const DEFAULT_MEMO_CAPACITY: usize = 1024;

/// Process-wide attach nonce allocator; nonces name registrations across
/// the network, so they must be unique across every manager in the process.
static NEXT_ATTACH_NONCE: AtomicU64 = AtomicU64::new(1);

/// Reads the operation word without copying the payload: caching objects
/// have no `invoke_preamble`, so the op is the first aligned little-endian
/// `u32` of the marshalled stream.
fn peek_op(bytes: &[u8]) -> Option<u32> {
    let raw: [u8; 4] = bytes.get(0..4)?.try_into().ok()?;
    Some(u32::from_le_bytes(raw))
}

/// Client representation: server door, cache door, and the manager name.
#[derive(Debug)]
struct CachingRepr {
    /// D1: points at the real server.
    d1: DoorId,
    /// D2: points at the local cache; all invocations use this.
    d2: DoorId,
    /// Name of the cache manager, resolved machine-locally on unmarshal.
    manager: String,
    /// Whether the server broadcasts invalidations: receiving machines
    /// attach coherently (register a callback, honour leases) iff set.
    coherent: bool,
}

/// The caching subcontract (client side).
#[derive(Debug, Default)]
pub struct Caching;

impl Caching {
    /// The identifier carried in caching objects' marshalled form.
    pub const ID: ScId = ScId::from_name("caching");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Caching> {
        Arc::new(Caching)
    }

    /// Exports an object that clients will access through their local cache
    /// managers. The server side is a plain door to the skeleton; the
    /// cleverness is all in unmarshal on the receiving machines.
    ///
    /// Caches attached to this export are *incoherent* across machines: a
    /// write through one machine's cache invalidates only that machine.
    /// Use [`Caching::export_coherent`] when several machines may share
    /// the object.
    pub fn export(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        manager_name: impl Into<String>,
    ) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(DirectHandler {
            ctx: ctx.clone(),
            disp,
            dedup: crate::dedup::ReplyCache::default(),
        });
        Self::assemble_export(ctx, type_info, handler, manager_name.into(), false)
    }

    /// Exports a *coherent* caching object: every attached cache registers
    /// an invalidation callback, mutating operations bump the server epoch
    /// and broadcast it, and memo entries are only served under a live
    /// `lease`. The exporting server's own D2 path shares the handler, so
    /// server-local writes invalidate remote caches too.
    ///
    /// Returns the object plus the server-side coherence counters.
    pub fn export_coherent(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        manager_name: impl Into<String>,
        cacheable_ops: impl IntoIterator<Item = u32>,
        lease: Duration,
    ) -> Result<(SpringObj, Arc<CoherentStats>)> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let stats = Arc::new(CoherentStats::default());
        let handler = Arc::new(CoherentHandler {
            inner: DirectHandler {
                ctx: ctx.clone(),
                disp,
                dedup: crate::dedup::ReplyCache::default(),
            },
            cacheable: cacheable_ops.into_iter().collect(),
            lease_micros: lease.as_micros().max(1) as u64,
            callbacks: Mutex::new(HashMap::new()),
            stats: stats.clone(),
        });
        let obj = Self::assemble_export(ctx, type_info, handler, manager_name.into(), true)?;
        Ok((obj, stats))
    }

    fn assemble_export(
        ctx: &Arc<DomainCtx>,
        type_info: &'static TypeInfo,
        handler: Arc<dyn DoorHandler>,
        manager: String,
        coherent: bool,
    ) -> Result<SpringObj> {
        let d1 = ctx.domain().create_door(handler)?;
        // The exporting server needs no cache to reach itself: its D2 is a
        // second identifier for the server door (which, for a coherent
        // export, is exactly what routes server-local writes through the
        // broadcast).
        let d2 = match ctx.domain().copy_door(d1) {
            Ok(d2) => d2,
            Err(e) => {
                let _ = ctx.domain().delete_door(d1);
                return Err(e.into());
            }
        };
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(CachingRepr {
                d1,
                d2,
                manager,
                coherent,
            }),
        ))
    }
}

/// A door handler that delivers calls straight to the skeleton (the wire the
/// cache servants also speak when forwarding).
pub(crate) struct DirectHandler {
    pub(crate) ctx: Arc<DomainCtx>,
    pub(crate) disp: Arc<dyn Dispatch>,
    /// At-most-once reply cache; identity-free calls bypass it.
    pub(crate) dedup: crate::dedup::ReplyCache,
}

impl DoorHandler for DirectHandler {
    fn unreferenced(&self) {
        self.disp.unreferenced();
    }

    fn invoke(&self, cctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        self.dedup.serve(msg, |msg| {
            let mut span = spring_trace::span_start(
                "caching.serve",
                self.ctx.domain().trace_scope(),
                Caching::ID.raw(),
            );
            let mut args = CommBuffer::from_message(msg);
            let mut reply = CommBuffer::new();
            let sctx = ServerCtx {
                ctx: self.ctx.clone(),
                caller: cctx.caller,
            };
            let result = server_dispatch(&sctx, &*self.disp, &mut args, &mut reply);
            if result.is_err() {
                span.fail();
            }
            result?;
            Ok(reply.into_message())
        })
    }
}

/// Server-side counters for a coherent export (observability + E4).
#[derive(Debug, Default)]
pub struct CoherentStats {
    epoch: AtomicU64,
    broadcasts: AtomicU64,
    callback_failures: AtomicU64,
    pruned: AtomicU64,
    registrations: AtomicU64,
}

impl CoherentStats {
    /// Current server epoch (bumped once per committed mutating op).
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Invalidation broadcast calls issued (one per distinct callback door
    /// per epoch bump, not one per registration).
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }

    /// Broadcast calls that failed (lost on the network, dead peer…).
    pub fn callback_failures(&self) -> u64 {
        self.callback_failures.load(Ordering::Relaxed)
    }

    /// Registrations pruned from the broadcast set.
    pub fn pruned(&self) -> u64 {
        self.pruned.load(Ordering::Relaxed)
    }

    /// Callback registrations accepted (including re-registrations).
    pub fn registrations(&self) -> u64 {
        self.registrations.load(Ordering::Relaxed)
    }
}

/// One registered invalidation callback.
struct Callback {
    /// Our copy of the cache's callback door (possibly a network proxy).
    door: DoorId,
    /// Underlying door token: registrations from the same manager share a
    /// door, so broadcasts group by token and issue one call per machine.
    token: u64,
    /// Consecutive transient failures (reset on success).
    fails: u32,
}

/// The coherent server handler: wraps [`DirectHandler`], intercepts the
/// coherence-protocol ops, and broadcasts epoch bumps after mutating ops.
pub(crate) struct CoherentHandler {
    inner: DirectHandler,
    cacheable: HashSet<u32>,
    lease_micros: u64,
    /// nonce → callback. Never held across a door call (broadcasts snapshot
    /// it first), per the kernel's lock discipline.
    callbacks: Mutex<HashMap<u64, Callback>>,
    stats: Arc<CoherentStats>,
}

impl CoherentHandler {
    fn domain(&self) -> &spring_kernel::Domain {
        self.inner.ctx.domain()
    }

    fn handle_register(&self, msg: Message) -> std::result::Result<Message, DoorError> {
        let carried = msg.doors.clone();
        let parsed = (|| -> Result<(u64, DoorId)> {
            if carried.len() != 1 {
                return Err(SpringError::Remote(
                    "cache.register expects exactly one callback door".into(),
                ));
            }
            let mut args = CommBuffer::from_message(msg);
            let _op = args.get_u32()?;
            let nonce = args.get_u64()?;
            let door = args.get_door()?;
            Ok((nonce, door))
        })();
        let (nonce, door) = match parsed {
            Ok(v) => v,
            Err(e) => {
                for d in carried {
                    let _ = self.domain().delete_door(d);
                }
                return Err(DoorError::Handler(format!("cache.register: {e}")));
            }
        };
        let token = match self.domain().door_token(door) {
            Ok(t) => t,
            Err(e) => {
                let _ = self.domain().delete_door(door);
                return Err(e);
            }
        };
        let prev = self.callbacks.lock().insert(
            nonce,
            Callback {
                door,
                token,
                fails: 0,
            },
        );
        if let Some(prev) = prev {
            let _ = self.domain().delete_door(prev.door);
        }
        self.stats.registrations.fetch_add(1, Ordering::Relaxed);
        let mut reply = CommBuffer::pooled();
        encode_ok(&mut reply);
        reply.put_u64(self.stats.epoch.load(Ordering::SeqCst));
        reply.put_u64(self.lease_micros);
        Ok(reply.into_message())
    }

    fn handle_epoch(&self, msg: Message) -> std::result::Result<Message, DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let nonce = (|| -> Result<u64> {
            let _op = args.get_u32()?;
            Ok(args.get_u64()?)
        })()
        .map_err(|e| DoorError::Handler(format!("cache.epoch: {e}")))?;
        let registered = self.callbacks.lock().contains_key(&nonce);
        let mut reply = CommBuffer::pooled();
        encode_ok(&mut reply);
        reply.put_u64(self.stats.epoch.load(Ordering::SeqCst));
        reply.put_u64(self.lease_micros);
        reply.put_bool(registered);
        Ok(reply.into_message())
    }

    fn handle_detach(&self, msg: Message) -> std::result::Result<Message, DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let nonce = (|| -> Result<u64> {
            let _op = args.get_u32()?;
            Ok(args.get_u64()?)
        })()
        .map_err(|e| DoorError::Handler(format!("cache.detach: {e}")))?;
        if let Some(cb) = self.callbacks.lock().remove(&nonce) {
            let _ = self.domain().delete_door(cb.door);
        }
        let mut reply = CommBuffer::pooled();
        encode_ok(&mut reply);
        Ok(reply.into_message())
    }

    /// Broadcasts `epoch` to every registered cache, one call per distinct
    /// callback door. Never blocks the write path on a misbehaving cache:
    /// failures are counted and registrations pruned per
    /// [`MAX_CALLBACK_FAILURES`]; correctness rests on leases, not on
    /// delivery. Callback replies list nonces the manager no longer knows
    /// (lost detaches), which are reaped here.
    fn broadcast(&self, epoch: u64) {
        let snapshot: Vec<(u64, DoorId, u64)> = {
            let cbs = self.callbacks.lock();
            cbs.iter().map(|(n, c)| (*n, c.door, c.token)).collect()
        };
        if snapshot.is_empty() {
            return;
        }
        let mut groups: HashMap<u64, (DoorId, Vec<u64>)> = HashMap::new();
        for (nonce, door, token) in snapshot {
            groups
                .entry(token)
                .or_insert_with(|| (door, Vec::new()))
                .1
                .push(nonce);
        }
        for (_, (door, nonces)) in groups {
            let mut note = CommBuffer::pooled();
            note.put_u64(epoch);
            note.put_u64(self.lease_micros);
            note.put_u32(nonces.len() as u32);
            for n in &nonces {
                note.put_u64(*n);
            }
            self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
            let outcome = self.domain().call(door, note.into_message());
            let mut dead: Vec<DoorId> = Vec::new();
            {
                let mut cbs = self.callbacks.lock();
                match &outcome {
                    Ok(reply) => {
                        for n in &nonces {
                            if let Some(cb) = cbs.get_mut(n) {
                                cb.fails = 0;
                            }
                        }
                        // Reap nonces the manager reported as unknown
                        // (detach messages lost on the network).
                        for n in decode_unknown_nonces(reply) {
                            if let Some(cb) = cbs.remove(&n) {
                                dead.push(cb.door);
                            }
                        }
                    }
                    Err(e) => {
                        self.stats.callback_failures.fetch_add(1, Ordering::Relaxed);
                        // Only Comm failures are transient; anything else
                        // (revoked, dead domain) means the cache is gone.
                        let transient = matches!(e, DoorError::Comm(_));
                        for n in &nonces {
                            let prune = match cbs.get_mut(n) {
                                Some(cb) => {
                                    cb.fails += 1;
                                    !transient || cb.fails >= MAX_CALLBACK_FAILURES
                                }
                                None => false,
                            };
                            if prune {
                                if let Some(cb) = cbs.remove(n) {
                                    dead.push(cb.door);
                                }
                            }
                        }
                    }
                }
            }
            for d in dead {
                self.stats.pruned.fetch_add(1, Ordering::Relaxed);
                let _ = self.domain().delete_door(d);
            }
        }
    }
}

/// Parses the unknown-nonce list a callback reply may carry.
fn decode_unknown_nonces(reply: &Message) -> Vec<u64> {
    let mut buf = CommBuffer::from_message(Message::from_bytes(reply.bytes.clone()));
    let Ok(n) = buf.get_u32() else {
        return Vec::new();
    };
    let mut out = Vec::with_capacity(n.min(1024) as usize);
    for _ in 0..n {
        match buf.get_u64() {
            Ok(nonce) => out.push(nonce),
            Err(_) => break,
        }
    }
    out
}

impl DoorHandler for CoherentHandler {
    fn unreferenced(&self) {
        let doors: Vec<DoorId> = {
            let mut cbs = self.callbacks.lock();
            cbs.drain().map(|(_, c)| c.door).collect()
        };
        for d in doors {
            let _ = self.domain().delete_door(d);
        }
        self.inner.unreferenced();
    }

    fn invoke(&self, cctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        match peek_op(&msg.bytes) {
            Some(OP_CACHE_REGISTER) => self.handle_register(msg),
            Some(OP_CACHE_EPOCH) => self.handle_epoch(msg),
            Some(OP_CACHE_DETACH) => self.handle_detach(msg),
            Some(op) if self.cacheable.contains(&op) => self.inner.invoke(cctx, msg),
            _ => {
                // Mutating (or unparsable) operation: run it, then bump the
                // epoch and broadcast iff it committed. The epoch is bumped
                // *before* the broadcast so even a cache that misses every
                // callback sees the mismatch on its next revalidation.
                let reply = self.inner.invoke(cctx, msg)?;
                if reply.bytes.first() == Some(&STATUS_OK) {
                    let epoch = self.stats.epoch.fetch_add(1, Ordering::SeqCst) + 1;
                    self.broadcast(epoch);
                }
                Ok(reply)
            }
        }
    }
}

impl Subcontract for Caching {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "caching"
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<CachingRepr>(self.name())?;
        // All invocations go through D2 — the local cache (§8.2).
        let reply = obj.ctx().domain().call(repr.d2, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<CachingRepr>(self.name())?;
        // Only D1, the manager name and the coherence flag travel; the
        // local cache attachment is not meaningful on another machine.
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.d1);
        buf.put_string(&repr.manager);
        buf.put_bool(repr.coherent);
        let _ = ctx.domain().delete_door(repr.d2);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let d1 = buf.get_door()?;
        // From here on D1 is landed in our door table: every failure path
        // must release it (and any copy made for the manager) or the
        // identifier leaks for the life of the domain.
        let attached = (|| -> Result<(String, bool, DoorId)> {
            let manager = buf.get_string()?;
            let coherent = buf.get_bool()?;
            let d2 = attach_local(ctx, d1, &manager, coherent)?;
            Ok((manager, coherent, d2))
        })();
        let (manager, coherent, d2) = match attached {
            Ok(v) => v,
            Err(e) => {
                let _ = ctx.domain().delete_door(d1);
                return Err(e);
            }
        };

        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(CachingRepr {
                d1,
                d2,
                manager,
                coherent,
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<CachingRepr>(self.name())?;
        let domain = obj.ctx().domain();
        let d1 = domain.copy_door(repr.d1)?;
        let d2 = match domain.copy_door(repr.d2) {
            Ok(d2) => d2,
            Err(e) => {
                let _ = domain.delete_door(d1);
                return Err(e.into());
            }
        };
        Ok(obj.assemble_like(Repr::new(CachingRepr {
            d1,
            d2,
            manager: repr.manager.clone(),
            coherent: repr.coherent,
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<CachingRepr>(self.name())?;
        let _ = ctx.domain().delete_door(repr.d2);
        ctx.domain().delete_door(repr.d1)?;
        Ok(())
    }
}

/// Resolves the machine-local cache manager and attaches `d1`, returning
/// the cache door (D2). Releases every identifier it created on failure;
/// the caller still owns `d1` either way. This is the "significant overhead
/// to object unmarshalling" the paper trades for local invocations (§9.3).
fn attach_local(ctx: &Arc<DomainCtx>, d1: DoorId, manager: &str, coherent: bool) -> Result<DoorId> {
    let resolver = ctx.resolver()?;
    let mgr = resolver.resolve(manager, &CACHE_MANAGER_TYPE)?;
    let mut call = mgr.start_call(OP_ATTACH)?;
    let d1_for_mgr = ctx.domain().copy_door(d1)?;
    call.put_door(d1_for_mgr);
    call.put_bool(coherent);
    let mut reply = match mgr.invoke(call) {
        Ok(reply) => reply,
        Err(e) => {
            // The copy may still be ours if the call never landed (the
            // kernel validates identifiers before moving any); slots are
            // never reused, so a stale delete is harmless.
            let _ = ctx.domain().delete_door(d1_for_mgr);
            return Err(e);
        }
    };
    match decode_reply_status(&mut reply)? {
        ReplyStatus::Ok => Ok(reply.get_door()?),
        ReplyStatus::UserException(name) => Err(SpringError::UnknownUserException(name)),
    }
}

/// Counters a cache manager maintains (hardware-independent evidence for
/// benchmark E4).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    forwards: AtomicU64,
    invalidations: AtomicU64,
    attaches: AtomicU64,
    evictions: AtomicU64,
    revalidations: AtomicU64,
}

impl CacheStats {
    /// Cache hits served locally.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cacheable operations that had to go to the server.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Non-cacheable operations forwarded to the server.
    pub fn forwards(&self) -> u64 {
        self.forwards.load(Ordering::Relaxed)
    }

    /// Cache invalidations (forwarded mutating operations, epoch bumps).
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Objects attached to this manager.
    pub fn attaches(&self) -> u64 {
        self.attaches.load(Ordering::Relaxed)
    }

    /// Memo entries evicted to stay within the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Epoch-check RPCs issued on lease expiry.
    pub fn revalidations(&self) -> u64 {
        self.revalidations.load(Ordering::Relaxed)
    }
}

/// The machine-local cache manager service.
///
/// Exports one `attach` operation: given a server door, it creates a cache
/// servant door (D2) whose handler memoizes cacheable operations and
/// forwards the rest. Bind the object from [`CacheManager::export`] into the
/// machine-local naming context under the name caching objects carry.
///
/// All coherent attachments share one callback door (created lazily);
/// invalidation broadcasts address individual attachments by nonce, so one
/// network call invalidates every cache the manager holds for that server.
pub struct CacheManager {
    ctx: Arc<DomainCtx>,
    cacheable: HashSet<u32>,
    stats: Arc<CacheStats>,
    memo_capacity: usize,
    registry: Arc<CallbackRegistry>,
    /// The shared callback door, created on first coherent attach and kept
    /// for the manager's lifetime.
    callback_door: Mutex<Option<DoorId>>,
}

impl CacheManager {
    /// Creates a manager in `ctx`'s domain caching the given operations.
    pub fn new(ctx: &Arc<DomainCtx>, cacheable_ops: impl IntoIterator<Item = u32>) -> Arc<Self> {
        Self::with_memo_capacity(ctx, cacheable_ops, DEFAULT_MEMO_CAPACITY)
    }

    /// Creates a manager whose per-attachment memo holds at most
    /// `memo_capacity` entries (least-recently-used entries are evicted).
    pub fn with_memo_capacity(
        ctx: &Arc<DomainCtx>,
        cacheable_ops: impl IntoIterator<Item = u32>,
        memo_capacity: usize,
    ) -> Arc<Self> {
        Arc::new(CacheManager {
            ctx: ctx.clone(),
            cacheable: cacheable_ops.into_iter().collect(),
            stats: Arc::new(CacheStats::default()),
            memo_capacity: memo_capacity.max(1),
            registry: Arc::new(CallbackRegistry::default()),
            callback_door: Mutex::new(None),
        })
    }

    /// The manager's counters.
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Exports the manager as a Spring object (via simplex), ready to bind
    /// into the machine-local naming context.
    pub fn export(self: &Arc<Self>) -> Result<SpringObj> {
        let disp = Arc::new(CacheManagerDispatch { mgr: self.clone() });
        crate::simplex::Simplex.export(&self.ctx, disp)
    }

    /// Returns the shared callback door, creating it on first use.
    fn callback_door(&self) -> Result<DoorId> {
        let mut slot = self.callback_door.lock();
        if let Some(d) = *slot {
            return Ok(d);
        }
        let handler = Arc::new(InvalidationCallback {
            registry: self.registry.clone(),
        });
        let d = self.ctx.domain().create_door(handler)?;
        *slot = Some(d);
        Ok(d)
    }

    /// Attaches a server door, returning the cache (D2) door. Owns
    /// `server_door` from the moment it is called: every failure path
    /// releases it and anything else allocated along the way.
    fn attach(self: &Arc<Self>, server_door: DoorId, coherent: bool) -> Result<DoorId> {
        let domain = self.ctx.domain();
        let coherence = if coherent {
            let own = (|| -> Result<DoorId> {
                let shared = self.callback_door()?;
                Ok(domain.copy_door(shared)?)
            })();
            let own = match own {
                Ok(d) => d,
                Err(e) => {
                    let _ = domain.delete_door(server_door);
                    return Err(e);
                }
            };
            Some(Coherence {
                nonce: NEXT_ATTACH_NONCE.fetch_add(1, Ordering::Relaxed),
                callback_door: own,
                epoch: AtomicU64::new(0),
                lease_micros: AtomicU64::new(0),
                lease_until: AtomicU64::new(0),
                registered: AtomicBool::new(false),
                registry: self.registry.clone(),
            })
        } else {
            None
        };
        let servant = Arc::new(CacheServant {
            ctx: self.ctx.clone(),
            server_door,
            cacheable: self.cacheable.clone(),
            stats: self.stats.clone(),
            memo: Mutex::new(Memo::new(self.memo_capacity)),
            coherence,
        });
        if let Some(coh) = &servant.coherence {
            self.registry.insert(coh.nonce, Arc::downgrade(&servant));
        }
        let d2 = match domain.create_door(servant.clone()) {
            Ok(d) => d,
            Err(e) => {
                if let Some(coh) = &servant.coherence {
                    self.registry.remove(coh.nonce);
                    let _ = domain.delete_door(coh.callback_door);
                }
                let _ = domain.delete_door(servant.server_door);
                return Err(e.into());
            }
        };
        // Best-effort initial registration: on failure the servant stays in
        // lease-only mode (lease_until starts expired), so its first read
        // revalidates — and re-registers — before serving anything.
        if servant.coherence.is_some() {
            let _ = servant.try_register();
        }
        self.stats.attaches.fetch_add(1, Ordering::Relaxed);
        Ok(d2)
    }
}

struct CacheManagerDispatch {
    mgr: Arc<CacheManager>,
}

impl Dispatch for CacheManagerDispatch {
    fn type_info(&self) -> &'static TypeInfo {
        &CACHE_MANAGER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op != OP_ATTACH {
            return Err(SpringError::UnknownOp(op));
        }
        let server_door = args.get_door()?;
        let coherent = match args.get_bool() {
            Ok(c) => c,
            Err(e) => {
                let _ = self.mgr.ctx.domain().delete_door(server_door);
                return Err(e.into());
            }
        };
        let d2 = self.mgr.attach(server_door, coherent)?;
        encode_ok(reply);
        reply.put_door(d2);
        Ok(())
    }
}

/// nonce → servant routing for the manager's shared callback door.
#[derive(Default)]
struct CallbackRegistry {
    servants: Mutex<HashMap<u64, Weak<CacheServant>>>,
}

impl CallbackRegistry {
    fn insert(&self, nonce: u64, servant: Weak<CacheServant>) {
        self.servants.lock().insert(nonce, servant);
    }

    fn remove(&self, nonce: u64) {
        let mut map = self.servants.lock();
        map.remove(&nonce);
        // Opportunistically drop entries whose servants are gone.
        map.retain(|_, w| w.strong_count() > 0);
    }
}

/// Handler behind the manager's shared callback door: decodes an epoch
/// broadcast and routes it to the addressed attachments. Replies with the
/// nonces it did not recognise so the server can reap registrations whose
/// detach message was lost.
struct InvalidationCallback {
    registry: Arc<CallbackRegistry>,
}

impl DoorHandler for InvalidationCallback {
    fn invoke(&self, _cctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        let mut buf = CommBuffer::from_message(msg);
        let parsed = (|| -> Result<(u64, u64, u32)> {
            Ok((buf.get_u64()?, buf.get_u64()?, buf.get_u32()?))
        })();
        let (epoch, lease_micros, count) =
            parsed.map_err(|e| DoorError::Handler(format!("cache invalidation: {e}")))?;
        let mut hit: Vec<Arc<CacheServant>> = Vec::new();
        let mut unknown: Vec<u64> = Vec::new();
        {
            let servants = self.registry.servants.lock();
            for _ in 0..count {
                let nonce = buf
                    .get_u64()
                    .map_err(|e| DoorError::Handler(format!("cache invalidation: {e}")))?;
                match servants.get(&nonce).and_then(Weak::upgrade) {
                    Some(s) => hit.push(s),
                    None => unknown.push(nonce),
                }
            }
        }
        // note_epoch takes the servant memo lock; do it outside the registry
        // lock to keep lock scopes disjoint.
        for s in hit {
            s.note_epoch(epoch, lease_micros);
        }
        let mut reply = CommBuffer::pooled();
        reply.put_u32(unknown.len() as u32);
        for n in unknown {
            reply.put_u64(n);
        }
        Ok(reply.into_message())
    }
}

/// Per-attachment coherence state.
struct Coherence {
    /// Process-unique registration nonce.
    nonce: u64,
    /// The servant's own copy of the manager's shared callback door, used
    /// to (re-)register with the server.
    callback_door: DoorId,
    /// Latest server epoch this cache knows.
    epoch: AtomicU64,
    /// Lease duration granted by the server (µs).
    lease_micros: AtomicU64,
    /// Absolute expiry ([`now_micros`]) of the current lease. Starts at 0
    /// (= expired) so nothing is served before the server has been heard.
    lease_until: AtomicU64,
    /// Whether the server acknowledged our callback registration.
    registered: AtomicBool,
    registry: Arc<CallbackRegistry>,
}

/// A memoized reply, tagged with the epoch it was read under.
struct MemoEntry {
    reply: Vec<u8>,
    epoch: u64,
    last_used: u64,
}

/// Bounded request-bytes → reply-bytes memo with LRU eviction.
struct Memo {
    entries: HashMap<Vec<u8>, MemoEntry>,
    capacity: usize,
    tick: u64,
}

impl Memo {
    fn new(capacity: usize) -> Memo {
        Memo {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Returns the memoized reply for `key` if it was read under `epoch`.
    fn lookup(&mut self, key: &[u8], epoch: u64) -> Option<Vec<u8>> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(key)?;
        if entry.epoch != epoch {
            return None;
        }
        entry.last_used = tick;
        Some(entry.reply.clone())
    }

    /// Inserts an entry, evicting the least-recently-used one when full.
    /// Returns true when an eviction was needed.
    fn insert(&mut self, key: Vec<u8>, reply: Vec<u8>, epoch: u64) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
                evicted = true;
            }
        }
        self.entries.insert(
            key,
            MemoEntry {
                reply,
                epoch,
                last_used: self.tick,
            },
        );
        evicted
    }

    /// Drops entries read under an epoch older than `epoch`; returns how
    /// many were dropped.
    fn drop_stale(&mut self, epoch: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.epoch >= epoch);
        before - self.entries.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        n
    }
}

/// One attached object's cache: a memoizing door in front of the server.
struct CacheServant {
    ctx: Arc<DomainCtx>,
    server_door: DoorId,
    cacheable: HashSet<u32>,
    stats: Arc<CacheStats>,
    /// Cacheable requests whose replies carry no capabilities.
    memo: Mutex<Memo>,
    /// Present iff the server is a coherent export.
    coherence: Option<Coherence>,
}

impl CacheServant {
    fn known_epoch(&self) -> u64 {
        self.coherence
            .as_ref()
            .map(|c| c.epoch.load(Ordering::Acquire))
            .unwrap_or(0)
    }

    /// Adopts a (possibly newer) server epoch and renews the lease. Both a
    /// callback delivery and an epoch-check reply prove contact with the
    /// server at this instant, so either renews.
    fn note_epoch(&self, epoch: u64, lease_micros: u64) {
        let Some(coh) = &self.coherence else { return };
        let prev = coh.epoch.fetch_max(epoch, Ordering::AcqRel);
        if epoch > prev {
            let dropped = self.memo.lock().drop_stale(epoch);
            if dropped > 0 {
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
        coh.lease_micros.store(lease_micros, Ordering::Relaxed);
        let until = now_micros().saturating_add(lease_micros);
        coh.lease_until.fetch_max(until, Ordering::AcqRel);
    }

    /// Lease expired: ask the server for its current epoch. On success the
    /// lease is renewed (and the registration repaired if the server no
    /// longer knows us); on failure nothing may be served from the memo.
    fn revalidate(&self, coh: &Coherence) -> std::result::Result<(), DoorError> {
        self.stats.revalidations.fetch_add(1, Ordering::Relaxed);
        let mut call = CommBuffer::pooled();
        call.put_u32(OP_CACHE_EPOCH);
        call.put_u64(coh.nonce);
        let reply = self
            .ctx
            .domain()
            .call(self.server_door, call.into_message())?;
        let mut reply = CommBuffer::from_message(reply);
        let parsed = (|| -> Result<(u64, u64, bool)> {
            if reply.get_u8()? != STATUS_OK {
                return Err(SpringError::Remote("cache.epoch refused".into()));
            }
            Ok((reply.get_u64()?, reply.get_u64()?, reply.get_bool()?))
        })();
        let (epoch, lease, registered) =
            parsed.map_err(|e| DoorError::Handler(format!("cache.epoch reply: {e}")))?;
        self.note_epoch(epoch, lease);
        if !registered {
            // The server pruned us (or the registration never landed):
            // repair it so invalidations resume. The lease alone keeps us
            // correct in the meantime.
            coh.registered.store(false, Ordering::Relaxed);
            let _ = self.try_register();
        }
        Ok(())
    }

    /// Ships a copy of the callback door to the server under our nonce.
    fn try_register(&self) -> std::result::Result<(), DoorError> {
        let Some(coh) = &self.coherence else {
            return Ok(());
        };
        let cb = self.ctx.domain().copy_door(coh.callback_door)?;
        let mut call = CommBuffer::pooled();
        call.put_u32(OP_CACHE_REGISTER);
        call.put_u64(coh.nonce);
        call.put_door(cb);
        let msg = call.into_message();
        let sent: Vec<DoorId> = msg.doors.clone();
        let reply = match self.ctx.domain().call(self.server_door, msg) {
            Ok(r) => r,
            Err(e) => {
                // A failed call may have left the shipped copy in our table
                // (identifiers are validated before any is moved); slots
                // are never reused, so a stale delete is harmless.
                for d in sent {
                    let _ = self.ctx.domain().delete_door(d);
                }
                return Err(e);
            }
        };
        let mut reply = CommBuffer::from_message(reply);
        let parsed = (|| -> Result<(u64, u64)> {
            if reply.get_u8()? != STATUS_OK {
                return Err(SpringError::Remote("cache.register refused".into()));
            }
            Ok((reply.get_u64()?, reply.get_u64()?))
        })();
        let (epoch, lease) =
            parsed.map_err(|e| DoorError::Handler(format!("cache.register reply: {e}")))?;
        self.note_epoch(epoch, lease);
        coh.registered.store(true, Ordering::Relaxed);
        Ok(())
    }
}

impl DoorHandler for CacheServant {
    fn invoke(&self, _cctx: &CallCtx, msg: Message) -> std::result::Result<Message, DoorError> {
        // Read the operation number in place — no payload copy.
        let op = peek_op(&msg.bytes)
            .ok_or_else(|| DoorError::Handler("bad request: truncated op word".into()))?;

        if self.cacheable.contains(&op) && msg.doors.is_empty() {
            // Coherence gate: the memo may only be consulted under a live
            // lease, and only entries tagged with the current epoch count.
            let mut lease_ok = true;
            if let Some(coh) = &self.coherence {
                if now_micros() >= coh.lease_until.load(Ordering::Acquire) {
                    lease_ok = self.revalidate(coh).is_ok();
                }
            }
            if lease_ok {
                let epoch = self.known_epoch();
                let replay = self.memo.lock().lookup(&msg.bytes, epoch);
                if let Some(bytes) = replay {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    let span = spring_trace::span_start(
                        "caching.hit",
                        self.ctx.domain().trace_scope(),
                        Caching::ID.raw(),
                    );
                    let mut reply = Message::from_bytes(bytes);
                    // Replaying raw bytes dropped the reply envelope; keep
                    // the caller's trace connected by re-stamping it (the
                    // kernel only stamps replies left unstamped).
                    reply.trace = if msg.trace.is_some() {
                        msg.trace
                    } else {
                        span.ctx()
                    };
                    return Ok(reply);
                }
            }
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            // Tag with the epoch known *before* the read so a racing
            // invalidation marks the entry stale rather than the reverse.
            let epoch_before = self.known_epoch();
            let key = msg.bytes.clone();
            let reply = self.ctx.domain().call(self.server_door, msg)?;
            // Only cache successful, capability-free replies.
            if reply.doors.is_empty() && reply.bytes.first() == Some(&STATUS_OK) {
                let evicted = self
                    .memo
                    .lock()
                    .insert(key, reply.bytes.clone(), epoch_before);
                if evicted {
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(reply)
        } else {
            // Mutating (or capability-carrying) operation: forward and
            // invalidate (write-through).
            self.stats.forwards.fetch_add(1, Ordering::Relaxed);
            let reply = self.ctx.domain().call(self.server_door, msg)?;
            let cleared = self.memo.lock().clear();
            if cleared > 0 {
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
            }
            Ok(reply)
        }
    }

    fn unreferenced(&self) {
        // Last client detached: drop the memo, unhook from the broadcast
        // set (best effort — a lost detach is reaped via the unknown-nonce
        // reply on the server's next broadcast), and release our doors.
        if let Some(coh) = &self.coherence {
            coh.registry.remove(coh.nonce);
            let mut call = CommBuffer::pooled();
            call.put_u32(OP_CACHE_DETACH);
            call.put_u64(coh.nonce);
            let _ = self
                .ctx
                .domain()
                .call(self.server_door, call.into_message());
            let _ = self.ctx.domain().delete_door(coh.callback_door);
        }
        self.memo.lock().clear();
        let _ = self.ctx.domain().delete_door(self.server_door);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_lru_eviction() {
        let mut memo = Memo::new(2);
        assert!(!memo.insert(vec![1], vec![10], 0));
        assert!(!memo.insert(vec![2], vec![20], 0));
        // Touch key 1 so key 2 is the LRU victim.
        assert_eq!(memo.lookup(&[1], 0), Some(vec![10]));
        assert!(memo.insert(vec![3], vec![30], 0));
        assert_eq!(memo.lookup(&[2], 0), None);
        assert_eq!(memo.lookup(&[1], 0), Some(vec![10]));
        assert_eq!(memo.lookup(&[3], 0), Some(vec![30]));
        // Re-inserting an existing key never evicts.
        assert!(!memo.insert(vec![1], vec![11], 0));
    }

    #[test]
    fn memo_epoch_tagging() {
        let mut memo = Memo::new(8);
        memo.insert(vec![1], vec![10], 1);
        memo.insert(vec![2], vec![20], 2);
        // An entry read under an older epoch is never served.
        assert_eq!(memo.lookup(&[1], 2), None);
        assert_eq!(memo.lookup(&[2], 2), Some(vec![20]));
        assert_eq!(memo.drop_stale(2), 1);
        assert_eq!(memo.lookup(&[2], 2), Some(vec![20]));
    }

    #[test]
    fn peek_op_reads_in_place() {
        assert_eq!(peek_op(&7u32.to_le_bytes()), Some(7));
        assert_eq!(peek_op(&[1, 2, 3]), None);
        assert_eq!(peek_op(&[]), None);
        let mut long = OP_ATTACH.to_le_bytes().to_vec();
        long.extend_from_slice(&[9; 64]);
        assert_eq!(peek_op(&long), Some(OP_ATTACH));
    }

    #[test]
    fn protocol_ops_are_distinct() {
        let ops = [
            OP_ATTACH,
            OP_CACHE_REGISTER,
            OP_CACHE_EPOCH,
            OP_CACHE_DETACH,
        ];
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
