//! The *caching* subcontract: invocations via a machine-local cache (§8.2).
//!
//! When a caching object is transmitted between machines, only the server
//! door identifier (D1) and the cache manager name travel. The receiving
//! side's unmarshal "resolves the cache manager name in a machine-local
//! context to discover a suitable local cache manager and then presents the
//! D1 door identifier to the local cache manager and receives a new D2.
//! Whenever the subcontract performs an invoke operation it uses the D2 door
//! identifier" — so every invocation goes to a cache on the local machine.
//!
//! The cache manager here is a generic memoizing interceptor: operations in
//! its *cacheable set* are answered from the cache when possible; any other
//! operation is forwarded to the server and invalidates the cache
//! (write-through). The original Spring cache manager was the file system's
//! coherent cache ([Nelson et al 1993]); cross-machine coherence is out of
//! scope here and the simplification is recorded in DESIGN.md.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    decode_reply_status, encode_ok, get_obj_header, op_hash, put_obj_header, redispatch_if_foreign,
    server_dispatch, Dispatch, DomainCtx, ObjParts, ReplyStatus, Repr, Result, ScId, ServerCtx,
    ServerSubcontract, SpringError, SpringObj, Subcontract, TypeInfo, STATUS_OK,
};

/// Run-time type of cache manager objects.
pub static CACHE_MANAGER_TYPE: TypeInfo = TypeInfo {
    name: "cache_manager",
    parents: &[&subcontract::OBJECT_TYPE],
    default_subcontract: crate::simplex::Simplex::ID,
};

/// The cache manager's single operation: attach a server door, get a cache
/// door back.
pub const OP_ATTACH: u32 = op_hash("attach");

/// Client representation: server door, cache door, and the manager name.
#[derive(Debug)]
struct CachingRepr {
    /// D1: points at the real server.
    d1: DoorId,
    /// D2: points at the local cache; all invocations use this.
    d2: DoorId,
    /// Name of the cache manager, resolved machine-locally on unmarshal.
    manager: String,
}

/// The caching subcontract (client side).
#[derive(Debug, Default)]
pub struct Caching;

impl Caching {
    /// The identifier carried in caching objects' marshalled form.
    pub const ID: ScId = ScId::from_name("caching");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Caching> {
        Arc::new(Caching)
    }

    /// Exports an object that clients will access through their local cache
    /// managers. The server side is a plain door to the skeleton; the
    /// cleverness is all in unmarshal on the receiving machines.
    pub fn export(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
        manager_name: impl Into<String>,
    ) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(DirectHandler {
            ctx: ctx.clone(),
            disp,
            dedup: crate::dedup::ReplyCache::default(),
        });
        let d1 = ctx.domain().create_door(handler)?;
        // The exporting server needs no cache to reach itself: its D2 is a
        // second identifier for the server door.
        let d2 = ctx.domain().copy_door(d1)?;
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(CachingRepr {
                d1,
                d2,
                manager: manager_name.into(),
            }),
        ))
    }
}

/// A door handler that delivers calls straight to the skeleton (the wire the
/// cache servants also speak when forwarding).
pub(crate) struct DirectHandler {
    pub(crate) ctx: Arc<DomainCtx>,
    pub(crate) disp: Arc<dyn Dispatch>,
    /// At-most-once reply cache; identity-free calls bypass it.
    pub(crate) dedup: crate::dedup::ReplyCache,
}

impl DoorHandler for DirectHandler {
    fn unreferenced(&self) {
        self.disp.unreferenced();
    }

    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        self.dedup.serve(msg, |msg| {
            let mut span = spring_trace::span_start(
                "caching.serve",
                self.ctx.domain().trace_scope(),
                Caching::ID.raw(),
            );
            let mut args = CommBuffer::from_message(msg);
            let mut reply = CommBuffer::new();
            let sctx = ServerCtx {
                ctx: self.ctx.clone(),
                caller: cctx.caller,
            };
            let result = server_dispatch(&sctx, &*self.disp, &mut args, &mut reply);
            if result.is_err() {
                span.fail();
            }
            result?;
            Ok(reply.into_message())
        })
    }
}

impl Subcontract for Caching {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "caching"
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<CachingRepr>(self.name())?;
        // All invocations go through D2 — the local cache (§8.2).
        let reply = obj.ctx().domain().call(repr.d2, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<CachingRepr>(self.name())?;
        // Only D1 and the manager name travel; the local cache attachment
        // is not meaningful on another machine.
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.d1);
        buf.put_string(&repr.manager);
        let _ = ctx.domain().delete_door(repr.d2);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let d1 = buf.get_door()?;
        let manager = buf.get_string()?;

        // Resolve the manager name in the machine-local context and attach:
        // this is the "significant overhead to object unmarshalling" the
        // paper trades for local invocations (§9.3).
        let resolver = ctx.resolver()?;
        let mgr = resolver.resolve(&manager, &CACHE_MANAGER_TYPE)?;
        let mut call = mgr.start_call(OP_ATTACH)?;
        let d1_for_mgr = ctx.domain().copy_door(d1)?;
        call.put_door(d1_for_mgr);
        let mut reply = mgr.invoke(call)?;
        let d2 = match decode_reply_status(&mut reply)? {
            ReplyStatus::Ok => reply.get_door()?,
            ReplyStatus::UserException(name) => {
                return Err(SpringError::UnknownUserException(name))
            }
        };

        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(CachingRepr { d1, d2, manager }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<CachingRepr>(self.name())?;
        let domain = obj.ctx().domain();
        Ok(obj.assemble_like(Repr::new(CachingRepr {
            d1: domain.copy_door(repr.d1)?,
            d2: domain.copy_door(repr.d2)?,
            manager: repr.manager.clone(),
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<CachingRepr>(self.name())?;
        let _ = ctx.domain().delete_door(repr.d2);
        ctx.domain().delete_door(repr.d1)?;
        Ok(())
    }
}

/// Counters a cache manager maintains (hardware-independent evidence for
/// benchmark E4).
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    forwards: AtomicU64,
    invalidations: AtomicU64,
    attaches: AtomicU64,
}

impl CacheStats {
    /// Cache hits served locally.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cacheable operations that had to go to the server.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Non-cacheable operations forwarded to the server.
    pub fn forwards(&self) -> u64 {
        self.forwards.load(Ordering::Relaxed)
    }

    /// Cache invalidations caused by forwarded mutating operations.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Objects attached to this manager.
    pub fn attaches(&self) -> u64 {
        self.attaches.load(Ordering::Relaxed)
    }
}

/// The machine-local cache manager service.
///
/// Exports one `attach` operation: given a server door, it creates a cache
/// servant door (D2) whose handler memoizes cacheable operations and
/// forwards the rest. Bind the object from [`CacheManager::export`] into the
/// machine-local naming context under the name caching objects carry.
pub struct CacheManager {
    ctx: Arc<DomainCtx>,
    cacheable: HashSet<u32>,
    stats: Arc<CacheStats>,
}

impl CacheManager {
    /// Creates a manager in `ctx`'s domain caching the given operations.
    pub fn new(ctx: &Arc<DomainCtx>, cacheable_ops: impl IntoIterator<Item = u32>) -> Arc<Self> {
        Arc::new(CacheManager {
            ctx: ctx.clone(),
            cacheable: cacheable_ops.into_iter().collect(),
            stats: Arc::new(CacheStats::default()),
        })
    }

    /// The manager's counters.
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Exports the manager as a Spring object (via simplex), ready to bind
    /// into the machine-local naming context.
    pub fn export(self: &Arc<Self>) -> Result<SpringObj> {
        let disp = Arc::new(CacheManagerDispatch { mgr: self.clone() });
        crate::simplex::Simplex.export(&self.ctx, disp)
    }
}

struct CacheManagerDispatch {
    mgr: Arc<CacheManager>,
}

impl Dispatch for CacheManagerDispatch {
    fn type_info(&self) -> &'static TypeInfo {
        &CACHE_MANAGER_TYPE
    }

    fn dispatch(
        &self,
        _sctx: &ServerCtx,
        op: u32,
        args: &mut CommBuffer,
        reply: &mut CommBuffer,
    ) -> Result<()> {
        if op != OP_ATTACH {
            return Err(SpringError::UnknownOp(op));
        }
        let server_door = args.get_door()?;
        let servant = Arc::new(CacheServant {
            ctx: self.mgr.ctx.clone(),
            server_door,
            cacheable: self.mgr.cacheable.clone(),
            stats: self.mgr.stats.clone(),
            memo: Mutex::new(HashMap::new()),
        });
        let d2 = self.mgr.ctx.domain().create_door(servant)?;
        self.mgr.stats.attaches.fetch_add(1, Ordering::Relaxed);
        encode_ok(reply);
        reply.put_door(d2);
        Ok(())
    }
}

/// One attached object's cache: a memoizing door in front of the server.
struct CacheServant {
    ctx: Arc<DomainCtx>,
    server_door: DoorId,
    cacheable: HashSet<u32>,
    stats: Arc<CacheStats>,
    /// Request bytes -> reply bytes, for cacheable requests whose replies
    /// carry no capabilities.
    memo: Mutex<HashMap<Vec<u8>, Vec<u8>>>,
}

impl DoorHandler for CacheServant {
    fn invoke(
        &self,
        _cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        // Parse the operation number without consuming the message.
        let op = {
            let mut peek = CommBuffer::from_message(Message::from_bytes(msg.bytes.clone()));
            peek.get_u32()
                .map_err(|e| spring_kernel::DoorError::Handler(format!("bad request: {e}")))?
        };

        if self.cacheable.contains(&op) && msg.doors.is_empty() {
            let key = msg.bytes.clone();
            if let Some(cached) = self.memo.lock().get(&key) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Message::from_bytes(cached.clone()));
            }
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            let reply = self.ctx.domain().call(self.server_door, msg)?;
            // Only cache successful, capability-free replies.
            if reply.doors.is_empty() && reply.bytes.first() == Some(&STATUS_OK) {
                self.memo.lock().insert(key, reply.bytes.clone());
            }
            Ok(reply)
        } else {
            // Mutating (or capability-carrying) operation: forward and
            // invalidate (write-through).
            self.stats.forwards.fetch_add(1, Ordering::Relaxed);
            let reply = self.ctx.domain().call(self.server_door, msg)?;
            let mut memo = self.memo.lock();
            if !memo.is_empty() {
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                memo.clear();
            }
            Ok(reply)
        }
    }

    fn unreferenced(&self) {
        // Last client detached: drop the memo and our server identifier.
        self.memo.lock().clear();
        let _ = self.ctx.domain().delete_door(self.server_door);
    }
}
