//! The *pipeline* subcontract: promise-returning asynchronous invocation.
//!
//! The paper's §8.4 invites exactly this kind of third-party extension:
//! new invocation semantics delivered as a subcontract, with no stub or
//! base-system changes. A pipeline object is wire-compatible with the
//! other single-door subcontracts — one door identifier, the standard
//! marshalled header — but besides the usual synchronous
//! [`Subcontract::invoke`] it offers [`Pipeline::invoke_async`], which
//! returns a [`Promise`] immediately. One thread can therefore issue N
//! calls before collecting any reply, and the network layer (which learns
//! about the outstanding calls through [`spring_kernel::batching`]
//! announcements) coalesces the overlapping calls into shared wire frames:
//! N latency-bound round trips collapse toward one.
//!
//! Retries ride the same at-most-once machinery as `Reconnectable`: every
//! attempt of one logical call shares a [`spring_kernel::CallId`] nonce and
//! deadline, so the server-side reply cache deduplicates replies lost in
//! flight, and exactly-once-for-success semantics survive pipelining.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use spring_buf::CommBuffer;
use spring_kernel::{batching, Domain, DoorError, DoorId, Message};
use spring_trace::TraceCtx;
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, Dispatch, DomainCtx, ObjParts, Repr,
    Result, ScId, SpringError, SpringObj, Subcontract, TypeInfo,
};

use crate::caching::DirectHandler;
use crate::retry::Invocation;

pub use crate::retry::RetryPolicy;

/// Client representation: one kernel door identifier plus the retry policy
/// the unmarshalling domain's registered instance carried. The policy is
/// machine-local — it never travels on the wire, so each client retries on
/// its own terms.
#[derive(Debug)]
struct PipelineRepr {
    door: DoorId,
    policy: RetryPolicy,
}

/// The pipeline subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Pipeline {
    policy: RetryPolicy,
}

impl Pipeline {
    /// The identifier carried in pipeline objects' marshalled form.
    pub const ID: ScId = ScId::from_name("pipeline");

    /// Creates the subcontract instance with the default retry policy.
    pub fn new() -> Arc<Pipeline> {
        Arc::new(Pipeline::default())
    }

    /// Creates the subcontract instance with a custom retry policy.
    pub fn with_policy(policy: RetryPolicy) -> Arc<Pipeline> {
        Arc::new(Pipeline { policy })
    }

    /// Exports an object served through the standard direct handler (with
    /// the at-most-once reply cache in front of the skeleton).
    pub fn export(ctx: &Arc<DomainCtx>, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let handler = Arc::new(DirectHandler {
            ctx: ctx.clone(),
            disp,
            dedup: crate::dedup::ReplyCache::default(),
        });
        let door = ctx.domain().create_door(handler)?;
        let sc = ctx.lookup_subcontract(Self::ID)?;
        let policy = RetryPolicy::default();
        Ok(SpringObj::assemble(
            ctx.clone(),
            type_info,
            sc,
            Repr::new(PipelineRepr { door, policy }),
        ))
    }

    /// Issues a marshalled call asynchronously and returns a [`Promise`]
    /// for the reply. The calling thread does not block: the invocation
    /// (including its whole retry loop) runs on a shared worker pool, and
    /// the outstanding call is announced to the transport so overlapping
    /// pipelined calls can share wire frames.
    ///
    /// The object must stay alive until its promises resolve: consuming it
    /// deletes the door the in-flight attempts call through.
    pub fn invoke_async(obj: &SpringObj, call: CommBuffer) -> Result<Promise> {
        if obj.subcontract().id() != Self::ID {
            return Err(SpringError::Unsupported(
                "invoke_async requires a pipeline object",
            ));
        }
        let repr = obj.repr().downcast::<PipelineRepr>("pipeline")?;
        let door = repr.door;
        let policy = repr.policy;
        let domain = obj.ctx().domain().clone();
        let parent = spring_trace::current();
        let msg = call.into_message();
        let promise = Promise::new();
        let inner = promise.inner.clone();
        // Announced for the call's full lifetime — queue wait, attempts,
        // and backoff sleeps included — so the transport knows pipelined
        // traffic is outstanding. The guard retracts even if the job dies.
        let announced = batching::announce_scope();
        spawn_job(Box::new(move || {
            let _announced = announced;
            let settle = SettleOnDrop(inner);
            let outcome = attempt_loop(&domain, door, policy, parent, msg);
            settle.0.fulfill(outcome);
        }));
        Ok(promise)
    }
}

impl Subcontract for Pipeline {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "pipeline"
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<PipelineRepr>(self.name())?;
        let domain = obj.ctx().domain();
        // A synchronous pipeline call announces itself too: two threads
        // invoking concurrently over one link coalesce just like the
        // async form.
        let _announced = batching::announce_scope();
        attempt_loop(
            domain,
            repr.door,
            repr.policy,
            spring_trace::current(),
            call.into_message(),
        )
        .map(CommBuffer::from_message)
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<PipelineRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(PipelineRepr {
                door,
                policy: self.policy,
            }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<PipelineRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(PipelineRepr {
            door,
            policy: repr.policy,
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<PipelineRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}

/// One logical call: at-most-once retries sharing a nonce and deadline,
/// with one "pipeline.attempt" span per attempt parented under the caller's
/// span at issue time (the issuing thread's context does not exist on the
/// worker thread, so it travels here explicitly).
fn attempt_loop(
    domain: &Domain,
    door: DoorId,
    policy: RetryPolicy,
    parent: TraceCtx,
    msg: Message,
) -> Result<Message> {
    let (bytes, arg_doors, trace) = (msg.bytes, msg.doors, msg.trace);
    let mut inv = Invocation::begin(policy);
    loop {
        let attempt = Message {
            bytes: bytes.clone(),
            doors: arg_doors.clone(),
            trace,
            call: inv.call_id(),
        };
        let mut attempt_span = spring_trace::span_child_of(
            spring_trace::keys::PIPELINE_ATTEMPT,
            parent,
            domain.trace_scope(),
            inv.attempt() as u64,
        );
        let outcome = domain.call(door, attempt);
        if outcome.is_err() {
            attempt_span.fail();
        }
        drop(attempt_span);
        match outcome {
            Ok(reply) => return Ok(reply),
            Err(e) if e.is_comm_failure() => inv.backoff()?,
            Err(e) => return Err(e.into()),
        }
    }
}

/// The pending result of a pipelined invocation.
///
/// Completion can be observed three ways: poll [`Promise::is_complete`],
/// register an [`Promise::on_ready`] callback, or block in
/// [`Promise::wait`]. A waiting collector periodically signals
/// [`batching::urge`] so the transport flushes any frame the awaited call
/// may be lingering in.
pub struct Promise {
    inner: Arc<PromiseInner>,
}

struct PromiseInner {
    done: AtomicBool,
    state: Mutex<PromiseState>,
    cv: Condvar,
}

#[derive(Default)]
struct PromiseState {
    outcome: Option<Result<Message>>,
    wakers: Vec<Box<dyn FnOnce() + Send>>,
}

impl PromiseInner {
    fn fulfill(&self, outcome: Result<Message>) {
        let wakers = {
            let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
            if state.outcome.is_some() || self.done.load(Ordering::Acquire) {
                return;
            }
            state.outcome = Some(outcome);
            self.done.store(true, Ordering::Release);
            self.cv.notify_all();
            std::mem::take(&mut state.wakers)
        };
        for waker in wakers {
            waker();
        }
    }
}

/// Settles the promise with a comm error if the worker dies before
/// delivering a real outcome (first fulfil wins, so the normal path makes
/// this a no-op).
struct SettleOnDrop(Arc<PromiseInner>);

impl Drop for SettleOnDrop {
    fn drop(&mut self) {
        self.0.fulfill(Err(SpringError::Door(DoorError::Comm(
            "pipelined call aborted".into(),
        ))));
    }
}

impl Promise {
    fn new() -> Promise {
        Promise {
            inner: Arc::new(PromiseInner {
                done: AtomicBool::new(false),
                state: Mutex::new(PromiseState::default()),
                cv: Condvar::new(),
            }),
        }
    }

    /// True once the outcome is available ([`Promise::wait`] will not
    /// block).
    pub fn is_complete(&self) -> bool {
        self.inner.done.load(Ordering::Acquire)
    }

    /// Registers a callback to run when the outcome arrives; runs
    /// immediately (on the current thread) if it already has.
    pub fn on_ready(&self, waker: impl FnOnce() + Send + 'static) {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        if self.is_complete() {
            drop(state);
            waker();
        } else {
            state.wakers.push(Box::new(waker));
        }
    }

    /// Blocks until the outcome arrives and returns the reply buffer.
    ///
    /// While waiting, periodically signals [`batching::urge`]: once a
    /// collector is blocked, coalescing further trades real latency for
    /// hypothetical wins, so lingering frames should flush now.
    pub fn wait(self) -> Result<CommBuffer> {
        loop {
            {
                let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
                if let Some(outcome) = state.outcome.take() {
                    return outcome.map(CommBuffer::from_message);
                }
                let (relocked, _) = self
                    .inner
                    .cv
                    .wait_timeout(state, Duration::from_micros(200))
                    .unwrap_or_else(|p| p.into_inner());
                state = relocked;
                if let Some(outcome) = state.outcome.take() {
                    return outcome.map(CommBuffer::from_message);
                }
            }
            // Still pending after the grace period: flush on our behalf.
            batching::urge();
        }
    }
}

/// A small shared worker pool for pipelined invocations.
///
/// Workers are spawned on demand up to a cap, run queued invocation jobs
/// (each job is one logical call's entire retry loop), and exit after a
/// short idle period, so programs that never pipeline pay nothing.
struct Executor {
    queue: Mutex<VecDeque<Job>>,
    arrivals: Condvar,
    idle: AtomicUsize,
    workers: AtomicUsize,
}

type Job = Box<dyn FnOnce() + Send>;

const MAX_WORKERS: usize = 32;
const IDLE_EXIT: Duration = Duration::from_millis(100);

fn executor() -> &'static Executor {
    static EXECUTOR: OnceLock<Executor> = OnceLock::new();
    EXECUTOR.get_or_init(|| Executor {
        queue: Mutex::new(VecDeque::new()),
        arrivals: Condvar::new(),
        idle: AtomicUsize::new(0),
        workers: AtomicUsize::new(0),
    })
}

fn spawn_job(job: Job) {
    let ex = executor();
    ex.queue
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .push_back(job);
    if ex.idle.load(Ordering::Relaxed) > 0 {
        ex.arrivals.notify_one();
        return;
    }
    let workers = ex.workers.load(Ordering::Relaxed);
    if workers < MAX_WORKERS
        && ex
            .workers
            .compare_exchange(workers, workers + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    {
        if std::thread::Builder::new()
            .name("pipeline-worker".into())
            .spawn(move || worker_loop(ex))
            .is_err()
        {
            // Could not get a thread: run whatever is queued inline rather
            // than stranding the promise.
            ex.workers.fetch_sub(1, Ordering::Relaxed);
            while let Some(job) = ex
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .pop_front()
            {
                job();
            }
        }
    } else {
        ex.arrivals.notify_one();
    }
}

fn worker_loop(ex: &'static Executor) {
    loop {
        let job = {
            let mut queue = ex.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                ex.idle.fetch_add(1, Ordering::Relaxed);
                let (relocked, timeout) = ex
                    .arrivals
                    .wait_timeout(queue, IDLE_EXIT)
                    .unwrap_or_else(|p| p.into_inner());
                queue = relocked;
                ex.idle.fetch_sub(1, Ordering::Relaxed);
                if timeout.timed_out() && queue.is_empty() {
                    break None;
                }
            }
        };
        match job {
            Some(job) => job(),
            None => {
                ex.workers.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        }
    }
}
