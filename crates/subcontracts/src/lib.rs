//! The paper's example subcontracts.
//!
//! Section 8 of the paper ("Example subcontracts") establishes that the
//! basic subcontract interfaces are "sufficiently general that they can
//! accommodate a wide range of possible solutions, while still providing a
//! uniform application model". This crate implements each subcontract the
//! paper describes:
//!
//! | Subcontract | Paper | Representation | What it does |
//! |---|---|---|---|
//! | [`Singleton`] | §6.1, §7 | one door identifier | default, door delivers straight to the stubs |
//! | [`Simplex`] | §7 | one door identifier (or a local fast path) | client-server with a server-side subcontract dialogue |
//! | [`Cluster`] | §8.1 | door identifier + integer tag | one door shared by many objects |
//! | [`Replicon`] | §5 | a set of door identifiers | replication with failover and piggybacked replica-set updates |
//! | [`Caching`] | §8.2 | server door + cache door + manager name | invocations redirected to a machine-local cache manager |
//! | [`Reconnectable`] | §8.3 | door identifier + object name | quiet recovery from server crashes by re-resolving the name |
//! | [`Shmem`] | §5.1.4 | door identifier + shared region | arguments marshalled directly into shared memory |
//! | [`Pipeline`] | §8.4 spirit | one door identifier | promise-returning async calls; overlapping calls share wire frames |
//!
//! The paper's §8.4 *future directions* are implemented too, exactly as
//! third parties would build them (public API only, distributed as a
//! separately loadable library — [`extensions_library`]):
//!
//! | Extension | Paper | What it does |
//! |---|---|---|
//! | [`priority`] | §8.4 | transfers scheduling priority in the control region |
//! | [`txn`] | §8.4 | transfers transaction identifiers; journals transactional calls |
//! | [`stream`] | §8.4 | loss-tolerant sequence-numbered frames for live media |
//!
//! All of them are ordinary libraries built on the public `subcontract` API;
//! none required new facilities in the base system — the paper's central
//! claim (§9).

pub mod caching;
pub mod cluster;
pub mod dedup;
pub mod pipeline;
pub mod priority;
pub mod reconnectable;
pub mod replicon;
pub mod retry;
pub mod shmem;
pub mod simplex;
pub mod singleton;
pub mod stream;
pub mod txn;

mod setup;

pub use caching::{CacheManager, CacheStats, Caching, CoherentStats};
pub use cluster::{Cluster, ClusterServer};
pub use dedup::{DedupStats, ReplyCache};
pub use pipeline::{Pipeline, Promise};
pub use priority::{AdmissionConfig, AdmissionStats, Priority};
pub use reconnectable::Reconnectable;
pub use replicon::{ReplicaGroup, Replicon, RepliconServer};
pub use retry::{Invocation, RetryPolicy};
pub use setup::{
    extensions_library, register_standard, standard_library, STANDARD_SUBCONTRACT_NAMES,
};
pub use shmem::Shmem;
pub use simplex::Simplex;
pub use singleton::Singleton;
pub use stream::{FrameOutcome, FrameSink, Stream, StreamStats};
pub use txn::{Txn, TxnJournal, TxnScope};
