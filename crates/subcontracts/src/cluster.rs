//! The *cluster* subcontract: one door shared by many objects (§8.1).
//!
//! Simplex uses a distinct kernel door for each piece of server state, which
//! is right for distinctly protected resources but wasteful when "if a
//! client is granted access to any of the objects, it might as well be
//! granted access to all of them". Cluster represents each object as the
//! combination of a door identifier and an integer tag; the
//! `invoke_preamble` and `invoke` operations conspire to ship the tag along
//! to the server, whose cluster code uses it to dispatch to a particular
//! object.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, SpringError, SpringObj, Subcontract, TypeInfo,
};

/// Client representation: the shared door plus this object's tag.
#[derive(Debug)]
struct ClusterRepr {
    door: DoorId,
    tag: u32,
}

/// The cluster subcontract (client side).
#[derive(Debug, Default)]
pub struct Cluster;

impl Cluster {
    /// The identifier carried in cluster objects' marshalled form.
    pub const ID: ScId = ScId::from_name("cluster");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Cluster> {
        Arc::new(Cluster)
    }
}

struct ClusterTable {
    by_tag: HashMap<u32, Arc<dyn Dispatch>>,
    next_tag: u32,
}

/// Server-side cluster code: owns the single shared door and the tag table.
///
/// Each [`ClusterServer::export`] adds one entry to the tag table and issues
/// one more *identifier* for the same door — the kernel-door count stays at
/// one no matter how many objects are exported, which is the resource
/// saving benchmark E3 measures.
pub struct ClusterServer {
    ctx: Arc<DomainCtx>,
    /// The server's own identifier for the shared door.
    master: DoorId,
    table: Arc<RwLock<ClusterTable>>,
}

struct ClusterHandler {
    ctx: Arc<DomainCtx>,
    table: Arc<RwLock<ClusterTable>>,
    /// At-most-once reply cache; identity-free calls bypass it.
    dedup: crate::dedup::ReplyCache,
}

impl DoorHandler for ClusterHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        self.dedup.serve(msg, |msg| {
            let mut span = spring_trace::span_start(
                "cluster.serve",
                self.ctx.domain().trace_scope(),
                Cluster::ID.raw(),
            );
            let mut args = CommBuffer::from_message(msg);
            let result = (|| {
                let tag = args.get_u32().map_err(|e| {
                    spring_kernel::DoorError::Handler(format!("bad cluster tag: {e}"))
                })?;
                // A revoked tag behaves like a revoked door: the call fails,
                // the identifier survives (§5.2.3).
                let disp = self
                    .table
                    .read()
                    .by_tag
                    .get(&tag)
                    .cloned()
                    .ok_or(spring_kernel::DoorError::Revoked)?;
                let mut reply = CommBuffer::new();
                let sctx = ServerCtx {
                    ctx: self.ctx.clone(),
                    caller: cctx.caller,
                };
                server_dispatch(&sctx, &*disp, &mut args, &mut reply)?;
                Ok(reply.into_message())
            })();
            if result.is_err() {
                span.fail();
            }
            result
        })
    }
}

impl ClusterServer {
    /// Creates the server-side cluster machinery: one door for the whole
    /// cluster.
    pub fn new(ctx: &Arc<DomainCtx>) -> Result<Arc<ClusterServer>> {
        let table = Arc::new(RwLock::new(ClusterTable {
            by_tag: HashMap::new(),
            next_tag: 1,
        }));
        let handler = Arc::new(ClusterHandler {
            ctx: ctx.clone(),
            table: table.clone(),
            dedup: crate::dedup::ReplyCache::default(),
        });
        let master = ctx.domain().create_door(handler)?;
        Ok(Arc::new(ClusterServer {
            ctx: ctx.clone(),
            master,
            table,
        }))
    }

    /// Exports one object through the cluster: assigns a tag, copies the
    /// shared door identifier, and fabricates the Spring object.
    pub fn export(&self, disp: Arc<dyn Dispatch>) -> Result<SpringObj> {
        let type_info = disp.type_info();
        self.ctx.types().register(type_info);
        let tag = {
            let mut table = self.table.write();
            let tag = table.next_tag;
            table.next_tag += 1;
            table.by_tag.insert(tag, disp);
            tag
        };
        let door = self.ctx.domain().copy_door(self.master)?;
        Ok(SpringObj::assemble(
            self.ctx.clone(),
            type_info,
            self.ctx.lookup_subcontract(Cluster::ID)?,
            Repr::new(ClusterRepr { door, tag }),
        ))
    }

    /// Revokes one object of the cluster by removing its tag; other objects
    /// sharing the door are unaffected.
    pub fn revoke_tag(&self, obj: &SpringObj) -> Result<()> {
        let repr = obj.repr().downcast::<ClusterRepr>("cluster")?;
        if self.table.write().by_tag.remove(&repr.tag).is_none() {
            return Err(SpringError::Unsupported("tag already revoked"));
        }
        Ok(())
    }

    /// Number of live (exported, unrevoked) objects in the cluster.
    pub fn live_objects(&self) -> usize {
        self.table.read().by_tag.len()
    }
}

impl Subcontract for Cluster {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "cluster"
    }

    fn invoke_preamble(&self, obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Ship the tag as the control region (§8.1).
        let repr = obj.repr().downcast::<ClusterRepr>(self.name())?;
        call.put_u32(repr.tag);
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<ClusterRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<ClusterRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        buf.put_u32(repr.tag);
        Ok(())
    }

    fn marshal_copy(&self, obj: &SpringObj, buf: &mut CommBuffer) -> Result<()> {
        // Optimized copy-then-marshal (§5.1.5).
        let repr = obj.repr().downcast::<ClusterRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        put_obj_header(buf, Self::ID, obj.type_name());
        buf.put_door(door);
        buf.put_u32(repr.tag);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        let tag = buf.get_u32()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(ClusterRepr { door, tag }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<ClusterRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(ClusterRepr {
            door,
            tag: repr.tag,
        })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<ClusterRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}
