//! The *txn* subcontract: another §8.4 future direction, implemented.
//!
//! "Another is to transfer control information for atomic transactions at
//! the subcontract level." A client thread opens a transaction scope; every
//! invocation on a txn object made inside the scope piggybacks the
//! transaction identifier, which the server-side subcontract publishes to
//! the servant and records in a journal — the raw material a transaction
//! coordinator needs, flowing entirely through subcontract control regions.

use std::cell::Cell;
use std::sync::Arc;

use parking_lot::Mutex;
use spring_buf::CommBuffer;
use spring_kernel::{CallCtx, DoorHandler, DoorId, Message};
use subcontract::{
    get_obj_header, put_obj_header, redispatch_if_foreign, server_dispatch, Dispatch, DomainCtx,
    ObjParts, Repr, Result, ScId, ServerCtx, SpringObj, Subcontract, TypeInfo,
};

thread_local! {
    /// The transaction the current thread is working under (0 = none).
    static CLIENT_TXN: Cell<u64> = const { Cell::new(0) };
    /// The transaction of the call currently being served on this thread.
    static SERVER_TXN: Cell<u64> = const { Cell::new(0) };
}

/// Opens a transaction scope on the current thread; invocations on txn
/// objects inside the scope carry the identifier. Closing restores the
/// previous scope (scopes nest).
pub struct TxnScope {
    previous: u64,
}

impl TxnScope {
    /// Enters transaction `id` on this thread.
    pub fn begin(id: u64) -> TxnScope {
        TxnScope {
            previous: CLIENT_TXN.with(|c| c.replace(id)),
        }
    }
}

impl Drop for TxnScope {
    fn drop(&mut self) {
        CLIENT_TXN.with(|c| c.set(self.previous));
    }
}

/// The transaction identifier of the call currently being served (what a
/// transactional servant consults), or 0 outside a transaction.
pub fn current_txn() -> u64 {
    SERVER_TXN.with(Cell::get)
}

/// A record of operations observed under transactions, per exported object.
#[derive(Debug, Default)]
pub struct TxnJournal {
    entries: Mutex<Vec<(u64, u32)>>,
}

impl TxnJournal {
    /// All `(transaction, operation)` pairs recorded so far.
    pub fn entries(&self) -> Vec<(u64, u32)> {
        self.entries.lock().clone()
    }

    /// Operations recorded under one transaction.
    pub fn ops_in(&self, txn: u64) -> Vec<u32> {
        self.entries
            .lock()
            .iter()
            .filter(|(t, _)| *t == txn)
            .map(|(_, op)| *op)
            .collect()
    }
}

/// Client representation: just the door; the transaction comes from the
/// calling thread's scope.
#[derive(Debug)]
struct TxnRepr {
    door: DoorId,
}

/// The txn subcontract (client and server side).
#[derive(Debug, Default)]
pub struct Txn;

impl Txn {
    /// The identifier carried in txn objects' marshalled form.
    pub const ID: ScId = ScId::from_name("txn");

    /// Creates the subcontract instance to register in a domain.
    pub fn new() -> Arc<Txn> {
        Arc::new(Txn)
    }

    /// Exports an object whose calls carry transaction identifiers,
    /// returning the object together with its server-side journal.
    pub fn export_with_journal(
        ctx: &Arc<DomainCtx>,
        disp: Arc<dyn Dispatch>,
    ) -> Result<(SpringObj, Arc<TxnJournal>)> {
        let type_info = disp.type_info();
        ctx.types().register(type_info);
        let journal = Arc::new(TxnJournal::default());
        let handler = Arc::new(TxnHandler {
            ctx: ctx.clone(),
            disp,
            journal: journal.clone(),
        });
        let door = ctx.domain().create_door(handler)?;
        let obj = SpringObj::assemble(
            ctx.clone(),
            type_info,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(TxnRepr { door }),
        );
        Ok((obj, journal))
    }
}

/// Server-side txn code: reads the control region, journals the call, and
/// publishes the transaction for the servant.
struct TxnHandler {
    ctx: Arc<DomainCtx>,
    disp: Arc<dyn Dispatch>,
    journal: Arc<TxnJournal>,
}

impl DoorHandler for TxnHandler {
    fn invoke(
        &self,
        cctx: &CallCtx,
        msg: Message,
    ) -> std::result::Result<Message, spring_kernel::DoorError> {
        let mut args = CommBuffer::from_message(msg);
        let txn = args
            .get_u64()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad txn control: {e}")))?;
        let op = args
            .peek_u32()
            .map_err(|e| spring_kernel::DoorError::Handler(format!("bad txn request: {e}")))?;
        if txn != 0 {
            self.journal.entries.lock().push((txn, op));
        }

        let previous = SERVER_TXN.with(|c| c.replace(txn));
        let result = (|| {
            let mut reply = CommBuffer::new();
            let sctx = ServerCtx {
                ctx: self.ctx.clone(),
                caller: cctx.caller,
            };
            server_dispatch(&sctx, &*self.disp, &mut args, &mut reply)?;
            Ok(reply.into_message())
        })();
        SERVER_TXN.with(|c| c.set(previous));
        result
    }
}

impl Subcontract for Txn {
    fn id(&self) -> ScId {
        Self::ID
    }

    fn name(&self) -> &'static str {
        "txn"
    }

    fn invoke_preamble(&self, _obj: &SpringObj, call: &mut CommBuffer) -> Result<()> {
        // Transfer the thread's transaction in the control region (§8.4).
        call.put_u64(CLIENT_TXN.with(Cell::get));
        Ok(())
    }

    fn invoke(&self, obj: &SpringObj, call: CommBuffer) -> Result<CommBuffer> {
        let repr = obj.repr().downcast::<TxnRepr>(self.name())?;
        let reply = obj.ctx().domain().call(repr.door, call.into_message())?;
        Ok(CommBuffer::from_message(reply))
    }

    fn marshal(&self, _ctx: &Arc<DomainCtx>, parts: ObjParts, buf: &mut CommBuffer) -> Result<()> {
        let repr = parts.repr.into_downcast::<TxnRepr>(self.name())?;
        put_obj_header(buf, Self::ID, &parts.type_name);
        buf.put_door(repr.door);
        Ok(())
    }

    fn unmarshal(
        &self,
        ctx: &Arc<DomainCtx>,
        expected: &'static TypeInfo,
        buf: &mut CommBuffer,
    ) -> Result<SpringObj> {
        if let Some(obj) = redispatch_if_foreign(Self::ID, ctx, expected, buf)? {
            return Ok(obj);
        }
        let (_, wire_name, actual) = get_obj_header(ctx, expected, buf)?;
        let door = buf.get_door()?;
        Ok(SpringObj::assemble_from_wire(
            ctx.clone(),
            wire_name,
            actual,
            ctx.lookup_subcontract(Self::ID)?,
            Repr::new(TxnRepr { door }),
        ))
    }

    fn copy(&self, obj: &SpringObj) -> Result<SpringObj> {
        let repr = obj.repr().downcast::<TxnRepr>(self.name())?;
        let door = obj.ctx().domain().copy_door(repr.door)?;
        Ok(obj.assemble_like(Repr::new(TxnRepr { door })))
    }

    fn consume(&self, ctx: &Arc<DomainCtx>, parts: ObjParts) -> Result<()> {
        let repr = parts.repr.into_downcast::<TxnRepr>(self.name())?;
        ctx.domain().delete_door(repr.door)?;
        Ok(())
    }
}
